"""Client Pequod: timelines maintained by application clients (§5.2).

"In 'client Pequod', application clients are responsible for
maintaining timelines.  There are no cache joins.  After making a post,
the posting client sends a timeline update for every subscribed user."

The store is a Pequod cache driven purely as an ordered key-value
store through the unified :class:`~repro.client.base.PequodClient`
(no cache joins installed, so any backend works; the default is an
in-process server).  The client keeps a reverse-subscription index
(``rs|poster|user``) so it can find followers, and pays one RPC per
follower timeline it updates — the RPC overhead half of the paper's
1.64x penalty.  The other half, insertion overhead, appears because
plain puts get no output hints and no value sharing.
"""

from __future__ import annotations

from typing import List, Optional

from ..client.base import PequodClient
from ..client.local import LocalClient
from ..core.server import PequodServer
from ..store.keys import prefix_upper_bound
from .base import Tweet, TwipBackend


class ClientPequodBackend(TwipBackend):
    name = "client pequod"

    def __init__(
        self,
        backfill_limit: int = 16,
        client: Optional[PequodClient] = None,
        **server_kwargs,
    ) -> None:
        super().__init__()
        if client is None:
            # Client-managed stores see no benefit from join-side
            # optimizations; hints/sharing only help server-side
            # computation.
            server_kwargs.setdefault("enable_hints", False)
            server_kwargs.setdefault("enable_sharing", False)
            client = LocalClient(
                PequodServer(stats=self.meter, **server_kwargs)
            )
        self.client = client
        self.backfill_limit = backfill_limit

    # ------------------------------------------------------------------
    def subscribe(self, user: str, poster: str) -> None:
        self.rpc()
        self.client.put(f"s|{user}|{poster}", "1")
        self.rpc()
        self.client.put(f"rs|{poster}|{user}", "1")
        # Backfill: fetch the poster's recent tweets, insert into the
        # follower's timeline (what a real client-managed app does).
        self.rpc()
        recent = self.client.scan(f"p|{poster}|", prefix_upper_bound(f"p|{poster}|"))
        for key, text in recent[-self.backfill_limit :]:
            time = key.rsplit("|", 1)[1]
            self.rpc()
            self.moved(len(text))
            self.client.put(f"t|{user}|{time}|{poster}", text)

    def post(self, poster: str, time: str, text: str) -> None:
        self.rpc()
        self.client.put(f"p|{poster}|{time}", text)
        self.rpc()
        followers = self.client.scan(
            f"rs|{poster}|", prefix_upper_bound(f"rs|{poster}|")
        )
        for key, _ in followers:
            user = key.rsplit("|", 1)[1]
            self.rpc()
            self.moved(len(text))
            self.client.put(f"t|{user}|{time}|{poster}", text)

    def timeline(self, user: str, since: str) -> List[Tweet]:
        self.rpc()
        rows = self.client.scan(f"t|{user}|{since}", prefix_upper_bound(f"t|{user}|"))
        out: List[Tweet] = []
        for key, text in rows:
            _, _, time, poster = key.split("|", 3)
            self.moved(len(text))
            out.append((time, poster, text))
        return out
