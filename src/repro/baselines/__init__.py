"""The §5.2 comparison systems, all behind one workload interface."""

from .base import Tweet, TwipBackend, decode_tweet, encode_tweet
from .client_pequod import ClientPequodBackend
from .memcache_like import MemcacheLikeBackend, MemcacheLikeStore
from .redis_like import RedisLikeBackend, RedisLikeStore
from .sqlview import MatViewBackend, MiniRelDB, SqlViewBackend

__all__ = [
    "ClientPequodBackend",
    "MatViewBackend",
    "MemcacheLikeBackend",
    "MemcacheLikeStore",
    "MiniRelDB",
    "RedisLikeBackend",
    "RedisLikeStore",
    "SqlViewBackend",
    "Tweet",
    "TwipBackend",
    "decode_tweet",
    "encode_tweet",
]
