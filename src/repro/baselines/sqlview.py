"""A PostgreSQL-like relational store with trigger-maintained views.

§5.2: "Although our test version lacks automatically-updated
materialized views, we use triggers to get a similar effect."  This
module implements the equivalent design point: relational tables with
ordered indexes, and row-level triggers that maintain a timeline table
on every post and subscription insert.

Every client statement pays a fixed parse/plan/execute overhead
(``sql_statements``) on top of its index work — the reason the paper
measures PostgreSQL an order of magnitude slower than the key-value
caches even when fully in memory with relaxed durability.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..store.rbtree import RBTree
from .base import Tweet, TwipBackend


class MiniRelDB:
    """Just enough relational machinery for trigger-maintained views.

    Tables (the paper's §2.1 schema plus the view):

    * ``posts(poster, time, tweet)`` — B-tree keyed ``(poster, time)``
    * ``subs(user, poster)``        — B-tree keyed ``(user, poster)``
      plus a follower index ``poster -> {user}``
    * ``timeline(user, time, poster, tweet)`` — the trigger-maintained
      view, B-tree keyed ``(user, time, poster)``
    """

    def __init__(self, meter) -> None:
        self.meter = meter
        self.posts = RBTree()  # (poster, time) -> tweet
        self.subs = RBTree()  # (user, poster) -> True
        self.followers: Dict[str, Set[str]] = {}
        self.timeline = RBTree()  # (user, time, poster) -> tweet

    # ------------------------------------------------------------------
    def _statement(self) -> None:
        self.meter.add("sql_statements")

    def _index_write(self, tree: RBTree) -> None:
        self.meter.tree_descent(len(tree))
        self.meter.add("sql_rows")

    # ------------------------------------------------------------------
    def insert_post(self, poster: str, time: str, tweet: str) -> None:
        self._statement()
        self._index_write(self.posts)
        self.posts.insert((poster, time), tweet)
        self._fire_post_trigger(poster, time, tweet)

    def _fire_post_trigger(self, poster: str, time: str, tweet: str) -> None:
        """Row trigger: copy the post into every follower's timeline."""
        self.meter.add("sql_triggers")
        for user in self.followers.get(poster, ()):  # index lookup
            self.meter.add("sql_trigger_rows")
            self._index_write(self.timeline)
            self.timeline.insert((user, time, poster), tweet)

    def insert_sub(self, user: str, poster: str, backfill_limit: int) -> None:
        self._statement()
        self._index_write(self.subs)
        self.subs.insert((user, poster), True)
        self.followers.setdefault(poster, set()).add(user)
        self._fire_sub_trigger(user, poster, backfill_limit)

    def _fire_sub_trigger(self, user: str, poster: str, limit: int) -> None:
        """Row trigger: backfill the poster's recent posts."""
        self.meter.add("sql_triggers")
        self.meter.tree_descent(len(self.posts))
        recent = list(self.posts.items((poster, ""), (poster, "\U0010ffff")))
        for (p, time), tweet in recent[-limit:]:
            self.meter.add("sql_trigger_rows")
            self._index_write(self.timeline)
            self.timeline.insert((user, time, p), tweet)

    def select_timeline(self, user: str, since: str) -> List[Tweet]:
        self._statement()
        self.meter.tree_descent(len(self.timeline))
        out: List[Tweet] = []
        for (u, time, poster), tweet in self.timeline.items(
            (user, since, ""), (user, "\U0010ffff", "")
        ):
            self.meter.add("sql_rows")
            out.append((time, poster, tweet))
        return out


class SqlViewBackend(TwipBackend):
    name = "postgresql"

    def __init__(self, backfill_limit: int = 16) -> None:
        super().__init__()
        self.db = MiniRelDB(self.meter)
        self.backfill_limit = backfill_limit

    def subscribe(self, user: str, poster: str) -> None:
        self.rpc()
        self.db.insert_sub(user, poster, self.backfill_limit)

    def post(self, poster: str, time: str, text: str) -> None:
        self.rpc()
        self.db.insert_post(poster, time, text)

    def timeline(self, user: str, since: str) -> List[Tweet]:
        self.rpc()
        rows = self.db.select_timeline(user, since)
        for _, _, text in rows:
            self.moved(len(text))
        return rows


class MatViewBackend(TwipBackend):
    """A database with *true materialized views*, refresh-on-read.

    The paper's footnote 3: "Widely-available databases with true
    materialized view support were also evaluated; they performed
    similarly to PostgreSQL."  This models the REFRESH MATERIALIZED
    VIEW design of that era: the timeline view is recomputed per user
    when read while stale, rather than maintained by triggers.  Writes
    are cheap; reads after writes pay a per-user re-join.
    """

    name = "postgresql-matview"

    def __init__(self, backfill_limit: int = 16) -> None:
        super().__init__()
        self.posts = RBTree()  # (poster, time) -> tweet
        self.subs = RBTree()  # (user, poster) -> True
        self.view: Dict[str, List[Tweet]] = {}  # user -> sorted timeline
        #: Staleness tracking: a view is fresh when its refresh version
        #: matches the global write version.
        self._write_version = 0
        self._view_version: Dict[str, int] = {}

    def _statement(self) -> None:
        self.meter.add("sql_statements")

    def subscribe(self, user: str, poster: str) -> None:
        self.rpc()
        self._statement()
        self.meter.tree_descent(len(self.subs))
        self.meter.add("sql_rows")
        self.subs.insert((user, poster), True)
        self._write_version += 1

    def post(self, poster: str, time: str, text: str) -> None:
        self.rpc()
        self._statement()
        self.meter.tree_descent(len(self.posts))
        self.meter.add("sql_rows")
        self.posts.insert((poster, time), text)
        self._write_version += 1

    def _refresh(self, user: str) -> None:
        """REFRESH MATERIALIZED VIEW ... restricted to one user."""
        self._statement()
        self.meter.add("sql_view_refreshes")
        rows: List[Tweet] = []
        self.meter.tree_descent(len(self.subs))
        for (u, poster), _ in self.subs.items((user, ""), (user, "\U0010ffff")):
            self.meter.add("sql_rows")
            self.meter.tree_descent(len(self.posts))
            for (p, time), text in self.posts.items(
                (poster, ""), (poster, "\U0010ffff")
            ):
                self.meter.add("sql_rows")
                rows.append((time, p, text))
        rows.sort()
        self.view[user] = rows

    def timeline(self, user: str, since: str) -> List[Tweet]:
        self.rpc()
        self._statement()
        if self._view_version.get(user) != self._write_version:
            self._refresh(user)
            self._view_version[user] = self._write_version
        out = []
        for time, poster, text in self.view.get(user, ()):
            if time >= since:
                self.meter.add("sql_rows")
                self.moved(len(text))
                out.append((time, poster, text))
        return out
