"""Common interface and metering for the Figure-7 comparison systems.

The paper's §5.2 system comparison runs one Twip workload against five
backends: Pequod with cache joins, "client Pequod" (clients maintain
timelines), Redis, memcached, and PostgreSQL with trigger-maintained
views.  Every backend here implements :class:`TwipBackend` so the
workload driver is oblivious to which system it is driving.

Fairness rests on metering: each backend charges every client↔server
round trip (``rpcs``), every data-structure operation (hash jumps, tree
descents, skiplist walks), and every byte moved.  The benchmark cost
model (``repro.bench.costmodel``) converts those counters into modeled
runtimes; the paper's ordering emerges from the work each architecture
performs, not from tuned constants.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..store.stats import StoreStats

#: A delivered tweet: (time, poster, text).
Tweet = Tuple[str, str, str]


def encode_tweet(time: str, poster: str, text: str) -> str:
    """The record format client-managed systems store in timelines."""
    return f"{time}|{poster}|{text}"


def decode_tweet(record: str) -> Tweet:
    time, poster, text = record.split("|", 2)
    return time, poster, text


class TwipBackend:
    """One system under test for the Twip workload.

    Subclasses implement the five operations; ``meter`` accumulates the
    work counters the cost model consumes.  ``backfill_limit`` bounds
    how many of a newly-followed poster's old tweets are pulled into
    the follower's timeline (client-managed systems do this app-side;
    Pequod's lazy maintenance and SQL triggers do it in-system).
    """

    name = "abstract"

    def __init__(self) -> None:
        self.meter = StoreStats()

    # -- the workload's five operations ---------------------------------------
    def subscribe(self, user: str, poster: str) -> None:
        raise NotImplementedError

    def post(self, poster: str, time: str, text: str) -> None:
        raise NotImplementedError

    def timeline(self, user: str, since: str) -> List[Tweet]:
        """Tweets by followed users with time >= since, time-sorted."""
        raise NotImplementedError

    def load_graph(self, edges) -> None:
        """Bulk-load subscriptions (setup; charged separately)."""
        for user, poster in edges:
            self.subscribe(user, poster)

    # -- metering --------------------------------------------------------------
    def rpc(self, count: float = 1) -> None:
        self.meter.add("rpcs", count)

    def moved(self, nbytes: float) -> None:
        self.meter.add("bytes_moved", nbytes)

    def reset_meter(self) -> None:
        self.meter.reset()

    @staticmethod
    def log_cost(size: int) -> float:
        return math.log2(size + 2)
