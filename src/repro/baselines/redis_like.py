"""A Redis-style unordered cache with sorted-set values (§5.2).

"Redis stores timelines as sorted sets of tweets" — the store is a hash
table (O(1) key lookup; Redis's fundamental advantage over ordered
stores, §6) whose timeline values are score-ordered collections.
Sorted-set operations cost O(log n) like Redis's skiplists.

Clients manage timelines exactly as in client Pequod: the posting
client fans each tweet out to every follower, one RPC per timeline
(Redis's 1.23x win over client Pequod is the hash table; its 1.33x loss
to Pequod is the client-side fan-out RPCs).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Set, Tuple

from .base import Tweet, TwipBackend, decode_tweet, encode_tweet


class RedisLikeStore:
    """Hash-table store: strings, sets, and sorted sets."""

    def __init__(self, meter) -> None:
        self.meter = meter
        self.strings: Dict[str, str] = {}
        self.sets: Dict[str, Set[str]] = {}
        self.zsets: Dict[str, List[Tuple[str, str]]] = {}

    # every command is one O(1) hash lookup plus structure-specific work
    def set(self, key: str, value: str) -> None:
        self.meter.hash_jump()
        self.strings[key] = value

    def get(self, key: str) -> str:
        self.meter.hash_jump()
        return self.strings.get(key, "")

    def sadd(self, key: str, member: str) -> None:
        self.meter.hash_jump()
        self.sets.setdefault(key, set()).add(member)

    def smembers(self, key: str) -> Set[str]:
        self.meter.hash_jump()
        return self.sets.get(key, set())

    def zadd(self, key: str, score: str, member: str) -> None:
        self.meter.hash_jump()
        zset = self.zsets.setdefault(key, [])
        self.meter.add("skiplist_cost", TwipBackend.log_cost(len(zset)))
        bisect.insort(zset, (score, member))

    def zrangebyscore(self, key: str, min_score: str) -> List[Tuple[str, str]]:
        self.meter.hash_jump()
        zset = self.zsets.get(key, [])
        self.meter.add("skiplist_cost", TwipBackend.log_cost(len(zset)))
        start = bisect.bisect_left(zset, (min_score, ""))
        out = zset[start:]
        self.meter.add("scanned_items", len(out))
        return out


class RedisLikeBackend(TwipBackend):
    name = "redis"

    def __init__(self, backfill_limit: int = 16) -> None:
        super().__init__()
        self.store = RedisLikeStore(self.meter)
        self.backfill_limit = backfill_limit

    def subscribe(self, user: str, poster: str) -> None:
        self.rpc()
        self.store.sadd(f"s:{user}", poster)
        self.rpc()
        self.store.sadd(f"rs:{poster}", user)
        self.rpc()
        recent = self.store.zrangebyscore(f"pl:{poster}", "")
        for time, text in recent[-self.backfill_limit :]:
            self.rpc()
            self.moved(len(text))
            self.store.zadd(f"t:{user}", time, encode_tweet(time, poster, text))

    def post(self, poster: str, time: str, text: str) -> None:
        self.rpc()
        self.store.zadd(f"pl:{poster}", time, text)
        self.rpc()
        followers = self.store.smembers(f"rs:{poster}")
        record = encode_tweet(time, poster, text)
        for user in followers:
            self.rpc()
            self.moved(len(record))
            self.store.zadd(f"t:{user}", time, record)

    def timeline(self, user: str, since: str) -> List[Tweet]:
        self.rpc()
        rows = self.store.zrangebyscore(f"t:{user}", since)
        out = []
        for _, record in rows:
            self.moved(len(record))
            out.append(decode_tweet(record))
        return sorted(out)
