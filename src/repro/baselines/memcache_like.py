"""A memcached-style cache: hash table of opaque strings (§5.2).

"memcached [stores timelines] as a string to which tweets are
appended."  There are no server-side data structures beyond the hash
table, so:

* posting appends the encoded tweet to every follower's timeline
  string (one RPC per follower, like the other client-managed systems);
* a timeline check must GET the *entire* timeline string and filter
  client-side — memcached cannot range-query, so bytes moved grow with
  timeline length.  This, plus append write amplification, is why the
  paper measures memcached 3.98x slower on the write-heavier Twip mix.
"""

from __future__ import annotations

from typing import Dict, List

from .base import Tweet, TwipBackend, decode_tweet, encode_tweet

SEP = "\x1e"  # record separator within appended timeline strings


class MemcacheLikeStore:
    """get / set / append over a plain hash table."""

    def __init__(self, meter) -> None:
        self.meter = meter
        self.data: Dict[str, str] = {}

    def set(self, key: str, value: str) -> None:
        self.meter.hash_jump()
        self.meter.add("bytes_written", len(value))
        self.data[key] = value

    def get(self, key: str) -> str:
        self.meter.hash_jump()
        return self.data.get(key, "")

    def append(self, key: str, value: str) -> None:
        self.meter.hash_jump()
        self.meter.add("bytes_written", len(value))
        self.data[key] = self.data.get(key, "") + value


class MemcacheLikeBackend(TwipBackend):
    name = "memcached"

    def __init__(self, backfill_limit: int = 16) -> None:
        super().__init__()
        self.store = MemcacheLikeStore(self.meter)
        self.backfill_limit = backfill_limit

    def _append_record(self, key: str, record: str) -> None:
        self.rpc()
        self.moved(len(record))
        self.store.append(key, record + SEP)

    def subscribe(self, user: str, poster: str) -> None:
        self._append_record(f"s:{user}", poster)
        self._append_record(f"rs:{poster}", user)
        # Backfill from the poster's post log.
        self.rpc()
        log = self.store.get(f"pl:{poster}")
        self.moved(len(log))
        records = [r for r in log.split(SEP) if r]
        for record in records[-self.backfill_limit :]:
            self._append_record(f"t:{user}", record)

    def post(self, poster: str, time: str, text: str) -> None:
        record = encode_tweet(time, poster, text)
        self._append_record(f"pl:{poster}", record)
        self.rpc()
        followers_blob = self.store.get(f"rs:{poster}")
        self.moved(len(followers_blob))
        followers = [f for f in followers_blob.split(SEP) if f]
        for user in followers:
            self._append_record(f"t:{user}", record)

    def timeline(self, user: str, since: str) -> List[Tweet]:
        # The whole string comes back; filtering happens client-side.
        self.rpc()
        blob = self.store.get(f"t:{user}")
        self.moved(len(blob))
        out: List[Tweet] = []
        for record in blob.split(SEP):
            if not record:
                continue
            time, poster, text = decode_tweet(record)
            if time >= since:
                out.append((time, poster, text))
        return sorted(out)
