"""Backing store substrate: the database behind the cache (paper §2).

:class:`BackingDatabase` is the store application writes go *around*
the cache to reach.  The deployment wrappers here model the paper's
three cache/DB arrangements in-process with synchronous callbacks; the
production write-around path lives in :mod:`repro.cdc`, where the
database's durable change feed (``BackingDatabase.attach_feed``)
drives join maintenance asynchronously through a ``CdcPump``, with
``settle_cdc()`` as the freshness barrier.
"""

from .database import BackingDatabase
from .deployment import (
    CachedBaseResolver,
    LookasideDeployment,
    WriteAroundDeployment,
    WriteThroughDeployment,
)
from .notify import ChangeCallback, NotificationHub, Subscription

__all__ = [
    "BackingDatabase",
    "CachedBaseResolver",
    "ChangeCallback",
    "LookasideDeployment",
    "NotificationHub",
    "Subscription",
    "WriteAroundDeployment",
    "WriteThroughDeployment",
]
