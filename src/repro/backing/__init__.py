"""Backing store substrate: the database behind the cache (paper §2)."""

from .database import BackingDatabase
from .deployment import (
    CachedBaseResolver,
    LookasideDeployment,
    WriteAroundDeployment,
    WriteThroughDeployment,
)
from .notify import ChangeCallback, NotificationHub, Subscription

__all__ = [
    "BackingDatabase",
    "CachedBaseResolver",
    "ChangeCallback",
    "LookasideDeployment",
    "NotificationHub",
    "Subscription",
    "WriteAroundDeployment",
    "WriteThroughDeployment",
]
