"""Cache deployments next to a backing database (paper §2).

The paper describes Pequod as a *write-around* cache by default —
application writes go to the database, the database forwards changes,
and the cache loads missed base data on demand — and notes that
write-through and lookaside deployments are also possible.  §5.1 runs
the evaluation in lookaside mode because database notification was a
bottleneck.  All three are implemented here:

* :class:`WriteAroundDeployment` — writes to the DB; the DB's
  notifications keep cached base data fresh (eventually consistent
  when notifications are queued).
* :class:`WriteThroughDeployment` — writes go to the DB and the cache
  synchronously (read-your-own-writes for a single client).
* :class:`LookasideDeployment` — writes go directly to the cache; the
  DB, if any, is bypassed.  This is the evaluation configuration.

Each deployment installs a :class:`CachedBaseResolver` so join
execution transparently loads missing base ranges from the database
(§3.3) and subscribes to keep them fresh.

The classes here model the arrangements in-process, with synchronous
notification callbacks.  The *deployable* write-around path is
``PequodServer(mode="write-around")``, built on :mod:`repro.cdc`: the
database's durable change feed replaces the synchronous callback, a
``CdcPump`` applies it in batches (with fenced backfill for cold
caches), and ``settle_cdc()`` bounds the asynchrony window.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.eviction import Evictable
from ..core.executor import DataResolver, JoinEngine
from ..core.operators import ChangeKind
from ..core.server import PequodServer
from ..core.status import StatusRange, StatusTable
from .database import BackingDatabase


class CachedBaseRange(Evictable):
    """An LRU entry for a database-backed base range (§2.5's third kind
    of evictable data: "cached base data, loaded on demand")."""

    __slots__ = ("resolver", "table", "lo", "hi")

    def __init__(self, resolver: "CachedBaseResolver", table: str, lo: str, hi: str):
        self.resolver = resolver
        self.table = table
        self.lo = lo
        self.hi = hi

    def evict(self, engine: JoinEngine) -> None:
        self.resolver.drop_range(engine, self.table, self.lo, self.hi)


class CachedBaseResolver(DataResolver):
    """Loads missing base-data ranges from the database (§3.3).

    Tracks which ranges are cache-resident per table (the same disjoint
    cover structure as join status ranges), fetches gaps in bulk, and
    subscribes to the database so later changes flow into the cache —
    where they trigger ordinary join maintenance.  Loaded ranges join
    the server's LRU so memory pressure can push them out (§2.5).
    """

    def __init__(self, db: BackingDatabase, base_tables: Set[str]) -> None:
        self.db = db
        self.base_tables = set(base_tables)
        self.presence: Dict[str, StatusTable] = {}
        self._engine: Optional[JoinEngine] = None
        self._subscriptions: Dict[tuple, object] = {}
        self.ranges_loaded = 0
        self.ranges_evicted = 0

    def attach(self, engine: JoinEngine) -> None:
        self._engine = engine

    # -- DataResolver ----------------------------------------------------------
    def ensure_range(self, engine: JoinEngine, table: str, lo: str, hi: str) -> None:
        if table not in self.base_tables:
            return
        self._engine = engine
        stable = self.presence.setdefault(table, StatusTable())
        for gap_lo, gap_hi, sr in stable.pieces(lo, hi):
            if sr is not None:
                continue
            rows = self.db.query(gap_lo, gap_hi)
            tbl = engine.store.table(table)
            for key, value in rows:
                tbl.put(key, value)
            fresh = StatusRange(gap_lo, gap_hi)
            stable.add(fresh)
            self.ranges_loaded += 1
            self._subscriptions[(table, gap_lo, gap_hi)] = self.db.subscribe(
                gap_lo, gap_hi, self._on_db_change
            )
            fresh.lru_entry = engine.lru.add(
                CachedBaseRange(self, table, gap_lo, gap_hi)
            )

    def drop_range(self, engine: JoinEngine, table: str, lo: str, hi: str) -> None:
        """Evict a cached base range: forget coverage, cancel the DB
        subscription, and remove the rows (dependents invalidate via
        ordinary REMOVE notifications)."""
        stable = self.presence.get(table)
        if stable is None:
            return
        for sr in stable.isolate(lo, hi):
            stable.remove(sr)
        sub = self._subscriptions.pop((table, lo, hi), None)
        if sub is not None:
            self.db.unsubscribe(sub)
        engine._clear_range(lo, hi)
        self.ranges_evicted += 1

    # -- notification sink -------------------------------------------------------
    def _on_db_change(
        self,
        key: str,
        old_value: Optional[str],
        new_value: Optional[str],
        kind: ChangeKind,
    ) -> None:
        engine = self._engine
        if engine is None:
            return
        # Only resident ranges are kept fresh; others reload on demand.
        table = key.split("|", 1)[0]
        stable = self.presence.get(table)
        if stable is None or stable.find(key) is None:
            return
        if kind is ChangeKind.REMOVE:
            engine.apply_remove(key)
        else:
            engine.apply_put(key, new_value or "")


class _BaseDeployment:
    """Shared wiring: a server, a database, and the resolver."""

    def __init__(
        self,
        server: PequodServer,
        db: BackingDatabase,
        base_tables: Iterable[str],
    ) -> None:
        self.server = server
        self.db = db
        self.resolver = CachedBaseResolver(db, set(base_tables))
        self.resolver.attach(server.engine)
        server.set_resolver(self.resolver)

    # Reads always come from the cache.
    def get(self, key: str) -> Optional[str]:
        return self.server.get(key)

    def scan(self, first: str, last: str) -> List[Tuple[str, str]]:
        return self.server.scan(first, last)

    def drain(self, limit: Optional[int] = None) -> int:
        """Deliver queued DB notifications (asynchronous deployments)."""
        return self.db.drain_notifications(limit)


class WriteAroundDeployment(_BaseDeployment):
    """Application writes go to the database only (§2)."""

    def put(self, key: str, value: str) -> None:
        self.db.put(key, value)

    def remove(self, key: str) -> None:
        self.db.remove(key)


class WriteThroughDeployment(_BaseDeployment):
    """Writes go to both database and cache, synchronously."""

    def put(self, key: str, value: str) -> None:
        self.db.put(key, value)
        # The DB notification may also deliver this write; applying it
        # directly makes it visible immediately (read-your-own-writes).
        self.server.put(key, value)

    def remove(self, key: str) -> None:
        self.db.remove(key)
        self.server.remove(key)


class LookasideDeployment(_BaseDeployment):
    """Writes go directly to the cache (§5.1's configuration)."""

    def __init__(
        self,
        server: PequodServer,
        db: Optional[BackingDatabase] = None,
        base_tables: Iterable[str] = (),
    ) -> None:
        super().__init__(server, db if db is not None else BackingDatabase(), base_tables)

    def put(self, key: str, value: str) -> None:
        self.server.put(key, value)

    def remove(self, key: str) -> None:
        self.server.remove(key)
