"""Change notifications from the backing store (paper §2).

The paper connects Pequod to a database shard and instructs the
database to forward updates for relevant tables/ranges "e.g., using
Postgres's notify statement".  ``NotificationHub`` reproduces that
contract: range subscriptions, and published changes delivered to every
covering subscription.

Delivery can be immediate (synchronous, for tests) or queued
(asynchronous, the realistic mode — the paper's write-around deployment
is eventually consistent because notification is asynchronous).  Queued
deliveries drain in publish order via :meth:`drain`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from ..store.interval_tree import IntervalTree
from ..core.operators import ChangeKind

#: (key, old_value, new_value, kind)
ChangeCallback = Callable[[str, Optional[str], Optional[str], ChangeKind], None]


class Subscription:
    """One registered range subscription."""

    __slots__ = ("lo", "hi", "callback", "active")

    def __init__(self, lo: str, hi: str, callback: ChangeCallback) -> None:
        self.lo = lo
        self.hi = hi
        self.callback = callback
        self.active = True

    def cancel(self) -> None:
        self.active = False


class NotificationHub:
    """Range-subscription fan-out with optional queued delivery."""

    def __init__(self, synchronous: bool = True) -> None:
        self.synchronous = synchronous
        self._subs = IntervalTree()
        self._queue: Deque[Tuple[Subscription, str, Optional[str], Optional[str], ChangeKind]] = deque()
        self.published = 0
        self.delivered = 0

    def subscribe(self, lo: str, hi: str, callback: ChangeCallback) -> Subscription:
        """Deliver future changes to keys in ``[lo, hi)`` to ``callback``."""
        if not lo < hi:
            raise ValueError(f"empty subscription range [{lo!r}, {hi!r})")
        sub = Subscription(lo, hi, callback)
        self._subs.add(lo, hi, sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        sub.cancel()
        self._subs.discard(sub.lo, sub.hi, sub)

    def subscription_count(self) -> int:
        return self._subs.payload_count()

    def publish(
        self,
        key: str,
        old_value: Optional[str],
        new_value: Optional[str],
        kind: ChangeKind,
    ) -> int:
        """Notify subscribers covering ``key``; returns match count."""
        self.published += 1
        matched = 0
        for entry in self._subs.stab(key):
            for sub in list(entry.payloads):
                if not sub.active:
                    continue
                matched += 1
                if self.synchronous:
                    self.delivered += 1
                    sub.callback(key, old_value, new_value, kind)
                else:
                    self._queue.append((sub, key, old_value, new_value, kind))
        return matched

    def pending(self) -> int:
        return len(self._queue)

    def drain(self, limit: Optional[int] = None) -> int:
        """Deliver queued notifications in order; returns count delivered."""
        delivered = 0
        while self._queue and (limit is None or delivered < limit):
            sub, key, old, new, kind = self._queue.popleft()
            if sub.active:
                self.delivered += 1
                delivered += 1
                sub.callback(key, old, new, kind)
        return delivered
