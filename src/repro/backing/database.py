"""The persistent backing store (paper §2).

Pequod sits in front of "a persistent backing store (typically a
database)".  The paper's deployments used PostgreSQL or a Pequod
process in the base-data role; experiments could not use real database
notification because of notification bottlenecks.

``BackingDatabase`` is a small ordered store with the properties the
cache design depends on:

* durable-looking writes with insert/update/delete semantics,
* ordered range queries (the cache loads containing ranges in bulk),
* change notifications on subscribed ranges (Postgres ``notify``),
* a change-data-capture hook: attach a
  :class:`~repro.cdc.feed.ChangeFeed` and every committed write becomes
  a sequenced, optionally journaled record that the write-around
  deployment's :class:`~repro.cdc.pump.CdcPump` tails (see
  :mod:`repro.cdc`),
* query/row accounting so benchmarks can charge database work.

It deliberately reuses the ordered-store substrate: a database shard in
the evaluation *is* a Pequod process absorbing writes (§5.5) — the
ordered map behind it resolves through the same ``resolve_map_impl``
registry as the cache's tables (``"rbtree"``, the blocked
``"sortedarray"`` default, or the value-spilling ``"disk"`` tier).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.operators import ChangeKind
from ..store.omap import resolve_map_impl
from .notify import ChangeCallback, NotificationHub, Subscription


class BackingDatabase:
    """An ordered key-value database with range notifications and CDC."""

    def __init__(
        self,
        synchronous_notify: bool = True,
        store_impl=None,
        feed=None,
    ) -> None:
        self._tree = resolve_map_impl(store_impl)()
        self.hub = NotificationHub(synchronous=synchronous_notify)
        self.feed = feed
        self.query_count = 0
        self.rows_returned = 0
        self.write_count = 0

    def __len__(self) -> int:
        return len(self._tree)

    # ------------------------------------------------------------------
    # Change data capture
    # ------------------------------------------------------------------
    def attach_feed(self, feed, replay: bool = False) -> None:
        """Attach a :class:`~repro.cdc.feed.ChangeFeed`; every committed
        write from here on is sequenced into it.

        With ``replay=True`` the feed's retained records (the durable
        journal, on a restarted deployment) are first applied to the
        tree silently — no notifications, no re-recording — rebuilding
        the database state the journal describes.
        """
        if replay:
            for rec in feed.replay():
                if rec.kind is ChangeKind.REMOVE:
                    node = self._tree.find_node(rec.key)
                    if node is not None:
                        self._tree.remove_node(node)
                else:
                    node = self._tree.find_node(rec.key)
                    if node is None:
                        self._tree.insert(rec.key, rec.new)
                    else:
                        node.value = rec.new
        self.feed = feed

    # ------------------------------------------------------------------
    # Writes (the application's write path in write-around deployments)
    # ------------------------------------------------------------------
    def put(self, key: str, value: str) -> None:
        """Insert or update ``key``; record to the feed and notify."""
        if not key:
            raise ValueError("keys must be non-empty")
        self.write_count += 1
        node = self._tree.find_node(key)
        if node is None:
            self._tree.insert(key, value)
            old, kind = None, ChangeKind.INSERT
        else:
            old, kind = node.value, ChangeKind.UPDATE
            node.value = value
        if self.feed is not None:
            self.feed.record(key, old, value, kind)
        self.hub.publish(key, old, value, kind)

    def remove(self, key: str) -> bool:
        self.write_count += 1
        node = self._tree.find_node(key)
        if node is None:
            return False
        old = node.value
        self._tree.remove_node(node)
        if self.feed is not None:
            self.feed.record(key, old, None, ChangeKind.REMOVE)
        self.hub.publish(key, old, None, ChangeKind.REMOVE)
        return True

    def load_bulk(self, pairs) -> None:
        """Populate without notification (initial dataset load)."""
        for key, value in pairs:
            self._tree.insert(key, value)

    # ------------------------------------------------------------------
    # Reads (the cache's miss path)
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[str]:
        self.query_count += 1
        value = self._tree.get(key)
        if value is not None:
            self.rows_returned += 1
        return value

    def query(self, lo: str, hi: str) -> List[Tuple[str, str]]:
        """All pairs with ``lo <= key < hi`` in order."""
        self.query_count += 1
        rows = list(self._tree.items(lo, hi))
        self.rows_returned += len(rows)
        return rows

    def scan_from(self, lo: str, limit: int) -> List[Tuple[str, str]]:
        """Up to ``limit`` pairs with ``key >= lo``, in order — the
        chunked scan the CDC pump's fenced backfill walks."""
        self.query_count += 1
        rows: List[Tuple[str, str]] = []
        for key, value in self._tree.items(lo, None):
            rows.append((key, value))
            if len(rows) >= limit:
                break
        self.rows_returned += len(rows)
        return rows

    def count(self, lo: str, hi: str) -> int:
        return self._tree.count_range(lo, hi)

    # ------------------------------------------------------------------
    # Notifications
    # ------------------------------------------------------------------
    def subscribe(self, lo: str, hi: str, callback: ChangeCallback) -> Subscription:
        """Forward future changes in ``[lo, hi)`` to the cache."""
        return self.hub.subscribe(lo, hi, callback)

    def unsubscribe(self, sub: Subscription) -> None:
        self.hub.unsubscribe(sub)

    def drain_notifications(self, limit: Optional[int] = None) -> int:
        return self.hub.drain(limit)
