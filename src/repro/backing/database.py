"""The persistent backing store (paper §2).

Pequod sits in front of "a persistent backing store (typically a
database)".  The paper's deployments used PostgreSQL or a Pequod
process in the base-data role; experiments could not use real database
notification because of notification bottlenecks.

``BackingDatabase`` is a small ordered store with the properties the
cache design depends on:

* durable-looking writes with insert/update/delete semantics,
* ordered range queries (the cache loads containing ranges in bulk),
* change notifications on subscribed ranges (Postgres ``notify``),
* query/row accounting so benchmarks can charge database work.

It deliberately reuses the ordered-store substrate: a database shard in
the evaluation *is* a Pequod process absorbing writes (§5.5).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.operators import ChangeKind
from ..store.rbtree import RBTree
from .notify import ChangeCallback, NotificationHub, Subscription


class BackingDatabase:
    """An ordered key-value database with range notifications."""

    def __init__(self, synchronous_notify: bool = True) -> None:
        self._tree = RBTree()
        self.hub = NotificationHub(synchronous=synchronous_notify)
        self.query_count = 0
        self.rows_returned = 0
        self.write_count = 0

    def __len__(self) -> int:
        return len(self._tree)

    # ------------------------------------------------------------------
    # Writes (the application's write path in write-around deployments)
    # ------------------------------------------------------------------
    def put(self, key: str, value: str) -> None:
        """Insert or update ``key`` and notify subscribers."""
        if not key:
            raise ValueError("keys must be non-empty")
        self.write_count += 1
        node = self._tree.find_node(key)
        if node is None:
            self._tree.insert(key, value)
            self.hub.publish(key, None, value, ChangeKind.INSERT)
        else:
            old = node.value
            node.value = value
            self.hub.publish(key, old, value, ChangeKind.UPDATE)

    def remove(self, key: str) -> bool:
        self.write_count += 1
        node = self._tree.find_node(key)
        if node is None:
            return False
        old = node.value
        self._tree.remove_node(node)
        self.hub.publish(key, old, None, ChangeKind.REMOVE)
        return True

    def load_bulk(self, pairs) -> None:
        """Populate without notification (initial dataset load)."""
        for key, value in pairs:
            self._tree.insert(key, value)

    # ------------------------------------------------------------------
    # Reads (the cache's miss path)
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[str]:
        self.query_count += 1
        value = self._tree.get(key)
        if value is not None:
            self.rows_returned += 1
        return value

    def query(self, lo: str, hi: str) -> List[Tuple[str, str]]:
        """All pairs with ``lo <= key < hi`` in order."""
        self.query_count += 1
        rows = list(self._tree.items(lo, hi))
        self.rows_returned += len(rows)
        return rows

    def count(self, lo: str, hi: str) -> int:
        return self._tree.count_range(lo, hi)

    # ------------------------------------------------------------------
    # Notifications
    # ------------------------------------------------------------------
    def subscribe(self, lo: str, hi: str, callback: ChangeCallback) -> Subscription:
        """Forward future changes in ``[lo, hi)`` to the cache."""
        return self.hub.subscribe(lo, hi, callback)

    def unsubscribe(self, sub: Subscription) -> None:
        self.hub.unsubscribe(sub)

    def drain_notifications(self, limit: Optional[int] = None) -> int:
        return self.hub.drain(limit)
