"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``serve``  — run a Pequod RPC server on TCP (optionally installing
  joins from a file or the command line);
* ``watch``  — stream committed changes in a key range as the server
  pushes them (§2.4): any backend, or a live ``serve`` instance via
  ``--host``/``--port``; ``--feed`` drives demo Twip writes so the
  stream shows live updates;
* ``demo``   — the quickstart walkthrough, on any backend
  (``--backend local|rpc|cluster``);
* ``bench``  — regenerate a paper experiment (fig7 / fig8 / fig9 /
  fig10 / write_batching / read_path / concurrency) or run the
  ``twip`` workload through the unified client on one or all
  deployment shapes (``--backend``), and print its table or series;
* ``profile`` — cProfile a named bench workload and print the top-20
  functions by cumulative time (where the next read-path hunt starts);
* ``joins``  — parse and validate a join file, printing the normalized
  forms (a linter for cache-join specs).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

from . import __version__
from .core.grammar import parse_joins
from .core.server import PequodServer


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pequod cache joins (NSDI '14) reproduction",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run a Pequod RPC server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7709)
    serve.add_argument(
        "--join", action="append", default=[],
        help="cache join spec to install at startup (repeatable)",
    )
    serve.add_argument(
        "--join-file", default=None,
        help="file of cache join specs (';'-separated, // comments)",
    )
    serve.add_argument(
        "--subtable", action="append", default=[], metavar="TABLE:DEPTH",
        help="mark a subtable boundary, e.g. t:2 (repeatable)",
    )
    serve.add_argument("--memory-limit", type=int, default=None)
    serve.add_argument(
        "--store-impl", choices=["rbtree", "sortedarray", "disk"],
        default=None,
        help="ordered map backing the data plane (default: sortedarray; "
        "'disk' spills cold values to segment files)",
    )
    serve.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="journal client writes to a WAL under DIR, checkpoint them "
        "into segment files, and recover prior state on startup",
    )
    serve.add_argument(
        "--wal-fsync", choices=["always", "batch", "off"], default="batch",
        help="WAL durability policy (default: batch — fsync every 64 KiB "
        "and on shutdown)",
    )
    serve.add_argument(
        "--mode", choices=["write-through", "write-around"],
        default="write-through",
        help="write deployment (§2): write-through applies writes to the "
        "cache synchronously; write-around routes them to a backing "
        "database whose durable change feed drives cache maintenance "
        "asynchronously (see repro.cdc)",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="also serve Prometheus text on http://HOST:PORT/metrics",
    )
    serve.add_argument(
        "--overload-mode", choices=["shed", "degrade"], default=None,
        help="admission control: shed overloaded work with a typed "
        "error, or degrade reads to bounded staleness",
    )
    serve.add_argument(
        "--max-staleness", type=float, default=None, metavar="SECONDS",
        help="staleness bound for --overload-mode degrade",
    )
    serve.add_argument(
        "--overload-queue-depth", type=int, default=None, metavar="N",
        help="pipelined request depth above which the server is overloaded",
    )
    serve.add_argument(
        "--overload-memory-limit", type=int, default=None, metavar="BYTES",
        help="soft memory ceiling above which the server is overloaded",
    )

    cluster = sub.add_parser(
        "cluster",
        help="run a partitioned multi-process cluster (real TCP scale-out)",
    )
    cluster.add_argument("--nodes", type=int, default=2, metavar="N")
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument(
        "--tables", default="p,s,t", metavar="T1,T2,...",
        help="tables to range-partition across the nodes",
    )
    cluster.add_argument(
        "--splits", default="", metavar="S1,S2,...",
        help="aligned segment cut points within each table "
        "(default: one contiguous slice per table)",
    )
    cluster.add_argument(
        "--replication", type=int, default=2, metavar="K",
        help="copies of each base range (1 = no replicas; default 2)",
    )
    cluster.add_argument(
        "--join", action="append", default=[],
        help="cache join spec to install on every node (repeatable)",
    )
    cluster.add_argument(
        "--join-file", default=None,
        help="file of cache join specs (';'-separated, // comments)",
    )
    cluster.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="per-node WAL + checkpoints under DIR/<node>",
    )
    cluster.add_argument(
        "--in-process", action="store_true",
        help="run nodes on threads instead of subprocesses (debugging)",
    )
    cluster.add_argument(
        "--mode", choices=["write-through", "write-around"],
        default="write-through",
        help="write deployment on every node (see `repro serve --mode`)",
    )

    # Hidden: the subprocess entry `repro cluster` spawns per node.
    cnode = sub.add_parser("cluster-node")
    cnode.add_argument("--name", required=True)
    cnode.add_argument("--host", default="127.0.0.1")
    cnode.add_argument("--port", type=int, default=0)
    cnode.add_argument("--peer-port", type=int, default=0)
    cnode.add_argument("--data-dir", default=None)
    cnode.add_argument("--memory-limit", type=int, default=None)
    cnode.add_argument(
        "--mode", choices=["write-through", "write-around"],
        default="write-through",
    )

    metrics = sub.add_parser(
        "metrics", help="scrape a running server's metrics"
    )
    metrics.add_argument("--host", default="127.0.0.1")
    metrics.add_argument("--port", type=int, default=7709)
    metrics.add_argument(
        "--cluster", default=None, metavar="HOST:PORT,HOST:PORT,...",
        help="scrape several cluster nodes and merge their series, "
        'each tagged with its node label (stat{node="..."})',
    )
    metrics.add_argument(
        "--format", choices=["table", "prom"], default="table",
        help="table of series, or raw Prometheus exposition text",
    )
    metrics.add_argument(
        "--match", default=None, metavar="SUBSTRING",
        help="only show series whose key contains SUBSTRING",
    )

    watch = sub.add_parser(
        "watch", help="stream committed changes in a key range (server push)"
    )
    watch.add_argument("lo", help="inclusive lower bound of the key range")
    watch.add_argument("hi", help="exclusive upper bound of the key range")
    watch.add_argument(
        "--backend", choices=["local", "rpc", "cluster"], default="rpc",
        help="deployment shape to watch (default: rpc — true server push "
        "over one pipelined TCP connection)",
    )
    watch.add_argument(
        "--host", default=None,
        help="connect to an existing RPC server (e.g. a `repro serve`)",
    )
    watch.add_argument("--port", type=int, default=None)
    watch.add_argument(
        "--count", type=int, default=None,
        help="exit after printing this many events",
    )
    watch.add_argument(
        "--timeout", type=float, default=None,
        help="exit after this many seconds without an event",
    )
    watch.add_argument(
        "--feed", action="store_true",
        help="drive the demo Twip writes so the stream shows live updates",
    )

    demo = sub.add_parser("demo", help="run the quickstart walkthrough")
    demo.add_argument(
        "--backend", choices=["local", "rpc", "cluster"], default="local",
        help="deployment shape to run the walkthrough on",
    )

    bench = sub.add_parser("bench", help="regenerate a paper experiment")
    bench.add_argument(
        "experiment",
        choices=["fig7", "fig8", "fig9", "fig10", "write_batching",
                 "read_path", "write_path", "twip", "concurrency",
                 "overload", "persistence", "cluster_scaleout", "cdc"],
    )
    bench.add_argument(
        "--scale", type=float, default=1.0,
        help="scale factor on the canonical experiment size",
    )
    bench.add_argument(
        "--backend", choices=["local", "rpc", "cluster", "all"],
        default="all",
        help="deployment shape(s) for the unified-client experiments "
        "(twip): in-process, real TCP RPC, simulated cluster, or all "
        "three with an identical-output-state check",
    )
    bench.add_argument(
        "--json", dest="json_path", default=None, metavar="PATH",
        help="also write the result as JSON (CI artifact / trend seed)",
    )

    profile = sub.add_parser(
        "profile", help="cProfile a bench workload (top-20 cumulative)"
    )
    profile.add_argument(
        "workload", choices=["read_path", "write_path", "write_batching",
                             "twip"],
    )
    profile.add_argument(
        "--scale", type=float, default=0.25,
        help="scale factor on the canonical workload size",
    )
    profile.add_argument(
        "--limit", type=int, default=20,
        help="how many functions to print",
    )

    joins = sub.add_parser("joins", help="validate a cache-join file")
    joins.add_argument("path")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "cluster-node":
        from .distrib.procs import run_node

        run_node(
            args.name,
            host=args.host,
            port=args.port,
            peer_port=args.peer_port,
            data_dir=args.data_dir,
            memory_limit=args.memory_limit,
            mode=args.mode,
        )
        return 0
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "watch":
        return _cmd_watch(args)
    if args.command == "demo":
        return _cmd_demo(args.backend)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "joins":
        return _cmd_joins(args)
    return 2  # pragma: no cover - argparse enforces the choices


# ----------------------------------------------------------------------
# Canonical workload sizes at scale ``s`` — shared by ``bench`` and
# ``profile`` so profiling always examines exactly the measured workload.
def _read_path_sizes(s: float) -> dict:
    return {
        "n_users": max(50, int(400 * s)),
        "mean_follows": max(4.0, 12 * min(s, 1.0)),
        "total_ops": max(800, int(20000 * s)),
    }


def _write_path_sizes(s: float) -> dict:
    return {
        "fan_out": max(64, int(10000 * s)),
        "rounds": max(2, int(8 * min(s, 1.0))),
    }


def _write_batching_sizes(s: float) -> dict:
    return {
        "n_users": max(20, int(400 * s)),
        "mean_follows": max(3.0, 12 * min(s, 1.0)),
        "posts": max(64, int(4096 * s)),
    }


def _twip_sizes(s: float) -> dict:
    return {
        "n_users": max(20, int(60 * s)),
        "mean_follows": max(3.0, 6 * min(s, 2.0)),
        "total_ops": max(100, int(800 * s)),
    }


def _concurrency_sizes(s: float) -> dict:
    return {
        "total_ops": max(400, int(2000 * s)),
        "repeats": 3 if s >= 1.0 else 2,
    }


def _overload_sizes(s: float) -> dict:
    return {
        "n_users": max(40, int(300 * s)),
        "mean_follows": max(3.0, 10 * min(s, 1.0)),
        "ops": max(600, int(6000 * s)),
    }


def _cluster_scaleout_sizes(s: float) -> dict:
    # Every scale runs the full (1, 2, 4, 8) ladder so smoke results
    # stay point-for-point comparable with the committed baseline
    # (scripts/bench_compare.py fails on vanished points); reduced
    # scale shrinks the op count instead.
    return {
        "proc_counts": (1, 2, 4, 8),
        "total_ops": max(400, int(4000 * s)),
        "drivers": 2,
    }


def _cdc_sizes(s: float) -> dict:
    return {
        "n_users": max(20, int(60 * s)),
        "mean_follows": max(3.0, 6 * min(s, 2.0)),
        "total_ops": max(200, int(2000 * s)),
    }


def _persistence_sizes(s: float) -> dict:
    return {
        "n_keys": max(2000, int(100_000 * s)),
        "read_ops": max(500, int(4000 * s)),
    }


# ----------------------------------------------------------------------
def _overload_policy_from(args):
    """Build an OverloadPolicy from serve flags, or None."""
    if args.overload_mode is None:
        if args.max_staleness is not None or args.overload_queue_depth is not None \
                or args.overload_memory_limit is not None:
            print("overload flags require --overload-mode", file=sys.stderr)
            raise SystemExit(2)
        return None
    from .core.load import OverloadPolicy

    try:
        return OverloadPolicy(
            mode=args.overload_mode,
            max_staleness=args.max_staleness,
            soft_memory_limit=args.overload_memory_limit,
            max_queue_depth=args.overload_queue_depth,
        )
    except ValueError as exc:
        print(f"bad overload policy: {exc}", file=sys.stderr)
        raise SystemExit(2) from exc


def _cmd_serve(args) -> int:
    from .net.rpc_server import RpcServer

    config = {}
    for spec in args.subtable:
        table, _, depth = spec.partition(":")
        if not depth.isdigit():
            print(f"bad --subtable {spec!r}; expected TABLE:DEPTH",
                  file=sys.stderr)
            return 2
        config[table] = int(depth)
    if args.store_impl == "disk" and args.data_dir is None:
        print("note: --store-impl disk without --data-dir spills to a "
              "temp dir (no durability)", file=sys.stderr)
    server = PequodServer(
        subtable_config=config or None,
        memory_limit=args.memory_limit,
        store_impl=args.store_impl,
        overload_policy=_overload_policy_from(args),
        data_dir=args.data_dir,
        wal_fsync=args.wal_fsync,
        mode=args.mode,
    )
    if args.data_dir is not None and server.stats.get("persist_recovered_ops"):
        print(f"recovered {server.stats.get('persist_recovered_ops'):.0f} "
              f"op(s) from {args.data_dir} in "
              f"{server.stats.get('persist_recovery_ms'):.1f} ms")
    texts = list(args.join)
    if args.join_file:
        with open(args.join_file) as fh:
            texts.append(fh.read())
    for text in texts:
        for join in server.add_join(text):
            print(f"installed: {join.text}")

    async def run() -> None:
        import signal

        rpc = RpcServer(server, args.host, args.port)
        await rpc.start()
        print(f"pequod {__version__} listening on {rpc.host}:{rpc.port}")
        if args.metrics_port is not None:
            from .metrics import MetricsHttpServer

            http = MetricsHttpServer(
                server.metrics_text, args.host, args.metrics_port
            )
            await http.start()
            print(
                f"metrics on http://{args.host}:{http.port}/metrics"
            )
        # Graceful shutdown: SIGTERM/SIGINT stop accepting, then flush
        # and close the WAL so every acknowledged write is durable.
        shutdown = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, shutdown.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        serve_task = asyncio.ensure_future(rpc.serve_forever())
        stop_task = asyncio.ensure_future(shutdown.wait())
        try:
            await asyncio.wait(
                (serve_task, stop_task),
                return_when=asyncio.FIRST_COMPLETED,
            )
        finally:
            serve_task.cancel()
            stop_task.cancel()
            await rpc.stop()
            server.close()
            print("shut down cleanly (WAL flushed)")

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("bye")
    return 0


def _cmd_cluster(args) -> int:
    """Run a real multi-process cluster until interrupted."""
    from .distrib.procs import ProcCluster

    texts = list(args.join)
    if args.join_file:
        with open(args.join_file) as fh:
            texts.append(fh.read())
    tables = [t for t in args.tables.split(",") if t]
    splits = [s for s in args.splits.split(",") if s]
    cluster = ProcCluster(
        args.nodes,
        tables=tables,
        splits=splits,
        replication=args.replication,
        in_process=args.in_process,
        host=args.host,
        data_dir=args.data_dir,
        joins=texts,
        mode=args.mode,
    )
    with cluster:
        print(f"pequod {__version__} cluster: {args.nodes} node(s), "
              f"replication {cluster.replication}, "
              f"map v{cluster.map.version} ({len(cluster.map.ranges)} ranges)")
        for name, (host, port, peer_port) in sorted(cluster.addresses().items()):
            print(f"  {name}: client {host}:{port}  peer {host}:{peer_port}")
        for text in texts:
            print(f"  join installed on all nodes: {text.strip()}")
        print("Ctrl-C to stop")
        try:
            import signal

            waiter = __import__("threading").Event()
            signal.signal(signal.SIGTERM, lambda *_: waiter.set())
            waiter.wait()
        except KeyboardInterrupt:
            pass
    print("cluster stopped")
    return 0


def _metrics_cluster(args) -> int:
    """Scrape every node of a process cluster; node-label the series."""
    from .metrics import label_by_node, render_prometheus
    from .net.rpc_client import SyncRpcClient

    per_node: dict = {}
    for spec in args.cluster.split(","):
        host, _, port = spec.strip().rpartition(":")
        if not host or not port.isdigit():
            print(f"bad --cluster endpoint {spec!r}; expected HOST:PORT",
                  file=sys.stderr)
            return 2
        try:
            client = SyncRpcClient(host, int(port))
        except OSError as exc:
            print(f"cannot connect to {spec}: {exc}", file=sys.stderr)
            return 1
        try:
            info = client.call("cluster_info")
            name = info["name"] if isinstance(info, dict) else spec
            per_node[name] = client.stats()
        finally:
            client.close()
    merged = label_by_node(per_node)
    if args.match:
        merged = {k: v for k, v in merged.items() if args.match in k}
    if args.format == "prom":
        sys.stdout.write(render_prometheus(merged))
        return 0
    rows = sorted(merged.items())
    width = max((len(k) for k, _ in rows), default=0)
    for key, value in rows:
        print(f"{key:<{width}}  {value:g}")
    return 0


def _cmd_metrics(args) -> int:
    """Scrape a live ``repro serve`` instance over its RPC port."""
    from .net.rpc_client import SyncRpcClient

    if args.cluster is not None:
        return _metrics_cluster(args)
    try:
        client = SyncRpcClient(args.host, args.port)
    except OSError as exc:
        print(f"cannot connect to {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    try:
        if args.format == "prom":
            text = client.call("metrics")
            if args.match:
                text = "\n".join(
                    line for line in text.splitlines() if args.match in line
                ) + "\n"
            sys.stdout.write(text)
            return 0
        snapshot = client.stats()
    finally:
        client.close()
    rows = sorted(snapshot.items())
    if args.match:
        rows = [(k, v) for k, v in rows if args.match in k]
    width = max((len(k) for k, _ in rows), default=0)
    for key, value in rows:
        print(f"{key:<{width}}  {value:g}")
    return 0


#: Demo writes driven by ``repro watch --feed``: the §2 Twip
#: walkthrough, producing pushed timeline updates.
_FEED_JOIN = (
    "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"
)


async def _watch_feed(client) -> None:
    await client.add_join(_FEED_JOIN)
    await client.put("s|ann|bob", "1")
    await client.scan_prefix("t|ann|")  # materialize: maintenance now pushes
    for tick, message in enumerate(
        ("hello, world!", "pushed, not polled", "freshness is easy")
    ):
        await client.put(f"p|bob|{100 + 20 * tick:04d}", message)
        # Deliver in-flight propagation so deployments with
        # asynchronous maintenance (the cluster) push promptly too.
        await client.settle()


def _cmd_watch(args) -> int:
    from .client import make_async_client

    async def run() -> int:
        kwargs: dict = {}
        if args.host is not None or args.port is not None:
            if args.backend != "rpc":
                print("--host/--port connect to an RPC server; use "
                      "--backend rpc", file=sys.stderr)
                return 2
            kwargs.update(host=args.host, port=args.port)
        if args.backend == "cluster":
            kwargs.update(base_tables=("p", "s"))
        client = await make_async_client(args.backend, **kwargs)
        try:
            watch = await client.watch(args.lo, args.hi)
            print(f"watching [{args.lo!r}, {args.hi!r}) on "
                  f"{client.backend} (server push; Ctrl-C to stop)")
            async def run_feed() -> None:
                try:
                    await _watch_feed(client)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    # A dead feed must not leave the stream hanging
                    # silently: report it and end the watch.
                    print(f"feed failed: {exc}", file=sys.stderr)
                    await watch.close()

            feed = asyncio.ensure_future(run_feed()) if args.feed else None
            seen = 0
            try:
                while args.count is None or seen < args.count:
                    event = await watch.next_event(timeout=args.timeout)
                    if event is None:
                        break  # stream closed, or --timeout with no event
                    seen += 1
                    was = f"  (was {event.old!r})" if event.old is not None else ""
                    print(f"#{event.seq:<6} {event.kind.value:<7} "
                          f"{event.key} = {event.new!r}{was}")
            finally:
                if feed is not None:
                    feed.cancel()
                await watch.close()
            print(f"{seen} event(s)")
            return 0
        finally:
            await client.aclose()

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("bye")
        return 0


def _cmd_demo(backend: str = "local") -> int:
    from .client import join, make_client

    timeline = (
        join("t|<user>|<time>|<poster>")
        .check("s|<user>|<poster>")
        .copy("p|<poster>|<time>")
    )
    with make_client(
        backend,
        joins=timeline,
        subtable_config={"t": 2},
        base_tables=("p", "s"),
    ) as client:
        print(f"backend: {client.backend}")
        client.put("s|ann|bob", "1")
        client.put("p|bob|0100", "hello, world!")
        client.settle()
        print("ann's timeline:", client.scan("t|ann|", "t|ann}"))
        client.put("p|bob|0120", "again")
        client.settle()
        print("after another post:", client.scan("t|ann|", "t|ann}"))
    return 0


def _cmd_bench(args) -> int:
    from .bench.harness import (
        run_figure7,
        run_figure8,
        run_figure9,
        run_figure10,
        run_write_batching,
    )
    from .bench.report import (
        format_series,
        format_table,
        normalized,
        write_batching_table,
    )

    s = args.scale
    payload: dict = {"experiment": args.experiment, "scale": s}
    if args.experiment != "twip" and args.backend != "all":
        print(f"--backend applies to the 'twip' experiment; "
              f"'{args.experiment}' regenerates a fixed paper figure",
              file=sys.stderr)
        return 2
    if args.experiment == "twip":
        from .bench.harness import run_twip_matrix

        backends = (
            ("local", "rpc", "cluster")
            if args.backend == "all" else (args.backend,)
        )
        result = run_twip_matrix(backends=backends, **_twip_sizes(s))
        payload.update(result)
        rows = [
            (name, f"{r['wall_s']:.3f} s", f"{r['ops_per_sec']:.0f}",
             str(r["keys"]), r["state_sha256"][:12])
            for name, r in result["backends"].items()
        ]
        print(format_table(
            ["Backend", "Wall", "ops/s", "keys", "state digest"], rows,
            title="Twip via the unified PequodClient",
        ))
        status = _finish_bench(args, payload)
        if len(backends) > 1:
            print("output state identical across backends:",
                  result["state_identical"])
            if not result["state_identical"]:
                # JSON (with per-backend digests) is already written —
                # the diagnostic survives the failure.
                return 1
        return status
    if args.experiment == "concurrency":
        from .bench.harness import run_concurrency

        result = run_concurrency(**_concurrency_sizes(s))
        payload.update(result)
        rows = [
            (str(p["depth"]), f"{p['ops_per_sec']:.0f}",
             f"{p['speedup']:.2f}x")
            for p in result["points"]
        ]
        print(format_table(
            ["outstanding", "ops/s", "vs sync baseline"], rows,
            title="Pipelined RPCs outstanding on one connection (§5.1)",
        ))
        print(f"sync baseline (one outstanding request): "
              f"{result['baseline']['ops_per_sec']:.0f} ops/s")
        return _finish_bench(args, payload)
    if args.experiment == "cluster_scaleout":
        from .bench.harness import run_cluster_scaleout

        result = run_cluster_scaleout(**_cluster_scaleout_sizes(s))
        payload.update(result)
        rows = [
            (str(p["processes"]), f"{p['ops_per_sec']:.0f}",
             f"{p['speedup']:.2f}x", f"{p['p50_us']:.0f}",
             f"{p['p95_us']:.0f}", f"{p['p99_us']:.0f}")
            for p in result["points"]
        ]
        print(format_table(
            ["procs", "ops/s", "vs 1 proc", "p50 us", "p95 us", "p99 us"],
            rows,
            title="Multi-process cluster scale-out (real TCP)",
        ))
        print(f"machine cores: {result['cpu_cores']}")
        return _finish_bench(args, payload)
    if args.experiment == "overload":
        from .bench.harness import run_overload

        result = run_overload(**_overload_sizes(s))
        payload.update(result)
        rows = [
            (p["mode"], f"{p['ops_per_sec']:.0f}", f"{p['speedup']:.2f}x",
             f"{p['served']:.0f}", f"{p['shed']:.0f}",
             f"{p['stale_reads_served']:.0f}")
            for p in result["points"]
        ]
        print(format_table(
            ["Mode", "ops/s", "vs baseline", "served", "shed", "stale"],
            rows,
            title="Overload policy under a forced burst (middle half)",
        ))
        print("degrade staleness within bound:",
              result["staleness_bounded"])
        status = _finish_bench(args, payload)
        if not result["staleness_bounded"]:
            return 1
        return status
    if args.experiment == "cdc":
        from .bench.harness import run_cdc

        result = run_cdc(**_cdc_sizes(s))
        payload.update(result)
        rows = [
            (p["mode"], f"{p['ops_per_sec']:.0f}", f"{p['speedup']:.2f}x",
             f"{p['lag_p50_ms']:.2f}" if p.get("lag_p50_ms") is not None else "-",
             f"{p['lag_p95_ms']:.2f}" if p.get("lag_p95_ms") is not None else "-",
             f"{p['lag_p99_ms']:.2f}" if p.get("lag_p99_ms") is not None else "-")
            for p in result["points"]
        ]
        print(format_table(
            ["Mode", "ingest/s", "vs write-through",
             "lag p50 ms", "p95 ms", "p99 ms"],
            rows,
            title="Write-around CDC: ingest rate and propagation lag",
        ))
        print("post-settle state identical to write-through:",
              result["state_identical"])
        status = _finish_bench(args, payload)
        if not result["state_identical"]:
            return 1
        return status
    if args.experiment == "persistence":
        from .bench.harness import run_persistence

        result = run_persistence(**_persistence_sizes(s))
        payload.update(result)
        rows = [
            (p["config"],
             f"{p['wall_s']:.3f} s" if "wall_s" in p else "-",
             f"{p['ops_per_sec']:.0f}" if "ops_per_sec" in p else "-",
             f"{p['speedup']:.2f}x")
            for p in result["points"]
        ]
        print(format_table(
            ["Configuration", "Wall", "ops/s", "ratio"], rows,
            title="Durable persistence: recovery, spilled reads, bloom skips",
        ))
        print(f"recovery: {result['recovery']['recovery_ms']:.1f} ms for "
              f"{result['workload']['n_keys']} keys")
        print(f"bloom skipped {result['bloom']['skip_ratio'] * 100:.1f}% of "
              f"negative segment probes")
        print("state identical across shutdown/recovery:",
              result["state_identical"])
        status = _finish_bench(args, payload)
        if not result["state_identical"]:
            return 1
        return status
    if args.experiment == "read_path":
        from .bench.harness import run_read_path

        result = run_read_path(**_read_path_sizes(s))
        payload.update(result)
        rows = [
            (p["config"], f"{p['cpu_s']:.3f} s", f"{p['ops_per_sec']:.0f}",
             f"{p['speedup']:.2f}x")
            for p in result["points"]
        ]
        print(format_table(
            ["Configuration", "CPU", "ops/s", "speedup"], rows,
            title="Read-path overhaul on the read-heavy Twip scan workload",
        ))
        micro = result["pattern_micro"]
        print("pattern match (compiled vs reference): "
              + ", ".join(
                  f"{name} {m['speedup']:.2f}x" for name, m in micro.items()
              ))
        print("output state identical across configurations:",
              result["state_identical"])
        status = _finish_bench(args, payload)
        if not result["state_identical"]:
            return 1
        return status
    if args.experiment == "write_path":
        from .bench.harness import run_write_path

        result = run_write_path(**_write_path_sizes(s))
        payload.update(result)
        rows = [
            (p["config"], f"{p['cpu_s']:.3f} s", f"{p['ops_per_sec']:.1f}",
             f"{p['speedup']:.2f}x")
            for p in result["points"]
        ]
        print(format_table(
            ["Configuration", "CPU", "posts/s", "speedup"], rows,
            title="Write-path overhaul on the celebrity fan-out workload",
        ))
        print("whole-table fast-path hits:",
              int(result["whole_table_fastpath_hits"]))
        print("output state identical across configurations:",
              result["state_identical"])
        status = _finish_bench(args, payload)
        if not result["state_identical"]:
            return 1
        return status
    if args.experiment == "write_batching":
        result = run_write_batching(**_write_batching_sizes(s))
        payload.update(result)
        print(write_batching_table(result["points"]))
        print("output state identical across batch sizes:",
              result["state_identical"])
        return _finish_bench(args, payload)
    if args.experiment == "fig7":
        runs = run_figure7(
            n_users=int(500 * s), mean_follows=15, total_ops=int(12000 * s)
        )
        base = next(r.modeled_us for r in runs if r.name == "pequod")
        rows = [
            (r.name, f"{r.modeled_us / 1e6:.4f} s",
             normalized(r.modeled_us, base))
            for r in runs
        ]
        payload["systems"] = {r.name: r.modeled_us for r in runs}
        print(format_table(["System", "Modeled runtime", "Factor"], rows,
                           title="Figure 7 — Twip system comparison"))
    elif args.experiment == "fig8":
        pcts = (1, 10, 30, 50, 70, 90, 100)
        data = run_figure8(
            n_users=int(200 * s), mean_follows=8, posts=int(250 * s),
            active_pcts=pcts,
        )
        series = {
            name: [r.modeled_us / 1e3 for r in runs]
            for name, runs in data.items()
        }
        payload["active_pcts"] = list(pcts)
        payload["series_modeled_ms"] = series
        print(format_series("%active", list(pcts), series,
                            title="Figure 8 — materialization (modeled ms)"))
    elif args.experiment == "fig9":
        rates = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0)
        data = run_figure9(vote_rates=rates, scale=s)
        series = {
            name: [r.modeled_us / 1e3 for r in runs]
            for name, runs in data.items()
        }
        payload["vote_rates"] = list(rates)
        payload["series_modeled_ms"] = series
        print(format_series("vote%", [int(r * 100) for r in rates], series,
                            title="Figure 9 — Newp joins (modeled ms)"))
    else:
        points = run_figure10(
            server_counts=(3, 6, 9, 12), n_users=int(300 * s),
            mean_follows=10, total_ops=int(6000 * s),
        )
        rows = [
            (p.compute_servers, f"{p.throughput_qps / 1e6:.2f}M",
             f"{p.subscription_fraction * 100:.1f}%")
            for p in points
        ]
        payload["points"] = [
            {
                "compute_servers": p.compute_servers,
                "throughput_qps": p.throughput_qps,
                "subscription_fraction": p.subscription_fraction,
            }
            for p in points
        ]
        print(format_table(["servers", "modeled qps", "sub traffic"], rows,
                           title="Figure 10 — scalability"))
    return _finish_bench(args, payload)


def _finish_bench(args, payload: dict) -> int:
    if args.json_path:
        import json

        try:
            with open(args.json_path, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
        except OSError as exc:
            print(f"cannot write {args.json_path}: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {args.json_path}")
    return 0


def _cmd_profile(args) -> int:
    """cProfile a named bench workload; print top functions by
    cumulative time.  This is the profiling loop the read-path overhaul
    came out of, packaged so the next hot-path hunt is one command."""
    import cProfile
    import pstats

    s = args.scale

    def run() -> None:
        if args.workload == "read_path":
            from .bench.harness import run_read_path

            run_read_path(repeats=1, **_read_path_sizes(s))
        elif args.workload == "write_path":
            from .bench.harness import run_write_path

            run_write_path(repeats=1, **_write_path_sizes(s))
        elif args.workload == "write_batching":
            from .bench.harness import run_write_batching

            run_write_batching(**_write_batching_sizes(s))
        else:
            from .bench.harness import run_twip_matrix

            run_twip_matrix(backends=("local",), **_twip_sizes(s))

    profiler = cProfile.Profile()
    profiler.enable()
    run()
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(args.limit)
    return 0


def _cmd_joins(args) -> int:
    try:
        with open(args.path) as fh:
            joins = parse_joins(fh.read())
    except OSError as exc:
        print(f"cannot read {args.path}: {exc}", file=sys.stderr)
        return 1
    except Exception as exc:
        print(f"invalid join spec: {exc}", file=sys.stderr)
        return 1
    # Installation-time validation catches cycles and pull misuse.
    probe = PequodServer()
    for join in joins:
        try:
            probe.add_join(join)
        except Exception as exc:
            print(f"rejected: {join.text}\n  {exc}", file=sys.stderr)
            return 1
        print(f"ok: {join.text}")
    return 0
