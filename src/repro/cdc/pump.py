"""The CDC pump: change records drive cache-join maintenance.

In a write-around deployment the cache never sees a write
synchronously — the application writes to the backing database, the
database appends to its :class:`~repro.cdc.feed.ChangeFeed`, and this
pump tails the feed and replays each batch into the cache's join
engine.  ``engine.apply_batch`` derives the *actual* (old, new) pair
from the cache's own store before notifying joins, which is what makes
the at-least-once feed safe: redelivering an already-applied record is
a no-op (or a correct net change), so crash/resume and
drop-then-redeliver chaos both converge to the oracle state.

Cold caches converge through **fenced backfill**: the pump range-scans
the backing DB in chunks, and for every chunk remembers the feed's
high-water mark at scan time (the *fence*).  While tailing, a record
whose key falls in a scanned chunk with ``seq <= fence`` is skipped —
the snapshot already reflects it — and everything newer applies.
Records for keys *ahead* of the scan frontier are also skipped, because
the later chunk scan (which happens after the write, by construction)
will observe their effect.  The result: a cache backfilling under
concurrent write load loses no change and applies none twice.
"""

from __future__ import annotations

import time
from bisect import bisect_right
from typing import Callable, List, Optional, Tuple

from ..core.operators import ChangeKind
from ..metrics import Histogram
from ..store.keys import key_successor
from .feed import ChangeFeed, ChangeRecord

__all__ = ["CdcPump", "LAG_BUCKETS"]

#: Propagation-lag buckets (write commit → cache apply), in seconds.
LAG_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

DEFAULT_BATCH_SIZE = 256
DEFAULT_CHUNK_SIZE = 512

#: ``settle`` aborts after this many consecutive zero-progress steps
#: (a chaos hook deferring every batch forever would otherwise spin).
_SETTLE_STALL_LIMIT = 1000


class CdcPump:
    """Tails a change feed and applies records to a join engine."""

    def __init__(
        self,
        db,
        feed: ChangeFeed,
        engine,
        *,
        consumer: str = "cache",
        batch_size: int = DEFAULT_BATCH_SIZE,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.db = db
        self.feed = feed
        self.engine = engine
        self.consumer = consumer
        self.cursor = feed.cursor(consumer)
        self.batch_size = batch_size
        self.chunk_size = chunk_size
        self.clock = clock
        self.lag = Histogram(LAG_BUCKETS)
        self.records_applied = 0
        self.records_skipped = 0
        self.batches_applied = 0
        self.backfill_rows = 0
        self.backfill_chunks = 0
        #: Optional fault hook (``repro.chaos.cdc_lag``): receives each
        #: fetched batch; returning a falsy value defers the batch
        #: without acking, so the feed redelivers it next step.
        self.chaos: Optional[Callable[[List[ChangeRecord]], object]] = None
        # Fenced-backfill state: sorted exclusive chunk upper bounds,
        # the parallel per-chunk fence sequences, and the fence covering
        # the scanned tail once backfill completes.
        self._fence_his: List[str] = []
        self._fences: List[int] = []
        self._tail_fence: Optional[int] = None
        #: Next chunk's start key while backfilling, else None.
        self._frontier: Optional[str] = None

    # ------------------------------------------------------------------
    # Backfill (cold-cache convergence)
    # ------------------------------------------------------------------
    @property
    def backfilling(self) -> bool:
        return self._frontier is not None

    def begin_backfill(self) -> None:
        """Start a fenced range scan of the backing DB.

        Records already trimmed from an in-memory feed are fully
        covered by the snapshot about to be taken, so the cursor jumps
        over them rather than failing to fetch.
        """
        self._frontier = ""
        self._fence_his = []
        self._fences = []
        self._tail_fence = None
        if self.cursor.acked < self.feed.trimmed_through:
            self.feed.ack(self.cursor, self.feed.trimmed_through)

    def backfill_step(self) -> int:
        """Scan and apply the next chunk; returns rows loaded.

        Exposed separately from :meth:`backfill` so tests can interleave
        concurrent writes between chunk scans.
        """
        if self._frontier is None:
            return 0
        rows = self.db.scan_from(self._frontier, self.chunk_size)
        fence = self.feed.high_water
        if rows:
            self.engine.apply_batch(list(rows))
            hi = key_successor(rows[-1][0])
            self._fence_his.append(hi)
            self._fences.append(fence)
            self._frontier = hi
            self.backfill_rows += len(rows)
            self.backfill_chunks += 1
        if len(rows) < self.chunk_size:
            # The terminating scan observed [frontier, inf) entirely, so
            # its fence covers every key past the last chunk bound too.
            self._tail_fence = fence
            self._frontier = None
        return len(rows)

    def backfill(self) -> int:
        """Run the whole backfill scan; returns total rows loaded."""
        if self._frontier is None:
            self.begin_backfill()
        total = 0
        while self._frontier is not None:
            total += self.backfill_step()
        return total

    def bootstrap(self) -> int:
        """Cold-start convergence: backfill, then drain to high-water
        (the fenced cut-over from snapshot to live tailing)."""
        self.begin_backfill()
        rows = 0
        while self._frontier is not None:
            rows += self.backfill_step()
        self.settle()
        return rows

    def _skip_for_backfill(self, rec: ChangeRecord) -> bool:
        if self._frontier is not None and rec.key >= self._frontier:
            # Ahead of the scan frontier: the chunk scan that will cover
            # this key runs later and its snapshot includes this write.
            return True
        i = bisect_right(self._fence_his, rec.key)
        if i < len(self._fences):
            return rec.seq <= self._fences[i]
        return self._tail_fence is not None and rec.seq <= self._tail_fence

    def _maybe_clear_fences(self) -> None:
        if self._frontier is not None or self._tail_fence is None:
            return
        horizon = max(self._fences, default=0)
        if self.cursor.acked >= max(horizon, self._tail_fence):
            self._fence_his = []
            self._fences = []
            self._tail_fence = None

    # ------------------------------------------------------------------
    # Tailing
    # ------------------------------------------------------------------
    def step(self, max_records: Optional[int] = None) -> int:
        """Fetch and apply one batch; returns records consumed."""
        limit = max_records if max_records is not None else self.batch_size
        records = self.feed.fetch(self.cursor.acked, limit)
        if not records:
            return 0
        if self.chaos is not None:
            records = self.chaos(records)
            if not records:
                return 0  # deferred, not acked: redelivered next step
        pairs: List[Tuple[str, Optional[str]]] = []
        for rec in records:
            if self._skip_for_backfill(rec):
                self.records_skipped += 1
                continue
            pairs.append(
                (rec.key, None if rec.kind is ChangeKind.REMOVE else rec.new)
            )
        if pairs:
            self.engine.apply_batch(pairs)
            self.batches_applied += 1
            self.records_applied += len(pairs)
        now = self.clock()
        for rec in records:
            self.lag.observe(max(0.0, now - rec.ts))
        self.feed.ack(self.cursor, records[-1].seq)
        self._maybe_clear_fences()
        return len(records)

    def settle(self) -> int:
        """Drain to the feed's high-water mark — the ``settle_cdc``
        barrier.  Returns records consumed.  Finishes an in-progress
        backfill first (the fences stay live for the tail drain)."""
        while self._frontier is not None:
            self.backfill_step()
        total = 0
        stalls = 0
        while self.cursor.acked < self.feed.high_water:
            n = self.step()
            total += n
            if n == 0:
                stalls += 1
                if stalls >= _SETTLE_STALL_LIMIT:
                    raise RuntimeError(
                        "settle_cdc made no progress for "
                        f"{_SETTLE_STALL_LIMIT} steps (cursor at "
                        f"{self.cursor.acked}, high water "
                        f"{self.feed.high_water})"
                    )
            else:
                stalls = 0
        return total

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def lag_records(self) -> int:
        """Records committed to the feed but not yet acknowledged."""
        return self.feed.depth(self.cursor)

    def lag_seconds(self) -> float:
        """Age of the oldest unapplied record (0.0 when caught up)."""
        ts = self.feed.oldest_pending_ts(self.cursor)
        if ts is None:
            return 0.0
        return max(0.0, self.clock() - ts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CdcPump {self.consumer!r} acked={self.cursor.acked} "
            f"high_water={self.feed.high_water} applied={self.records_applied}>"
        )
