"""Change data capture: the write-around deployment's freshness loop.

The paper's default deployment (§2) is *write-around*: application
writes go to the backing database, not the cache, and asynchronous
change notifications keep cached data fresh.  This package is that
loop, productionized:

* :mod:`~repro.cdc.feed` — a durable, resumable change feed on
  :class:`~repro.backing.database.BackingDatabase`: monotonically
  sequenced :class:`ChangeRecord` s in a ring/journal (WAL framing +
  wire codec from :mod:`repro.persist`), named consumer cursors with
  persisted acks, batching, and bounded-queue backpressure.
* :mod:`~repro.cdc.pump` — :class:`CdcPump`, the maintenance consumer:
  tails the feed and drives the cache's join engine from change
  records, with fenced backfill for cold-cache cut-over and a
  ``settle()`` high-water barrier (``settle_cdc`` on every client
  backend).

``PequodServer(mode="write-around")`` assembles the pieces; see
:mod:`repro.core.server`.
"""

from .feed import ChangeFeed, ChangeRecord, FeedCursor, FeedOverflowError
from .pump import CdcPump

__all__ = [
    "CdcPump",
    "ChangeFeed",
    "ChangeRecord",
    "FeedCursor",
    "FeedOverflowError",
]
