"""The change feed: a durable, resumable CDC log on the backing DB.

The paper's write-around deployment (§2) sends application writes to
the backing database and relies on asynchronous change notifications to
keep the cache fresh.  The in-process :class:`~repro.backing.notify.
NotificationHub` models the *synchronous* version of that; this module
is the production shape: every committed database write becomes a
monotonically sequenced :class:`ChangeRecord` in a feed that consumers
tail at their own pace.

* **Sequencing** — records get dense, strictly increasing sequence
  numbers; ``high_water`` is the last assigned one.  A consumer that
  has acknowledged ``s`` is guaranteed to see ``s+1, s+2, ...`` with no
  gaps (the barrier ``settle_cdc`` compares cursor positions against
  ``high_water``).
* **Durability** — with a ``directory``, records append to a journal
  reusing the WAL frame format (length + crc32, wire-codec payload;
  see :mod:`repro.persist.wal`) under the WAL's fsync policies, and
  consumer cursors persist their acknowledged position atomically.  A
  crashed consumer resumes exactly after its last ack and replays the
  rest — at-least-once delivery, made effectively-once by the pump's
  idempotent apply path.
* **Backpressure** — the in-memory mode keeps records until every
  cursor acknowledges them, bounded by ``max_pending``; past the bound
  the feed invokes its ``backpressure_hook`` (the write-around server
  points this at the pump) and, failing that, raises
  :class:`FeedOverflowError` instead of growing without limit.
  Durable mode trims its in-memory ring freely — the journal is
  authoritative and old records replay from disk.
"""

from __future__ import annotations

import os
import time
from collections import deque
from itertools import islice
from typing import Callable, Deque, Dict, Iterator, List, Optional

from ..core.operators import ChangeKind
from ..net.codec import CodecError, decode, encode
from ..persist.wal import (
    FSYNC_ALWAYS,
    FSYNC_BATCH,
    FSYNC_MODES,
    FSYNC_OFF,
    SYNC_INTERVAL_BYTES,
    frame_payload,
    scan_frames,
)

__all__ = [
    "ChangeFeed",
    "ChangeRecord",
    "FeedCursor",
    "FeedOverflowError",
    "JOURNAL_FILE",
]

JOURNAL_FILE = "feed.log"

#: In-memory feeds hold at most this many unacknowledged records before
#: engaging backpressure.
DEFAULT_MAX_PENDING = 65536

#: Durable feeds keep this many recent records in memory; older ones
#: replay from the journal.
DEFAULT_RING_CAPACITY = 8192

# ChangeKind members carry string values and enums don't cross the wire
# codec; journal payloads store these small ints instead.
_KIND_CODE = {ChangeKind.INSERT: 0, ChangeKind.UPDATE: 1, ChangeKind.REMOVE: 2}
_CODE_KIND = {code: kind for kind, code in _KIND_CODE.items()}


class FeedOverflowError(RuntimeError):
    """An in-memory feed exceeded ``max_pending`` unacknowledged records
    and the backpressure hook (if any) could not drain it."""


class ChangeRecord:
    """One committed database change, as seen by the feed."""

    __slots__ = ("seq", "key", "old", "new", "kind", "ts")

    def __init__(
        self,
        seq: int,
        key: str,
        old: Optional[str],
        new: Optional[str],
        kind: ChangeKind,
        ts: float,
    ) -> None:
        self.seq = seq
        self.key = key
        self.old = old
        self.new = new
        self.kind = kind
        self.ts = ts

    def encode(self) -> bytes:
        return encode(
            [self.seq, self.key, self.old, self.new, _KIND_CODE[self.kind], self.ts]
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "ChangeRecord":
        seq, key, old, new, code, ts = decode(payload)
        return cls(seq, key, old, new, _CODE_KIND[code], ts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ChangeRecord #{self.seq} {self.kind.value} {self.key!r}>"


class FeedCursor:
    """A named consumer position: the highest acknowledged sequence.

    Durable cursors persist every ack with an atomic tmp+rename, so a
    consumer killed mid-batch resumes exactly after its last ack — the
    unacked suffix redelivers (gap-free, at-least-once).
    """

    __slots__ = ("name", "acked", "path")

    def __init__(self, name: str, acked: int = 0, path: Optional[str] = None):
        self.name = name
        self.acked = acked
        self.path = path

    def persist(self) -> None:
        if self.path is None:
            return
        tmp = self.path + ".tmp"
        with open(tmp, "w") as fh:
            fh.write(str(self.acked))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    @classmethod
    def load(cls, name: str, path: str) -> "FeedCursor":
        acked = 0
        try:
            with open(path) as fh:
                acked = int(fh.read().strip() or 0)
        except (FileNotFoundError, ValueError):
            pass
        return cls(name, acked, path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FeedCursor {self.name!r} acked={self.acked}>"


class ChangeFeed:
    """A sequenced change log with named consumer cursors."""

    def __init__(
        self,
        directory: Optional[str] = None,
        *,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        max_pending: int = DEFAULT_MAX_PENDING,
        fsync: str = FSYNC_BATCH,
        sync_interval_bytes: int = SYNC_INTERVAL_BYTES,
        clock: Callable[[], float] = time.time,
        stats=None,
    ) -> None:
        if fsync not in FSYNC_MODES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; expected one of {FSYNC_MODES}"
            )
        self.directory = directory
        self.durable = directory is not None
        self.ring_capacity = ring_capacity
        self.max_pending = max_pending
        self.fsync = fsync
        self.sync_interval_bytes = sync_interval_bytes
        self.clock = clock
        self.stats = stats
        self.next_seq = 1
        #: Sequences ``<= trimmed_through`` are no longer in the ring.
        self.trimmed_through = 0
        self._ring: Deque[ChangeRecord] = deque()
        self.cursors: Dict[str, FeedCursor] = {}
        #: Called when an in-memory feed exceeds ``max_pending``; the
        #: write-around server points this at the pump's ``step``.
        self.backpressure_hook: Optional[Callable[[], object]] = None
        self.records_total = 0
        self.journal_bytes = 0
        self._synced_bytes = 0
        self._fh = None
        self._path: Optional[str] = None
        if self.durable:
            os.makedirs(directory, exist_ok=True)
            self._path = os.path.join(directory, JOURNAL_FILE)
            self._recover()
            self._fh = open(self._path, "ab")
            self.journal_bytes = os.fstat(self._fh.fileno()).st_size
            self._synced_bytes = self.journal_bytes

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Restore ``next_seq`` and the in-memory tail from the journal,
        truncating any torn tail (a record the writer died inside of)."""
        from ..persist.wal import WAL_HEADER_SIZE

        payloads, good_offset, torn = scan_frames(self._path)
        records: List[ChangeRecord] = []
        offset = 0
        for payload in payloads:
            try:
                records.append(ChangeRecord.from_payload(payload))
            except (CodecError, ValueError, KeyError):
                torn = True
                good_offset = offset  # truncate from the bad record on
                break
            offset += WAL_HEADER_SIZE + len(payload)
        if torn and os.path.exists(self._path):
            with open(self._path, "r+b") as fh:
                fh.truncate(good_offset)
        if records:
            self.next_seq = records[-1].seq + 1
            tail = records[-self.ring_capacity :]
            self._ring.extend(tail)
            self.trimmed_through = tail[0].seq - 1

    # ------------------------------------------------------------------
    # Producing
    # ------------------------------------------------------------------
    @property
    def high_water(self) -> int:
        """The last assigned sequence number (0 before any record)."""
        return self.next_seq - 1

    def record(
        self,
        key: str,
        old: Optional[str],
        new: Optional[str],
        kind: ChangeKind,
    ) -> ChangeRecord:
        """Append one committed change; returns the sequenced record."""
        rec = ChangeRecord(self.next_seq, key, old, new, kind, self.clock())
        self.next_seq += 1
        self.records_total += 1
        self._ring.append(rec)
        if self.stats is not None:
            self.stats.add("cdc_records")
        if self.durable:
            frame = frame_payload(rec.encode())
            self._fh.write(frame)
            self.journal_bytes += len(frame)
            if self.fsync == FSYNC_ALWAYS:
                self._sync()
            elif (
                self.fsync == FSYNC_BATCH
                and self.journal_bytes - self._synced_bytes
                >= self.sync_interval_bytes
            ):
                self._sync()
            while len(self._ring) > self.ring_capacity:
                dropped = self._ring.popleft()
                self.trimmed_through = dropped.seq
        else:
            self._trim_acked()
            if len(self._ring) > self.max_pending:
                hook = self.backpressure_hook
                if hook is not None:
                    hook()
                    self._trim_acked()
                if len(self._ring) > self.max_pending:
                    raise FeedOverflowError(
                        f"change feed holds {len(self._ring)} unacknowledged "
                        f"records (max_pending={self.max_pending}) and no "
                        "consumer is draining it"
                    )
        return rec

    def _trim_acked(self) -> None:
        """Drop records every cursor has acknowledged (in-memory mode);
        with no cursors attached, bound the ring at ``ring_capacity``
        (a late consumer recovers the trimmed prefix via backfill)."""
        if self.cursors:
            floor = min(cur.acked for cur in self.cursors.values())
            while self._ring and self._ring[0].seq <= floor:
                dropped = self._ring.popleft()
                self.trimmed_through = dropped.seq
        else:
            while len(self._ring) > self.ring_capacity:
                dropped = self._ring.popleft()
                self.trimmed_through = dropped.seq

    def _sync(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._synced_bytes = self.journal_bytes
        if self.stats is not None:
            self.stats.add("cdc_journal_syncs")

    # ------------------------------------------------------------------
    # Consuming
    # ------------------------------------------------------------------
    def cursor(self, name: str) -> FeedCursor:
        """The named consumer cursor, creating (or, durable, loading
        the persisted position of) one on first use."""
        cur = self.cursors.get(name)
        if cur is None:
            if self.durable:
                path = os.path.join(self.directory, f"cursor-{name}.seq")
                cur = FeedCursor.load(name, path)
            else:
                cur = FeedCursor(name)
            self.cursors[name] = cur
        return cur

    def fetch(self, after_seq: int, limit: int = 256) -> List[ChangeRecord]:
        """Up to ``limit`` records with ``seq > after_seq``, in order."""
        start = after_seq - self.trimmed_through
        if start < 0:
            if not self.durable:
                raise FeedOverflowError(
                    f"records after seq {after_seq} were trimmed from the "
                    "in-memory feed; the consumer must backfill"
                )
            out: List[ChangeRecord] = []
            for rec in self.replay(after_seq):
                out.append(rec)
                if len(out) >= limit:
                    break
            return out
        return list(islice(self._ring, start, start + limit))

    def ack(self, cursor: FeedCursor, seq: int) -> None:
        """Acknowledge everything up to ``seq`` for ``cursor``."""
        if seq <= cursor.acked:
            return
        cursor.acked = seq
        cursor.persist()
        if not self.durable:
            self._trim_acked()

    def replay(self, after_seq: int = 0) -> Iterator[ChangeRecord]:
        """Every retained record with ``seq > after_seq``, oldest first
        (durable feeds read the journal; used for DB rebuild on
        startup and for cursors that fell behind the ring)."""
        if self.durable:
            self.flush()
            payloads, _, _ = scan_frames(self._path)
            for payload in payloads:
                try:
                    rec = ChangeRecord.from_payload(payload)
                except (CodecError, ValueError, KeyError):
                    return
                if rec.seq > after_seq:
                    yield rec
        else:
            for rec in self._ring:
                if rec.seq > after_seq:
                    yield rec

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def pending_records(self) -> int:
        """Records retained in memory (the ring depth)."""
        return len(self._ring)

    def depth(self, cursor: FeedCursor) -> int:
        """Records the cursor has not acknowledged yet."""
        return self.high_water - cursor.acked

    def oldest_pending_ts(self, cursor: FeedCursor) -> Optional[float]:
        """Timestamp of the oldest unacknowledged record still in the
        ring, or None when the cursor is caught up."""
        idx = cursor.acked - self.trimmed_through
        if 0 <= idx < len(self._ring):
            return self._ring[idx].ts
        return None

    def flush(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.flush()
            if self.fsync != FSYNC_OFF:
                os.fsync(self._fh.fileno())
                self._synced_bytes = self.journal_bytes

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self.flush()
            self._fh.close()

    def simulate_crash(self) -> int:
        """Chaos hook: drop journal bytes written after the last fsync
        (mirrors :meth:`repro.persist.wal.WriteAheadLog.simulate_crash`).
        Returns bytes lost; the feed is unusable afterwards."""
        if not self.durable:
            return 0
        lost = self.journal_bytes - self._synced_bytes
        self._fh.close()
        with open(self._path, "r+b") as fh:
            fh.truncate(self._synced_bytes)
        return lost

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.directory if self.durable else "memory"
        return (
            f"<ChangeFeed {where} high_water={self.high_water} "
            f"ring={len(self._ring)} cursors={len(self.cursors)}>"
        )
