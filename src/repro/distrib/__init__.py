"""Distributed Pequod: partitioning, subscriptions, clusters (§2.4)."""

from .cluster import Cluster, Session
from .node import (
    MSG_FETCH,
    MSG_FETCH_REPLY,
    MSG_SUBSCRIBE,
    MSG_UPDATE,
    ROLE_BASE,
    ROLE_COMPUTE,
    DistributedNode,
    RemoteResolver,
)
from .partition import Partitioner, stable_hash
from .subscription import SubscriptionRegistry, decode_update, encode_update

__all__ = [
    "Cluster",
    "DistributedNode",
    "MSG_FETCH",
    "MSG_FETCH_REPLY",
    "MSG_SUBSCRIBE",
    "MSG_UPDATE",
    "Partitioner",
    "ROLE_BASE",
    "ROLE_COMPUTE",
    "RemoteResolver",
    "Session",
    "SubscriptionRegistry",
    "decode_update",
    "encode_update",
    "stable_hash",
]
