"""Distributed Pequod: partitioning, subscriptions, clusters (§2.4)."""

from .cluster import Cluster, Session
from .node import (
    MSG_FETCH,
    MSG_FETCH_REPLY,
    MSG_SUBSCRIBE,
    MSG_UPDATE,
    MSG_UPDATE_BATCH,
    ROLE_BASE,
    ROLE_COMPUTE,
    DistributedNode,
    RemoteResolver,
)
from .partition import Partitioner, stable_hash
from .partition_map import HashPartitionMap, MapRange, PartitionMap
from .procnode import ClusterNodeRuntime
from .procs import ClusterError, ProcCluster
from .subscription import (
    SubscriptionRegistry,
    UpdateBuffer,
    decode_update,
    decode_update_batch,
    encode_update,
    encode_update_batch,
)

__all__ = [
    "Cluster",
    "ClusterError",
    "ClusterNodeRuntime",
    "DistributedNode",
    "HashPartitionMap",
    "MapRange",
    "MSG_FETCH",
    "MSG_FETCH_REPLY",
    "MSG_SUBSCRIBE",
    "MSG_UPDATE",
    "MSG_UPDATE_BATCH",
    "PartitionMap",
    "Partitioner",
    "ProcCluster",
    "ROLE_BASE",
    "ROLE_COMPUTE",
    "RemoteResolver",
    "Session",
    "SubscriptionRegistry",
    "UpdateBuffer",
    "decode_update",
    "decode_update_batch",
    "encode_update",
    "encode_update_batch",
    "stable_hash",
]
