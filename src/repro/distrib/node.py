"""A distributed Pequod node (paper §2.4).

Every node wraps a full :class:`PequodServer`.  Two roles mirror the
scalability experiment (§5.5): *base* nodes are home servers absorbing
writes; *compute* nodes execute cache joins near clients and mirror the
base ranges those joins read.

A compute node's :class:`RemoteResolver` implements §3.3's missing-data
resolution: before a join scans a source range, gaps in the locally
mirrored coverage are fetched in bulk from the range's home server and
a subscription is installed there.  Fetches apply synchronously (the
paper uses asynchronous fetch + restart contexts; the outcome — all
data resident before the query completes — is identical) but are
charged to the simulated network.  Subscription *updates* travel as
real asynchronous messages, so replicas are eventually consistent
exactly as described.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.eviction import Evictable
from ..core.executor import DataResolver, JoinEngine
from ..core.operators import ChangeKind
from ..core.server import PequodServer
from ..core.status import StatusRange, StatusTable
from ..net.codec import encode
from ..net.simnet import SimHost, SimNetwork
from .partition import Partitioner
from .subscription import (
    SubscriptionRegistry,
    Update,
    UpdateBuffer,
    decode_update,
    decode_update_batch,
    encode_update,
    encode_update_batch,
)


ROLE_BASE = "base"
ROLE_COMPUTE = "compute"

#: Message kinds on the wire (also the traffic-breakdown buckets).
MSG_FETCH = "sub_fetch"
MSG_FETCH_REPLY = "sub_fetch_reply"
MSG_SUBSCRIBE = "sub_install"
MSG_UPDATE = "sub_update"
MSG_UPDATE_BATCH = "sub_update_batch"
MSG_WRITE_FWD = "client_write_fwd"


class RemoteRange(Evictable):
    """An LRU entry for a mirrored remote base range (§2.5's second
    kind of evictable data: "remote data copied from another Pequod
    server via subscription")."""

    __slots__ = ("resolver", "table", "lo", "hi")

    def __init__(self, resolver: "RemoteResolver", table: str, lo: str, hi: str):
        self.resolver = resolver
        self.table = table
        self.lo = lo
        self.hi = hi

    def evict(self, engine: JoinEngine) -> None:
        self.resolver.drop_range(engine, self.table, self.lo, self.hi)


class RemoteResolver(DataResolver):
    """Fetch missing base ranges from their home servers (§3.3)."""

    def __init__(self, node: "DistributedNode") -> None:
        self.node = node
        self.presence: Dict[str, StatusTable] = {}
        self.fetches = 0
        self.evicted_ranges = 0

    def covers(self, key: str) -> bool:
        table = key.split("|", 1)[0]
        stable = self.presence.get(table)
        return stable is not None and stable.find(key) is not None

    def ensure_range(self, engine: JoinEngine, table: str, lo: str, hi: str) -> None:
        part = self.node.partitioner
        if not part.is_base_table(table):
            return
        stable = self.presence.setdefault(table, StatusTable())
        for gap_lo, gap_hi, sr in stable.pieces(lo, hi):
            if sr is not None:
                continue
            for home in part.homes_for_range(table, gap_lo, gap_hi):
                if home == self.node.name:
                    continue
                self.node.fetch_and_subscribe(home, table, gap_lo, gap_hi)
                self.fetches += 1
            fresh = StatusRange(gap_lo, gap_hi)
            stable.add(fresh)
            fresh.lru_entry = engine.lru.add(
                RemoteRange(self, table, gap_lo, gap_hi)
            )

    def drop_range(self, engine: JoinEngine, table: str, lo: str, hi: str) -> None:
        """Evict a mirrored range: forget coverage, remove the copies,
        invalidate dependent computed data (transitively, via ordinary
        REMOVE notifications), and unsubscribe at the home."""
        stable = self.presence.get(table)
        if stable is None:
            return
        for sr in stable.isolate(lo, hi):
            stable.remove(sr)
        engine._clear_range(lo, hi)
        self.evicted_ranges += 1
        for home in self.node.partitioner.homes_for_range(table, lo, hi):
            if home != self.node.name:
                node = self.node._node_of(home)
                node.subscriptions.unsubscribe(self.node.name, lo, hi)


class DistributedNode:
    """One Pequod process in a cluster."""

    def __init__(
        self,
        name: str,
        role: str,
        net: SimNetwork,
        partitioner: Partitioner,
        server: Optional[PequodServer] = None,
    ) -> None:
        if role not in (ROLE_BASE, ROLE_COMPUTE):
            raise ValueError(f"unknown role {role!r}")
        self.name = name
        self.role = role
        self.net = net
        self.partitioner = partitioner
        self.server = server if server is not None else PequodServer(name=name)
        self.host = SimHost(net, name)
        self.host.node = self  # back-reference for synchronous fetches
        self.subscriptions = SubscriptionRegistry()
        self.resolver = RemoteResolver(self)
        self.server.set_resolver(self.resolver)
        self.server.add_listener(self._on_local_change)
        self.updates_sent = 0
        self.updates_applied = 0
        self.update_batches_sent = 0
        self._applying_remote = False
        self._outbox: Optional[UpdateBuffer] = None
        self.host.on(MSG_UPDATE, self._on_update_message)
        self.host.on(MSG_UPDATE_BATCH, self._on_update_batch_message)
        self.host.on(MSG_WRITE_FWD, self._on_forwarded_write)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DistributedNode {self.name} {self.role}>"

    # ------------------------------------------------------------------
    # Client-facing operations
    # ------------------------------------------------------------------
    def put(self, key: str, value: str) -> None:
        self.server.put(key, value)

    def remove(self, key: str) -> bool:
        return self.server.remove(key)

    def apply_batch(self, batch) -> int:
        """Apply a write batch locally with coalesced propagation.

        Subscriber notifications generated during the batch are
        buffered per destination and flushed as ONE ``sub_update_batch``
        message each — the cross-node analogue of the engine's single
        maintenance pass.  Returns the number of net changes applied.
        """
        self._outbox = UpdateBuffer()
        try:
            applied = self.server.apply_batch(batch)
        finally:
            outbox, self._outbox = self._outbox, None
        for dst, updates in outbox.flush():
            self.updates_sent += len(updates)
            self.update_batches_sent += 1
            self.host.send(dst, MSG_UPDATE_BATCH, encode_update_batch(updates))
        return applied

    def get(self, key: str) -> Optional[str]:
        return self.server.get(key)

    def scan(self, first: str, last: str):
        return self.server.scan(first, last)

    # ------------------------------------------------------------------
    # Home-server side
    # ------------------------------------------------------------------
    def handle_fetch(self, subscriber: str, table: str, lo: str, hi: str):
        """Serve a range fetch and install the subscription (§2.4)."""
        rows = self.server.store.scan(lo, hi)
        self.subscriptions.subscribe(subscriber, lo, hi)
        return rows

    def _on_local_change(
        self,
        key: str,
        old_value: Optional[str],
        new_value: Optional[str],
        kind: ChangeKind,
    ) -> None:
        """Push updates to every subscriber mirroring this key."""
        if self._applying_remote:
            return  # don't echo remotely-originated updates back out
        subscribers = self.subscriptions.subscribers_of(key)
        if self._outbox is not None:
            # Mid-batch: buffer for one coalesced message per subscriber.
            for dst in subscribers:
                self._outbox.add(dst, (key, old_value, new_value, kind))
            return
        for dst in subscribers:
            self.updates_sent += 1
            self.host.send(
                dst, MSG_UPDATE, encode_update((key, old_value, new_value, kind))
            )

    # ------------------------------------------------------------------
    # Mirror side
    # ------------------------------------------------------------------
    def fetch_and_subscribe(self, home: str, table: str, lo: str, hi: str) -> None:
        """Synchronously fetch ``[lo, hi)`` from ``home`` and subscribe.

        The request/response pair is charged to the network (the paper
        resolves fetches asynchronously with restart contexts; the data
        outcome is the same, see module docstring).
        """
        home_node = self.net.hosts[home]
        assert isinstance(home_node, SimHost)
        node = self._node_of(home)
        request = [table, lo, hi]
        self.net.account(self.name, home, MSG_FETCH, len(encode(request)))
        rows = node.handle_fetch(self.name, table, lo, hi)
        reply_size = len(encode([list(r) for r in rows]))
        self.net.account(home, self.name, MSG_FETCH_REPLY, max(reply_size, 16))
        tbl = self.server.store.table(table)
        for key, value in rows:
            tbl.put(key, value)

    def _node_of(self, name: str) -> "DistributedNode":
        host = self.net.hosts[name]
        node = getattr(host, "node", None)
        if node is None:
            raise RuntimeError(f"host {name!r} is not a DistributedNode")
        return node

    def _on_update_message(self, src: str, body) -> None:
        """An asynchronous subscription update arrived from a home."""
        key, old, new, kind = decode_update(body)
        if not self.resolver.covers(key):
            return  # range since evicted; ignore
        self.updates_applied += 1
        self._applying_remote = True
        try:
            if kind is ChangeKind.REMOVE:
                self.server.engine.apply_remove(key)
            else:
                self.server.engine.apply_put(key, new or "")
        finally:
            self._applying_remote = False

    def _on_update_batch_message(self, src: str, body) -> None:
        """A coalesced group of subscription updates arrived.

        Covered updates apply as ONE engine batch, so the mirror's own
        join maintenance (e.g. a compute node's timelines) also runs as
        a single coalesced pass.
        """
        live: List[Update] = [
            update
            for update in decode_update_batch(body)
            if self.resolver.covers(update[0])  # evicted ranges: ignore
        ]
        if not live:
            return
        self.updates_applied += len(live)
        self._applying_remote = True
        try:
            self.server.engine.apply_batch(
                [
                    (key, None if kind is ChangeKind.REMOVE else (new or ""))
                    for key, _old, new, kind in live
                ]
            )
        finally:
            self._applying_remote = False

    def _on_forwarded_write(self, src: str, body) -> None:
        """A write forwarded from a read-your-own-writes session."""
        key, value, kind = body
        if kind == ChangeKind.REMOVE.value:
            self.server.remove(key)
        else:
            self.server.put(key, value or "")

    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        return self.server.memory_bytes() + self.subscriptions.memory_bytes()
