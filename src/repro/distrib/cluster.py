"""Cluster orchestration and client routing (paper §2.4, §5.5).

A :class:`Cluster` owns base nodes (home servers absorbing writes),
compute nodes (join execution near clients), a partitioner, and the
simulated network.  Client operations follow the paper's Twip strategy:

* writes go to the written key's home server (lookaside, §5.1);
* all of a user's reads go to one compute server ``S(u)`` chosen by
  affinity hash, minimizing duplicate timeline storage (§2.4).

Client traffic is charged to the network under ``client_*`` kinds and
inter-server traffic under ``sub_*`` kinds, which is how the §5.5
subscription-overhead percentages are measured.  ``Session`` provides
the read-your-own-writes mode: one server for both reads and writes,
with base writes forwarded to their homes asynchronously.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.operators import ChangeKind
from ..core.server import PequodServer
from ..net.codec import encode
from ..net.protocol import encode_batch_args
from ..net.simnet import SimNetwork
from ..store.batch import PUT, as_ops
from ..store.keys import SEP
from .node import (
    MSG_WRITE_FWD,
    ROLE_BASE,
    ROLE_COMPUTE,
    DistributedNode,
)
from .partition import Partitioner, stable_hash
from .partition_map import HashPartitionMap

KIND_CLIENT_OP = "client_op"
KIND_CLIENT_REPLY = "client_reply"


class Cluster:
    """A distributed Pequod deployment over a simulated network."""

    def __init__(
        self,
        base_count: int,
        compute_count: int,
        base_tables: Sequence[str],
        joins: Optional[str] = None,
        net: Optional[SimNetwork] = None,
        server_factory=None,
    ) -> None:
        if base_count < 1 or compute_count < 1:
            raise ValueError("need at least one base and one compute node")
        self.net = net if net is not None else SimNetwork()
        base_names = [f"base{i:02d}" for i in range(base_count)]
        self.partitioner = Partitioner(base_tables, base_names)
        #: Versioned map-consult routing facade over the partitioner —
        #: the same interface shape the multi-process cluster consults,
        #: so routing code is written once against a map object.
        self.partition_map = HashPartitionMap(self.partitioner)
        factory = server_factory or (lambda name: PequodServer(name=name))
        self.base_nodes: List[DistributedNode] = [
            DistributedNode(n, ROLE_BASE, self.net, self.partitioner, factory(n))
            for n in base_names
        ]
        self.compute_nodes: List[DistributedNode] = [
            DistributedNode(
                f"compute{i:02d}", ROLE_COMPUTE, self.net, self.partitioner,
                factory(f"compute{i:02d}"),
            )
            for i in range(compute_count)
        ]
        if joins:
            # Compute nodes execute joins; base nodes only hold base data.
            for node in self.compute_nodes:
                node.server.add_join(joins)
        self.client_ops = 0
        #: Names of nodes killed by fault injection (see kill_node).
        self.dead: set = set()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def home_node(self, key: str) -> DistributedNode:
        home = self.partition_map.home_of(key)
        if home is None:
            # Not partitioned base data: land it deterministically.
            index = stable_hash(key) % len(self.base_nodes)
            return self.base_nodes[index]
        return self._by_name(home)

    @property
    def live_compute_nodes(self) -> List[DistributedNode]:
        """Compute nodes still in service (routing skips killed ones)."""
        if not self.dead:
            return self.compute_nodes
        return [n for n in self.compute_nodes if n.name not in self.dead]

    def compute_node_for(self, affinity: str) -> DistributedNode:
        """The compute server ``S(u)`` all of ``affinity``'s reads use.

        Routes over the *live* compute tier: killing a node rehashes
        its affinities onto the survivors, which demand-recompute from
        surviving base data (compute state is soft — §2.5's cache view
        applied to failure recovery).
        """
        live = self.live_compute_nodes
        if not live:
            raise RuntimeError("no live compute nodes")
        index = stable_hash(affinity) % len(live)
        return live[index]

    def _by_name(self, name: str) -> DistributedNode:
        for node in self.base_nodes + self.compute_nodes:
            if node.name == name:
                return node
        raise KeyError(name)

    @property
    def nodes(self) -> List[DistributedNode]:
        return self.base_nodes + self.compute_nodes

    # ------------------------------------------------------------------
    # Client operations (charged to the network as client traffic)
    # ------------------------------------------------------------------
    def _client_op(self, node: DistributedNode, request, op, reply_size=None):
        """Run ``op`` as ONE client round trip to ``node``, charging
        request and reply bytes to the network — the accounting every
        client-facing operation shares (§5.5's traffic breakdown).
        ``reply_size`` sizes the reply from the result; the default is
        the fixed 8-byte write acknowledgement."""
        self.client_ops += 1
        self.net.account("client", node.name, KIND_CLIENT_OP,
                         len(encode(request)))
        result = op()
        self.net.account(
            node.name, "client", KIND_CLIENT_REPLY,
            8 if reply_size is None else reply_size(result),
        )
        return result

    @staticmethod
    def _rows_reply(rows) -> int:
        return max(len(encode([list(r) for r in rows])), 16)

    @staticmethod
    def _value_reply(value) -> int:
        return len(encode([value])) if value else 16

    def put(self, key: str, value: str) -> None:
        """Lookaside write: straight to the key's home server (§5.1)."""
        node = self.home_node(key)
        self._client_op(node, [key, value], lambda: node.put(key, value))

    def remove(self, key: str) -> bool:
        node = self.home_node(key)
        return self._client_op(node, [key], lambda: node.remove(key))

    def apply_batch(self, batch) -> int:
        """Batched lookaside writes: one shipment per home server.

        The batch (a WriteBatch or operation iterable) is coalesced,
        split by home server, and each home receives its slice as one
        client message; every home then runs one maintenance pass and
        flushes one coalesced update message per subscriber.  Returns
        the number of net changes applied across homes.
        """
        by_home: Dict[str, List[Tuple[str, Optional[str]]]] = {}
        nodes: Dict[str, DistributedNode] = {}
        for op in as_ops(batch):
            node = self.home_node(op.key)
            nodes[node.name] = node
            by_home.setdefault(node.name, []).append(
                (op.key, op.value if op.kind == PUT else None)
            )
        return sum(
            self.apply_batch_at(nodes[name], pairs)
            for name, pairs in by_home.items()
        )

    def put_many(self, pairs: Sequence[Tuple[str, str]]) -> int:
        """Convenience: batch-write ``(key, value)`` pairs."""
        return self.apply_batch(pairs)

    def scan(self, affinity: str, first: str, last: str) -> List[Tuple[str, str]]:
        """Read routed to the user's compute server."""
        node = self.compute_node_for(affinity)
        return self._client_op(
            node, [first, last], lambda: node.scan(first, last),
            self._rows_reply,
        )

    def get(self, affinity: str, key: str) -> Optional[str]:
        node = self.compute_node_for(affinity)
        return self._client_op(
            node, [key], lambda: node.get(key), self._value_reply
        )

    # -- node-directed operations (used by the unified client) ----------
    def put_at(self, node: DistributedNode, key: str, value: str) -> None:
        """A client write sent to a specific server.  Used for writes
        into computed ranges, which live at the compute tier, not at a
        base home."""
        self._client_op(node, [key, value], lambda: node.put(key, value))

    def remove_at(self, node: DistributedNode, key: str) -> bool:
        return self._client_op(node, [key], lambda: node.remove(key))

    def apply_batch_at(
        self, node: DistributedNode, pairs: List[Tuple[str, Optional[str]]]
    ) -> int:
        return self._client_op(
            node, encode_batch_args(pairs), lambda: node.apply_batch(pairs)
        )

    def stored_rows_at(
        self, node: DistributedNode, first: str, last: str
    ) -> List[Tuple[str, str]]:
        """A client read of a server's *stored* rows only — no join
        execution, no base-range fetching.  Used to merge rows held
        exclusively by other compute servers into cross-affinity scans."""
        return self._client_op(
            node, [first, last],
            lambda: node.server.store.scan(first, last), self._rows_reply,
        )

    def get_home(self, key: str) -> Optional[str]:
        """Read ``key`` from its home server — the source of truth for
        base data, which compute servers only mirror on demand."""
        node = self.home_node(key)
        return self._client_op(
            node, [key], lambda: node.get(key), self._value_reply
        )

    def home_nodes_for_range(self, first: str, last: str) -> List[DistributedNode]:
        """The home server(s) owning slices of a base range.
        Partitioned tables resolve to the homes owning a slice;
        unpartitioned (hash-placed) tables involve every base server,
        since their keys interleave."""
        table = first.split(SEP, 1)[0]
        if self.partitioner.is_base_table(table):
            names = self.partitioner.homes_for_range(table, first, last)
            return [self._by_name(name) for name in names]
        return list(self.base_nodes)

    def scan_home_at(
        self, node: DistributedNode, first: str, last: str
    ) -> List[Tuple[str, str]]:
        """One home server's slice of a base scan, as one client op."""
        return self._client_op(
            node, [first, last], lambda: node.scan(first, last),
            self._rows_reply,
        )

    def scan_homes(self, first: str, last: str) -> List[Tuple[str, str]]:
        """Scan base data across its home server(s), merged in key
        order."""
        rows: List[Tuple[str, str]] = []
        for node in self.home_nodes_for_range(first, last):
            rows.extend(self.scan_home_at(node, first, last))
        rows.sort()
        return rows

    def session(self, affinity: str) -> "Session":
        return Session(self, affinity)

    # ------------------------------------------------------------------
    # Fault injection (repro.chaos)
    # ------------------------------------------------------------------
    def kill_node(self, node_or_name) -> DistributedNode:
        """Kill one *compute* node mid-workload.

        The node is partitioned off the network (in-flight messages to
        and from it vanish), routing rehashes its affinities onto the
        surviving compute tier, and every base server drops its
        subscriptions — exactly what a crashed subscriber looks like.
        Compute state is soft (demand-recomputed from base data), so
        this models the recoverable failure; base nodes hold the only
        copy of base data and cannot be killed here.
        """
        node = (
            node_or_name
            if isinstance(node_or_name, DistributedNode)
            else self._by_name(node_or_name)
        )
        if node.role != ROLE_COMPUTE:
            raise ValueError(
                f"cannot kill {node.name!r}: base data is unreplicated; "
                "only compute nodes are killable"
            )
        if node.name in self.dead:
            return node
        if len(self.live_compute_nodes) <= 1:
            raise RuntimeError("cannot kill the last live compute node")
        self.dead.add(node.name)
        self.net.kill_host(node.name)
        for base in self.base_nodes:
            base.subscriptions.drop_subscriber(node.name)
        return node

    # ------------------------------------------------------------------
    # Simulation control & metrics
    # ------------------------------------------------------------------
    def settle(self) -> int:
        """Deliver all in-flight subscription updates."""
        return self.net.run_until_idle()

    def subscription_traffic_fraction(self) -> float:
        """Fraction of network bytes spent on inter-server maintenance
        (the 10%→16% measurement of §5.5)."""
        total = sum(self.net.kind_bytes.values())
        if total == 0:
            return 0.0
        sub = sum(
            size for kind, size in self.net.kind_bytes.items()
            if kind.startswith("sub_")
        )
        return sub / total

    def base_memory_bytes(self) -> int:
        return sum(n.memory_bytes() for n in self.base_nodes)

    def compute_memory_bytes(self) -> int:
        return sum(n.memory_bytes() for n in self.compute_nodes)

    def total_subscriptions(self) -> int:
        return sum(n.subscriptions.subscription_count() for n in self.base_nodes)


class Session:
    """Read-your-own-writes session (paper §2.4).

    All operations use one compute server.  Writes apply there
    immediately — so the client's own reads always see them — and are
    forwarded asynchronously to the key's home server for global
    propagation.
    """

    def __init__(self, cluster: Cluster, affinity: str) -> None:
        self.cluster = cluster
        self.node = cluster.compute_node_for(affinity)

    def put(self, key: str, value: str) -> None:
        self.node.put(key, value)
        home = self.cluster.partitioner.home_of(key)
        if home is not None and home != self.node.name:
            self.node.host.send(
                home, MSG_WRITE_FWD, [key, value, ChangeKind.INSERT.value]
            )

    def remove(self, key: str) -> None:
        self.node.remove(key)
        home = self.cluster.partitioner.home_of(key)
        if home is not None and home != self.node.name:
            self.node.host.send(
                home, MSG_WRITE_FWD, [key, None, ChangeKind.REMOVE.value]
            )

    def get(self, key: str) -> Optional[str]:
        return self.node.get(key)

    def scan(self, first: str, last: str) -> List[Tuple[str, str]]:
        return self.node.scan(first, last)
