"""One real Pequod cluster process: engine + two TCP endpoints.

The multi-process cluster runs N OS processes, each wrapping a full
:class:`~repro.core.server.PequodServer`.  Ownership of the key space
comes from a versioned :class:`~.partition_map.PartitionMap`: every
node owns (is *primary* for) some contiguous ranges, mirrors others on
demand, and replicates a configurable number of neighbours' base
ranges for failover.

Each node serves TWO TCP endpoints:

* the **client endpoint** (:class:`ClusterRpcServer`) — the ordinary
  Pequod RPC surface plus the cluster control methods.  Handlers run
  on the node's main thread and may *block* on other nodes (a scan
  that misses a mirrored source range fetches it synchronously, §3.3).
* the **peer endpoint** (:class:`PeerRpcServer`) — node-to-node
  traffic only (range fetches, subscription pushes, migration
  streams), served from its own thread and event loop.  Peer handlers
  NEVER wait on another node.

That asymmetry is the deadlock-freedom argument: main threads block
only on peer endpoints, and peer endpoints answer from local state, so
every wait chain terminates.  One lock (``store_lock``) arbitrates the
engine between the two threads; the main thread *releases it* around
remote fetches, which is what lets two nodes fetch from each other
concurrently.

Exactly-once watch semantics across the cluster fall out of one rule:
a change becomes a client-visible event only at the key's *current
primary* (and only when it changes the value).  Replica applies,
mirror applies, and migration installs replay changes whose events
already fired at the owner — the hub gate drops them here.
"""

from __future__ import annotations

import asyncio
import logging
import threading
from typing import Any, Dict, List, Optional, Set, Tuple

from ..core.operators import ChangeKind
from ..core.server import PequodServer
from ..core.status import StatusRange, StatusTable
from ..net.rpc_client import RpcClient
from ..net.rpc_server import RpcServer, _Connection
from ..store.keys import prefix_upper_bound, table_of, table_range
from .node import RemoteRange
from .partition_map import PartitionMap, WrongOwnerError
from .subscription import (
    SubscriptionRegistry,
    Update,
    UpdateBuffer,
    decode_update_batch,
    encode_update_batch,
)

log = logging.getLogger(__name__)

#: Rows per migration-snapshot chunk (keeps frames well under the cap).
MIGRATE_CHUNK = 4000


class TcpResolver:
    """Missing-data resolution over the peer endpoints (§3.3).

    The process-cluster analogue of the simulator's
    :class:`~.node.RemoteResolver`: before a join scans a source
    range, coverage gaps are fetched in bulk from each slice's primary
    and a subscription is installed there.  Slices this node is
    primary *or replica* for are never fetched — replicated copies are
    kept fresh by the client's write fan-out, so they count as local
    coverage.  Tables produced by installed joins are never fetched
    either: every node runs the full join set, so computed ranges are
    computed where they are owned, from mirrored base data.
    """

    def __init__(self, runtime: "ClusterNodeRuntime") -> None:
        self.runtime = runtime
        self.presence: Dict[str, StatusTable] = {}
        self.fetches = 0
        self.evicted_ranges = 0

    def covers(self, key: str) -> bool:
        stable = self.presence.get(table_of(key))
        return stable is not None and stable.find(key) is not None

    def ensure_range(self, engine, table: str, lo: str, hi: str) -> None:
        rt = self.runtime
        pmap = rt.map
        if pmap is None or table in rt.computed_tables():
            return
        stable = self.presence.setdefault(table, StatusTable())
        for gap_lo, gap_hi, sr in list(stable.pieces(lo, hi)):
            if sr is not None:
                continue
            for slo, shi, r in pmap.slices(gap_lo, gap_hi):
                if rt.name == r.primary:
                    continue  # our own data
                # Replica slices fetch + subscribe too: the replicated
                # copy has the rows, but only an explicit subscription
                # survives reconfiguration (replica sets change on
                # migration; subscriptions hand off).  The fetch also
                # heals any gap from before this node joined the
                # replica set.
                rows = rt.peer_fetch(r.primary, slo, shi)
                tbl = rt.server.store.table(table)
                for key, value in rows:
                    tbl.put(key, value)
                self.fetches += 1
            fresh = StatusRange(gap_lo, gap_hi)
            stable.add(fresh)
            fresh.lru_entry = engine.lru.add(
                RemoteRange(self, table, gap_lo, gap_hi)
            )

    # -- eviction / failover -------------------------------------------
    def drop_range(self, engine, table: str, lo: str, hi: str) -> None:
        """Evict a mirrored range (LRU pressure): forget coverage,
        clear the copies, unsubscribe at the current owners.  Slices
        this node holds per the *current* map are never cleared —
        ownership may have arrived (promotion) after the fetch."""
        self._drop_coverage(engine, table, lo, hi, unsubscribe=True)
        self.evicted_ranges += 1

    def drop_dead_owner_coverage(self, lo: str, hi: str) -> None:
        """Failover: mirrors fed by a dead node's subscriptions are
        orphaned — no more updates will arrive.  Drop them so the next
        demand refetches from (and resubscribes at) the promoted
        owner.

        Computed ranges that *source* a dropped mirror must go first:
        a copy-source REMOVE only maintains (deletes the derived row,
        range stays valid), so clearing the mirror under a still-valid
        output would leave it validly empty — and with no subscription
        left, stale forever.  Invalidation forces the next read to
        refetch and recompute."""
        engine = self.runtime.server.engine
        dropped = [
            table
            for table in list(self.presence)
            if max(lo, table_range(table)[0]) < min(hi, table_range(table)[1])
        ]
        if not dropped:
            return
        for output in self.runtime.outputs_sourcing(dropped):
            self.runtime._drop_computed_slices(*table_range(output))
        for table in dropped:
            tlo, thi = table_range(table)
            self._drop_coverage(
                engine, table, max(lo, tlo), min(hi, thi), unsubscribe=False
            )

    def _drop_coverage(
        self, engine, table: str, lo: str, hi: str, unsubscribe: bool
    ) -> None:
        stable = self.presence.get(table)
        if stable is None:
            return
        for sr in list(stable.isolate(lo, hi)):
            stable.remove(sr)
        rt = self.runtime
        pmap = rt.map
        for slo, shi, r in (pmap.slices(lo, hi) if pmap else [(lo, hi, None)]):
            if r is not None and rt.name in r.owners:
                continue
            engine._clear_range(slo, shi)
            if unsubscribe and r is not None:
                rt.peer_send(r.primary, "peer_unsubscribe", rt.name, slo, shi)


class ClusterNodeRuntime:
    """The shared state and protocol logic of one cluster process."""

    def __init__(
        self,
        name: str,
        host: str = "127.0.0.1",
        port: int = 0,
        peer_port: int = 0,
        server_kwargs: Optional[dict] = None,
    ) -> None:
        self.name = name
        self.host = host
        kwargs = dict(server_kwargs or {})
        kwargs.setdefault("name", name)
        self.server = PequodServer(**kwargs)
        self.map: Optional[PartitionMap] = None
        #: Arbitrates the engine between the main and peer threads.
        #: Held for every engine operation; RELEASED around blocking
        #: remote fetches (see module docstring).
        self.store_lock = threading.Lock()
        self.subscriptions = SubscriptionRegistry()
        self.resolver = TcpResolver(self)
        self.server.set_resolver(self.resolver)
        self.server.attach_hub(gate=self._event_visible)
        self.server.add_listener(self._on_local_change)
        self.server.metrics.add_source(self._metric_samples)
        self._computed: Optional[Set[str]] = None
        self._outbox: Optional[UpdateBuffer] = None
        #: >0 while replaying state transitions watchers must not see
        #: (the rebuild of a migrated-in computed range); the hub gate
        #: swallows events and the rebuild publishes real diffs itself.
        self._mute_events = 0
        #: Active outbound migrations: (lo, hi) -> post-snapshot tail.
        self._journals: Dict[Tuple[str, str], List[Update]] = {}
        # Settle accounting (per-peer, so a dead node's counters can be
        # excluded pairwise instead of skewing a global sum).
        self._counter_lock = threading.Lock()
        self.sent_to: Dict[str, int] = {}
        self.applied_from: Dict[str, int] = {}
        self._inflight = 0  # mirror sends scheduled, not yet completed
        self._queued = 0  # mirror applies enqueued to main, not yet run
        # Endpoints.
        self.rpc = ClusterRpcServer(self, host, port)
        self.peer_rpc = PeerRpcServer(self, host, peer_port)
        self.main_loop: Optional[asyncio.AbstractEventLoop] = None
        self.peer_loop: Optional[asyncio.AbstractEventLoop] = None
        self._peer_conns: Dict[str, asyncio.Task] = {}
        self._threads: List[threading.Thread] = []
        self._stopped = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start_threaded(self) -> None:
        """Run both endpoints on private threads (the in-process
        deployment used by tests; subprocesses use :func:`run_node`)."""
        self._start_endpoint_thread("peer")
        self._start_endpoint_thread("main")

    def _start_endpoint_thread(self, which: str) -> None:
        started = threading.Event()
        failure: list = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            rpc = self.peer_rpc if which == "peer" else self.rpc
            if which == "peer":
                self.peer_loop = loop
            else:
                self.main_loop = loop
            try:
                loop.run_until_complete(rpc.start())
            except Exception as exc:  # noqa: BLE001 - surfaced to caller
                failure.append(exc)
                loop.close()
                started.set()
                return
            started.set()
            loop.run_forever()
            loop.run_until_complete(self._shutdown_on(loop, rpc))
            loop.run_until_complete(asyncio.sleep(0.02))
            loop.close()

        thread = threading.Thread(
            target=run, name=f"pequod-{self.name}-{which}", daemon=True
        )
        thread.start()
        self._threads.append(thread)
        started.wait()
        if failure:
            raise RuntimeError(
                f"cannot start {which} endpoint of {self.name}: {failure[0]}"
            )

    async def _shutdown_on(self, loop, rpc) -> None:
        if loop is self.peer_loop:
            for task in self._peer_conns.values():
                if task.done() and task.exception() is None:
                    await task.result().close()
                else:
                    task.cancel()
            self._peer_conns.clear()
        await rpc.stop()

    def stop(self) -> None:
        """Stop both endpoints and close the engine (flushes the WAL)."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        for loop in (self.main_loop, self.peer_loop):
            if loop is not None and loop.is_running():
                loop.call_soon_threadsafe(loop.stop)
        for thread in self._threads:
            thread.join(timeout=5)
        self.server.close()

    @property
    def port(self) -> int:
        return self.rpc.port

    @property
    def peer_port(self) -> int:
        return self.peer_rpc.port

    def address(self) -> Tuple[str, int, int]:
        return (self.host, self.port, self.peer_port)

    # ------------------------------------------------------------------
    # Ownership / join bookkeeping
    # ------------------------------------------------------------------
    def computed_tables(self) -> Set[str]:
        if self._computed is None:
            self._computed = {
                j.output.table for j in self.server.engine.joins
            }
        return self._computed

    def outputs_sourcing(self, tables) -> Set[str]:
        """Transitive closure of computed tables sourcing ``tables``
        (chained joins re-source other outputs)."""
        tainted = set(tables)
        out: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for join in self.server.engine.joins:
                output = join.output.table
                if output not in out and tainted & set(join.source_tables()):
                    out.add(output)
                    tainted.add(output)
                    changed = True
        return out

    def add_join(self, text: str) -> List[str]:
        with self.store_lock:
            joins = self.server.add_join(text)
            self._computed = None
        return [j.text for j in joins]

    def _fence_write(self, key: str) -> None:
        pmap = self.map
        if pmap is not None and not pmap.is_owner(self.name, key):
            raise WrongOwnerError(
                f"{self.name} does not own {key!r} "
                f"(owner {pmap.owner_of(key)!r} at map v{pmap.version})",
                pmap.version,
            )

    def _fence_range(self, lo: str, hi: str) -> None:
        pmap = self.map
        if pmap is not None and lo < hi and not pmap.owns_range(self.name, lo, hi):
            raise WrongOwnerError(
                f"{self.name} does not own all of [{lo!r}, {hi!r}) "
                f"at map v{pmap.version}",
                pmap.version,
            )

    # ------------------------------------------------------------------
    # Client operations (main thread)
    # ------------------------------------------------------------------
    def client_put(self, key: str, value: str) -> bool:
        self._fence_write(key)
        self._locked_write(lambda: self.server.put(key, value))
        return True

    def client_remove(self, key: str) -> bool:
        self._fence_write(key)
        return self._locked_write(lambda: self.server.remove(key))

    def client_batch(self, pairs: List[Tuple[str, Optional[str]]]) -> int:
        for key, _ in pairs:
            self._fence_write(key)
        return self._locked_write(lambda: self.server.apply_batch(pairs))

    def replica_batch(self, pairs: List[Tuple[str, Optional[str]]]) -> int:
        """Apply a replicated write shipment.  Ownership-exempt — this
        node is a replica, not the primary — but a FULL apply (WAL,
        admission, join maintenance), so computed ranges here that
        depend on the replicated base stay fresh without a mirror
        subscription.  In write-around mode the apply routes to the
        replica's own backing DB + change feed, exactly like the
        primary's — replicated durable base writes.  Watch events stay
        exactly-once because the hub gate drops changes whose key this
        node doesn't own."""
        return self._locked_write(lambda: self.server.apply_batch(pairs))

    def settle_cdc(self) -> int:
        """Drain this node's change feed into its cache (write-around).
        Runs as a locked write so pump-driven join maintenance fans out
        through the mirror outbox like any other apply."""
        return self._locked_write(lambda: self.server.settle_cdc())

    def client_get(self, key: str) -> Optional[str]:
        self._fence_write(key)
        with self.store_lock:
            return self.server.get(key)

    def client_scan(self, first: str, last: str) -> List[Tuple[str, str]]:
        self._fence_range(first, last)
        with self.store_lock:
            return self.server.scan(first, last)

    def client_scan_prefix(self, prefix: str) -> List[Tuple[str, str]]:
        self._fence_range(prefix, prefix_upper_bound(prefix))
        with self.store_lock:
            return self.server.scan_prefix(prefix)

    def client_count(self, first: str, last: str) -> int:
        self._fence_range(first, last)
        with self.store_lock:
            return self.server.count(first, last)

    def _locked_write(self, fn):
        with self.store_lock:
            self._outbox = UpdateBuffer()
            try:
                result = fn()
            finally:
                outbox, self._outbox = self._outbox, None
        for dst, updates in outbox.flush():
            self._send_mirror(dst, updates)
        return result

    # ------------------------------------------------------------------
    # Change fan-out (runs under store_lock, main thread)
    # ------------------------------------------------------------------
    def _event_visible(self, key, old, new, kind) -> bool:
        """Hub gate: a change is a client watch event only at the
        key's current primary, and only when it changes the value —
        replica/mirror/migration replays fall out here, keeping a
        cluster-wide watch exactly-once."""
        if self._mute_events:
            return False
        if kind is ChangeKind.UPDATE and old == new:
            return False
        pmap = self.map
        return pmap is None or pmap.is_owner(self.name, key)

    def _on_local_change(self, key, old, new, kind) -> None:
        if self._journals:
            # Computed changes journal too: the migration target's
            # before-image must track maintenance right up to the fence.
            for (lo, hi), tail in self._journals.items():
                if lo <= key < hi:
                    tail.append((key, old, new, kind))
        if kind is ChangeKind.UPDATE and old == new:
            return  # no-op replay: subscribers already have this value
        pmap = self.map
        if pmap is not None and not pmap.is_owner(self.name, key):
            return  # not ours to push (replica / mirror apply)
        for dst in self.subscriptions.subscribers_of(key):
            if dst == self.name:
                continue
            if self._outbox is not None:
                self._outbox.add(dst, (key, old, new, kind))
            else:
                self._send_mirror(dst, [(key, old, new, kind)])

    def _send_mirror(self, dst: str, updates: List[Update]) -> None:
        pmap = self.map
        if pmap is None or dst not in pmap.nodes:
            return  # dead or departed subscriber
        with self._counter_lock:
            self.sent_to[dst] = self.sent_to.get(dst, 0) + len(updates)
            self._inflight += 1
        fut = asyncio.run_coroutine_threadsafe(
            self._peer_call_coro(
                dst, "mirror_updates", [self.name, encode_update_batch(updates)]
            ),
            self.peer_loop,
        )
        fut.add_done_callback(self._mirror_send_done)

    def _mirror_send_done(self, fut) -> None:
        with self._counter_lock:
            self._inflight -= 1
        exc = fut.exception()
        if exc is not None and not self._stopped.is_set():
            # A dead subscriber loses its mirror feed; its coverage is
            # soft state and refetches after failover.
            log.debug("mirror push from %s failed: %s", self.name, exc)

    def _apply_mirror(self, src: str, updates: List[Update]) -> None:
        """A peer's subscription push, applied on the main thread."""
        with self._counter_lock:
            self._queued -= 1
            self.applied_from[src] = (
                self.applied_from.get(src, 0) + len(updates)
            )
        live = [u for u in updates if self.resolver.covers(u[0])]
        if not live:
            return
        self._locked_write(
            lambda: self.server.engine.apply_batch(
                [
                    (key, None if kind is ChangeKind.REMOVE else (new or ""))
                    for key, _old, new, kind in live
                ]
            )
        )

    def enqueue_mirror(self, src: str, body) -> int:
        """Peer thread: hand a mirror push to the main loop."""
        updates = decode_update_batch(body)
        with self._counter_lock:
            self._queued += 1
        self.main_loop.call_soon_threadsafe(self._apply_mirror, src, updates)
        return len(updates)

    def settle_counters(self) -> Dict[str, Any]:
        with self._counter_lock:
            return {
                "sent_to": dict(self.sent_to),
                "applied_from": dict(self.applied_from),
                "inflight": self._inflight,
                "queued": self._queued,
            }

    # ------------------------------------------------------------------
    # Peer-call plumbing
    # ------------------------------------------------------------------
    async def _peer_client(self, name: str) -> RpcClient:
        task = self._peer_conns.get(name)
        if task is None:
            addr = self.map.nodes[name]

            async def make() -> RpcClient:
                client = RpcClient(addr[0], addr[2])
                await client.connect()
                return client

            task = asyncio.get_running_loop().create_task(make())
            self._peer_conns[name] = task
        return await asyncio.shield(task)

    async def _peer_call_coro(self, name: str, method: str, args: list):
        try:
            client = await self._peer_client(name)
            return await client.call(method, *args)
        except Exception:
            # Connect failures and broken pipes must not poison the
            # cache: drop the cached task so the next call reconnects
            # (the peer may have been restarted, or just promoted).
            self._peer_conns.pop(name, None)
            raise

    def peer_call(self, name: str, method: str, *args, timeout: float = 30.0):
        """Blocking peer RPC from the main thread.  The caller holds
        ``store_lock``; it is RELEASED for the duration of the wait so
        the peer endpoint (and the other node's fetches back into this
        node) stay serviceable — the deadlock-freedom rule."""
        fut = asyncio.run_coroutine_threadsafe(
            self._peer_call_coro(name, method, list(args)), self.peer_loop
        )
        self.store_lock.release()
        try:
            return fut.result(timeout)
        finally:
            self.store_lock.acquire()

    async def peer_acall(self, name: str, method: str, *args):
        """Awaitable peer RPC from a main-loop coroutine (migration
        driver).  Must be awaited WITHOUT holding ``store_lock``."""
        fut = asyncio.run_coroutine_threadsafe(
            self._peer_call_coro(name, method, list(args)), self.peer_loop
        )
        return await asyncio.wrap_future(fut)

    def peer_send(self, name: str, method: str, *args) -> None:
        """Fire-and-forget peer RPC (unsubscribes on eviction)."""
        if self.peer_loop is None or self._stopped.is_set():
            return
        fut = asyncio.run_coroutine_threadsafe(
            self._peer_call_coro(name, method, list(args)), self.peer_loop
        )
        fut.add_done_callback(lambda f: f.exception())

    def peer_fetch(self, owner: str, lo: str, hi: str) -> List[Tuple[str, str]]:
        """Fetch ``[lo, hi)`` from its owner and subscribe (§3.3)."""
        rows = self.peer_call(owner, "fetch_range", self.name, lo, hi)
        return [(k, v) for k, v in rows]

    def run_on_main(self, fn):
        """Peer thread: run ``fn`` on the main loop, await its result.

        Returns an awaitable for the peer loop.  Peer handlers that
        mutate engine state (migration installs) use this so every
        mutation happens on the main thread."""
        peer_loop = asyncio.get_running_loop()
        fut: asyncio.Future = peer_loop.create_future()

        def deliver(setter, value) -> None:
            if not fut.cancelled():
                setter(value)

        def runner() -> None:
            try:
                result = fn()
            except BaseException as exc:  # noqa: BLE001 - crosses threads
                peer_loop.call_soon_threadsafe(deliver, fut.set_exception, exc)
            else:
                peer_loop.call_soon_threadsafe(deliver, fut.set_result, result)

        self.main_loop.call_soon_threadsafe(runner)
        return fut

    # ------------------------------------------------------------------
    # Map installation / failover
    # ------------------------------------------------------------------
    def install_map(
        self, new_map: PartitionMap, dead: Optional[str] = None
    ) -> int:
        with self.store_lock:
            old = self.map
            if old is not None and new_map.version <= old.version:
                return old.version  # stale install: keep the newer map
            self.map = new_map
            self._on_map_change(old, new_map, dead)
        return new_map.version

    def _on_map_change(
        self, old: Optional[PartitionMap], new: PartitionMap, dead: Optional[str]
    ) -> None:
        # Under store_lock, main thread (or initial install).
        if dead is not None:
            self.subscriptions.drop_subscriber(dead)
            peer_loop, task = self.peer_loop, self._peer_conns.pop(dead, None)
            if task is not None and peer_loop is not None:

                def close_conn() -> None:
                    if task.done() and task.exception() is None:
                        asyncio.ensure_future(task.result().close())
                    else:
                        task.cancel()

                peer_loop.call_soon_threadsafe(close_conn)
        if old is None:
            return
        for lo, hi, was, now in old.changed_ranges(new):
            if was == self.name and now != self.name:
                # Lost a range: its computed data would go unmaintained
                # here and shadow the new owner's events.  Same
                # contract as eviction — drop it, recompute at the
                # owner on demand.  Base rows stay (this node usually
                # stays on as a replica).
                self._drop_computed_slices(lo, hi)
            elif now == self.name and was != self.name:
                # Gained a range (migration target / promoted replica):
                # recompute its computed data fresh from base on
                # demand, never trust unmaintained leftovers.  Slices
                # under a live watch rebuild immediately and silently —
                # a subscriber must see the handover as at most a set
                # of genuine row diffs, never as drop-and-recompute.
                self._rebuild_watched_slices(lo, hi)
            elif dead is not None and was == dead:
                # Mirrors fed by the dead node are orphaned: drop
                # coverage, refetch from the promoted owner on demand.
                self.resolver.drop_dead_owner_coverage(lo, hi)

    def _rebuild_watched_slices(self, lo: str, hi: str) -> None:
        """Drop a gained range's computed slices, then rebuild the ones
        a local watcher overlaps.

        §2.4's exactly-once contract must survive reconfiguration: a
        watch spanning a migrated computed range sees neither the
        teardown (a burst of REMOVEs) nor the recompute (re-INSERTs of
        rows it already has) — the whole transition runs with the hub
        gate muted, and only genuine before/after row differences are
        published.  The demand scan re-resolves the slice, which also
        re-establishes the fetch-and-subscribe feeds from the source
        tables' owners, so later maintenance pushes flow normally.
        """
        hub = self.server._hub
        watched: List[Tuple[str, str, Dict[str, str]]] = []
        if hub is not None:
            for table in self.computed_tables():
                tlo, thi = table_range(table)
                s_lo, s_hi = max(lo, tlo), min(hi, thi)
                if s_lo < s_hi and hub.overlapping(s_lo, s_hi):
                    watched.append(
                        (s_lo, s_hi, dict(self.server.store.scan(s_lo, s_hi)))
                    )
        self._mute_events += 1
        try:
            self._drop_computed_slices(lo, hi)
            rebuilt = [
                (s_lo, s_hi, before, dict(self.server.scan(s_lo, s_hi)))
                for s_lo, s_hi, before in watched
            ]
        finally:
            self._mute_events -= 1
        for _s_lo, _s_hi, before, after in rebuilt:
            for key, value in after.items():
                old = before.pop(key, None)
                if old is None:
                    hub.publish(key, None, value, ChangeKind.INSERT)
                elif old != value:
                    hub.publish(key, old, value, ChangeKind.UPDATE)
            for key, old in before.items():
                hub.publish(key, old, None, ChangeKind.REMOVE)

    def _drop_computed_slices(self, lo: str, hi: str) -> None:
        engine = self.server.engine
        for stable in engine.status.values():
            for sr in list(stable.isolate(lo, hi)):
                stable.remove(sr)
        for table in self.computed_tables():
            tlo, thi = table_range(table)
            s_lo, s_hi = max(lo, tlo), min(hi, thi)
            if s_lo < s_hi:
                engine._clear_range(s_lo, s_hi)

    # ------------------------------------------------------------------
    # Live migration (source side; runs as a main-loop coroutine)
    # ------------------------------------------------------------------
    async def migrate_out(self, lo: str, hi: str, target: str, new_map_wire):
        """Move ownership of ``[lo, hi)`` to ``target``.

        Snapshot + tail catch-up: stored rows stream to the target
        while writes keep landing here and accrue in a journal; then
        the map-version bump FENCES this node (stale writers get
        :class:`WrongOwnerError`), the journal drains to the target,
        subscriptions hand off through the registry, and the target
        activates the new map.  The pending window — both sides
        rejecting — spans only the tail drain and handoff.
        """
        new_map = PartitionMap.from_wire(new_map_wire)
        with self.store_lock:
            pmap = self.map
            if pmap is None or not pmap.owns_range(self.name, lo, hi):
                raise WrongOwnerError(
                    f"{self.name} cannot migrate [{lo!r}, {hi!r}): not sole owner",
                    pmap.version if pmap else 0,
                )
            if new_map.version <= pmap.version:
                raise ValueError(
                    f"migration map v{new_map.version} is not newer than "
                    f"v{pmap.version}"
                )
            self._journals[(lo, hi)] = []
            # Everything stored migrates, computed rows included.  The
            # target still treats computed slices as unvalidated (no
            # status ranges travel) and recomputes on demand — but the
            # rows give it an accurate before-image, so a live watch
            # spanning the move sees only genuine diffs, not a
            # teardown-and-recompute replay.
            snapshot = list(self.server.store.scan(lo, hi))
        try:
            for i in range(0, len(snapshot), MIGRATE_CHUNK):
                chunk = snapshot[i : i + MIGRATE_CHUNK]
                await self.peer_acall(
                    target,
                    "migrate_install",
                    lo,
                    hi,
                    [k for k, _ in chunk],
                    [v for _, v in chunk],
                )
        except BaseException:
            with self.store_lock:
                self._journals.pop((lo, hi), None)
            raise
        # FENCE: adopt the new map; from here this node rejects writes
        # in [lo, hi) and the journal is complete.
        with self.store_lock:
            old, self.map = self.map, new_map
            tail = self._journals.pop((lo, hi))
            handoff = [
                (sub, s_lo, s_hi)
                for sub, s_lo, s_hi in self.subscriptions.overlapping(lo, hi)
                if sub != target  # the target stops being a subscriber
            ]
            for sub, s_lo, s_hi in self.subscriptions.overlapping(lo, hi):
                self.subscriptions.unsubscribe(sub, s_lo, s_hi)
            self._on_map_change(old, new_map, None)
        await self.peer_acall(
            target, "migrate_tail", lo, hi, encode_update_batch(tail)
        )
        await self.peer_acall(
            target,
            "adopt_subscriptions",
            [[sub, s_lo, s_hi] for sub, s_lo, s_hi in handoff],
        )
        # Activate: the target adopts the map and starts owning writes.
        await self.peer_acall(target, "install_map", new_map.to_wire())
        return new_map.to_wire()

    # ------------------------------------------------------------------
    # Migration (target side; called via run_on_main on the main thread)
    # ------------------------------------------------------------------
    def apply_migrate_install(
        self, lo: str, hi: str, keys: List[str], values: List[str]
    ) -> int:
        """One snapshot chunk.  A full apply (WAL + maintenance): if
        this node was already mirroring or replicating the range the
        installs are same-value no-ops; new rows feed any computed
        ranges this node owns that source from them."""
        return self._locked_write(
            lambda: self.server.apply_batch(list(zip(keys, values)))
        )

    def apply_migrate_tail(self, lo: str, hi: str, body) -> int:
        updates = decode_update_batch(body)
        if not updates:
            return 0
        return self._locked_write(
            lambda: self.server.apply_batch(
                [
                    (key, None if kind is ChangeKind.REMOVE else (new or ""))
                    for key, _old, new, kind in updates
                ]
            )
        )

    def adopt_subscriptions(self, entries: List[list]) -> int:
        with self.store_lock:
            adopted = 0
            for sub, s_lo, s_hi in entries:
                if sub == self.name:
                    continue
                self.subscriptions.subscribe(sub, s_lo, s_hi)
                adopted += 1
        return adopted

    # ------------------------------------------------------------------
    # Peer-served reads (peer thread, under store_lock)
    # ------------------------------------------------------------------
    def serve_fetch(
        self, subscriber: str, lo: str, hi: str
    ) -> List[List[str]]:
        """Snapshot + subscribe, linearized: rows and the subscription
        install happen under one lock acquisition, so no committed
        change can fall between the snapshot and the first push."""
        with self.store_lock:
            rows = self.server.store.scan(lo, hi)
            self.subscriptions.subscribe(subscriber, lo, hi)
            return [[k, v] for k, v in rows]

    def serve_unsubscribe(self, subscriber: str, lo: str, hi: str) -> bool:
        with self.store_lock:
            return self.subscriptions.unsubscribe(subscriber, lo, hi)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cluster_info(self) -> Dict[str, Any]:
        pmap = self.map
        return {
            "name": self.name,
            "map_version": pmap.version if pmap else 0,
            "port": self.port,
            "peer_port": self.peer_port,
            "joins": len(self.server.engine.joins),
            "keys": len(self.server.store),
            "subscriptions": self.subscriptions.subscription_count(),
            "mirror_fetches": self.resolver.fetches,
        }

    def _metric_samples(self):
        with self._counter_lock:
            sent = sum(self.sent_to.values())
            applied = sum(self.applied_from.values())
            inflight = self._inflight
        yield "cluster_updates_sent_total", float(sent)
        yield "cluster_updates_applied_total", float(applied)
        yield "cluster_updates_inflight", float(inflight)
        yield "cluster_map_version", float(self.map.version if self.map else 0)
        yield "cluster_mirror_fetches_total", float(self.resolver.fetches)
        yield "cluster_mirror_evictions_total", float(
            self.resolver.evicted_ranges
        )


class ClusterRpcServer(RpcServer):
    """The client endpoint: the standard RPC surface, write-fenced by
    the partition map, plus the cluster control methods."""

    def __init__(self, runtime: ClusterNodeRuntime, host: str, port: int):
        super().__init__(runtime.server, host, port)
        self.runtime = runtime

    def _invoke(self, conn: _Connection, method: str, args: List[Any]) -> Any:
        rt = self.runtime
        if method == "get":
            return rt.client_get(args[0])
        if method == "put":
            key, value = args[:2]
            return rt.client_put(key, value)
        if method == "remove":
            return rt.client_remove(args[0])
        if method == "batch":
            from ..net import protocol

            return rt.client_batch(protocol.decode_batch_args(args[:2]))
        if method == "replica_batch":
            from ..net import protocol

            return rt.replica_batch(protocol.decode_batch_args(args[:2]))
        if method == "scan":
            first, last = args
            return [list(pair) for pair in rt.client_scan(first, last)]
        if method == "scan_prefix":
            (prefix,) = args
            return [list(pair) for pair in rt.client_scan_prefix(prefix)]
        if method == "count":
            first, last = args
            return rt.client_count(first, last)
        if method == "add_join":
            (text,) = args
            return rt.add_join(text)
        if method == "partition_map":
            pmap = rt.map
            return None if pmap is None else pmap.to_wire()
        if method == "install_map":
            wire, dead = (args[0], args[1]) if len(args) > 1 else (args[0], None)
            return rt.install_map(PartitionMap.from_wire(wire), dead)
        if method == "migrate_range":
            lo, hi, target, wire = args
            return rt.migrate_out(lo, hi, target, wire)  # coroutine
        if method == "cluster_settle":
            return rt.settle_counters()
        if method == "cluster_info":
            return rt.cluster_info()
        if method == "settle_cdc":
            return rt.settle_cdc()
        return super()._invoke(conn, method, args)


class PeerRpcServer(RpcServer):
    """The peer endpoint: node-to-node traffic on its own thread.

    Handlers answer from local state or enqueue to the main thread —
    they never call out to another node, which is what keeps the
    cluster's wait graph acyclic (see module docstring).
    """

    def __init__(self, runtime: ClusterNodeRuntime, host: str, port: int):
        super().__init__(runtime.server, host, port, metrics_source=False)
        self.runtime = runtime

    def _invoke(self, conn: _Connection, method: str, args: List[Any]) -> Any:
        rt = self.runtime
        if method == "fetch_range":
            subscriber, lo, hi = args
            return rt.serve_fetch(subscriber, lo, hi)
        if method == "peer_unsubscribe":
            subscriber, lo, hi = args
            return rt.serve_unsubscribe(subscriber, lo, hi)
        if method == "mirror_updates":
            src, body = args
            return rt.enqueue_mirror(src, body)
        if method == "migrate_install":
            lo, hi, keys, values = args
            return rt.run_on_main(
                lambda: rt.apply_migrate_install(lo, hi, keys, values)
            )
        if method == "migrate_tail":
            lo, hi, body = args
            return rt.run_on_main(lambda: rt.apply_migrate_tail(lo, hi, body))
        if method == "adopt_subscriptions":
            (entries,) = args
            return rt.adopt_subscriptions(entries)
        if method == "install_map":
            wire = args[0]
            return rt.run_on_main(
                lambda: rt.install_map(PartitionMap.from_wire(wire))
            )
        if method == "ping":
            return "pong"
        raise ValueError(f"peer endpoint does not serve {method!r}")
