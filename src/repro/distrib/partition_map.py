"""Versioned key-space partition maps for the multi-process cluster.

A :class:`PartitionMap` is the routing contract between clients and a
cluster of real server processes: a sorted list of contiguous key
ranges covering the whole key space, each owned by a *primary* node
and mirrored by zero or more *replica* nodes, stamped with a version
that increases on every reassignment.  Clients fetch the map from any
node (the ``partition_map`` RPC), route each operation to the range
owner, and attach the map version to writes; a node that no longer
owns a key answers :class:`WrongOwnerError`, which tells the client
its map is stale — refresh and retry.

Ranges are built *aligned across tables*: the same user-segment split
applied to every table (``p|u500`` splits where ``s|u500`` and
``t|u500`` split), so one user's posts, subscriptions, and timeline
co-locate on one node and cache joins run without cross-node reads of
the join output's own partition.

:class:`HashPartitionMap` wraps the hash :class:`~.partition.
Partitioner` in the same consult interface so the simulated in-process
cluster routes through a map object too, with byte-identical placement
to the historical hash scheme.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..store.keys import SEP
from .partition import Partitioner, stable_hash

#: Exclusive upper bound of the key space.  Sorts after any real key
#: (keys are printable strings well below this code point).
KEYSPACE_END = "\U0010ffff"


class WrongOwnerError(Exception):
    """Raised by a cluster node for an operation it does not own.

    Carries the rejecting node's map version so a client can tell a
    genuinely stale map from a not-yet-activated one (during a
    migration's pending window both sides reject briefly).
    """

    def __init__(self, message: str, map_version: int = 0) -> None:
        super().__init__(message)
        self.map_version = map_version


@dataclass(frozen=True)
class MapRange:
    """One contiguous owned slice ``[lo, hi)`` of the key space."""

    lo: str
    hi: str
    primary: str
    replicas: Tuple[str, ...] = ()

    @property
    def owners(self) -> Tuple[str, ...]:
        return (self.primary,) + self.replicas

    def contains(self, key: str) -> bool:
        return self.lo <= key < self.hi


class PartitionMap:
    """A versioned, contiguous range partitioning of the key space."""

    def __init__(
        self,
        version: int,
        ranges: Sequence[MapRange],
        nodes: Dict[str, Tuple[str, int, int]],
    ) -> None:
        self.version = version
        self.ranges: List[MapRange] = sorted(ranges, key=lambda r: r.lo)
        #: node name -> (host, client port, peer port)
        self.nodes = dict(nodes)
        self._validate()
        self._los = [r.lo for r in self.ranges]

    def _validate(self) -> None:
        if not self.ranges:
            raise ValueError("partition map needs at least one range")
        if self.ranges[0].lo != "":
            raise ValueError("ranges must start at the empty key")
        if self.ranges[-1].hi != KEYSPACE_END:
            raise ValueError("ranges must end at KEYSPACE_END")
        for prev, cur in zip(self.ranges, self.ranges[1:]):
            if prev.hi != cur.lo:
                raise ValueError(
                    f"ranges must tile the key space: gap/overlap between "
                    f"{prev.hi!r} and {cur.lo!r}"
                )
        for r in self.ranges:
            if not r.lo < r.hi:
                raise ValueError(f"empty range at {r.lo!r}")
            for owner in r.owners:
                if owner not in self.nodes:
                    raise ValueError(f"range owner {owner!r} has no address")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def single(
        cls, name: str, address: Tuple[str, int, int], version: int = 1
    ) -> "PartitionMap":
        """A one-node map: the degenerate single-range ring."""
        return cls(
            version,
            [MapRange("", KEYSPACE_END, name)],
            {name: address},
        )

    @classmethod
    def for_tables(
        cls,
        names: Sequence[str],
        nodes: Dict[str, Tuple[str, int, int]],
        tables: Sequence[str] = (),
        splits: Sequence[str] = (),
        replication: int = 1,
        version: int = 1,
    ) -> "PartitionMap":
        """Range-partition ``tables`` by aligned segment ``splits``.

        Each table's section of the key space is cut at
        ``f"{table}|{split}"`` for every split, and the i-th slice of
        *every* table lands on the same node — co-locating one user's
        rows across tables.  Key space outside the named tables tiles
        onto the nodes round-robin with the preceding slice.  Each
        range gets ``replication - 1`` replicas on the nodes following
        its primary (capped by cluster size).
        """
        if not names:
            raise ValueError("need at least one node")
        if replication < 1:
            raise ValueError("replication factor must be >= 1")
        # (cut key, owner index of the slice STARTING at the cut)
        cuts: List[Tuple[str, int]] = []
        for table in sorted(set(tables)):
            cuts.append((table, 0))
            for i, split in enumerate(sorted(set(splits))):
                cuts.append((f"{table}{SEP}{split}", (i + 1) % len(names)))
        cuts.sort()
        n = len(names)
        k = min(replication, n)

        def owners(idx: int) -> Tuple[str, Tuple[str, ...]]:
            primary = names[idx % n]
            reps = tuple(names[(idx + j) % n] for j in range(1, k))
            return primary, reps

        ranges: List[MapRange] = []
        start, idx = "", 0
        for cut, cut_idx in cuts:
            if cut > start:
                primary, reps = owners(idx)
                ranges.append(MapRange(start, cut, primary, reps))
                start = cut
            idx = cut_idx
        primary, reps = owners(idx)
        ranges.append(MapRange(start, KEYSPACE_END, primary, reps))
        return cls(version, ranges, nodes)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _index_of(self, key: str) -> int:
        return bisect.bisect_right(self._los, key) - 1

    def range_for(self, key: str) -> MapRange:
        return self.ranges[self._index_of(key)]

    def owner_of(self, key: str) -> str:
        """The primary node for ``key``."""
        return self.range_for(key).primary

    def replicas_of(self, key: str) -> Tuple[str, ...]:
        return self.range_for(key).replicas

    def is_owner(self, name: str, key: str) -> bool:
        return self.range_for(key).primary == name

    def holds(self, name: str, key: str) -> bool:
        """True when ``name`` is primary *or* replica for ``key``."""
        return name in self.range_for(key).owners

    def slices(self, lo: str, hi: str) -> List[Tuple[str, str, MapRange]]:
        """``[lo, hi)`` cut along range boundaries: ``(slo, shi, range)``
        triples in key order, one per overlapping map range."""
        if not lo < hi:
            return []
        out: List[Tuple[str, str, MapRange]] = []
        i = self._index_of(lo)
        while i < len(self.ranges) and self.ranges[i].lo < hi:
            r = self.ranges[i]
            out.append((max(lo, r.lo), min(hi, r.hi), r))
            i += 1
        return out

    def owns_range(self, name: str, lo: str, hi: str) -> bool:
        """True when ``name`` is primary for every key of ``[lo, hi)``."""
        return all(r.primary == name for _, _, r in self.slices(lo, hi))

    def changed_ranges(
        self, newer: "PartitionMap"
    ) -> List[Tuple[str, str, str, str]]:
        """Slices whose primary differs in ``newer``:
        ``(lo, hi, old_primary, new_primary)``."""
        out: List[Tuple[str, str, str, str]] = []
        for lo, hi, old in self.slices("", KEYSPACE_END):
            for slo, shi, new in newer.slices(lo, hi):
                if new.primary != old.primary:
                    out.append((slo, shi, old.primary, new.primary))
        return out

    # ------------------------------------------------------------------
    # Evolution (each returns a NEW map at version + 1)
    # ------------------------------------------------------------------
    def reassign(
        self,
        lo: str,
        hi: str,
        primary: str,
        replicas: Optional[Tuple[str, ...]] = None,
    ) -> "PartitionMap":
        """Move ownership of ``[lo, hi)`` to ``primary``.

        Boundary ranges are split; by default the displaced primary
        stays on as first replica (it holds a full, fresh copy), with
        the old replica set behind it, truncated to the old factor.
        """
        if primary not in self.nodes:
            raise ValueError(f"unknown node {primary!r}")
        out: List[MapRange] = []
        for r in self.ranges:
            s_lo, s_hi = max(r.lo, lo), min(r.hi, hi)
            if not s_lo < s_hi:  # no overlap
                out.append(r)
                continue
            if r.lo < s_lo:
                out.append(replace(r, hi=s_lo))
            if replicas is not None:
                reps = replicas
            else:
                keep = min(len(r.replicas), max(len(r.owners) - 1, 0))
                reps = tuple(
                    name
                    for name in (r.primary,) + r.replicas
                    if name != primary
                )[:keep]
            out.append(MapRange(s_lo, s_hi, primary, reps))
            if s_hi < r.hi:
                out.append(replace(r, lo=s_hi))
        return PartitionMap(self.version + 1, out, self.nodes)

    def promote(self, dead: str) -> "PartitionMap":
        """Fail ``dead`` out: every range it led promotes its first
        surviving replica; ``dead`` leaves all replica sets and the
        address table."""
        out: List[MapRange] = []
        for r in self.ranges:
            reps = tuple(name for name in r.replicas if name != dead)
            if r.primary == dead:
                if not reps:
                    raise ValueError(
                        f"range [{r.lo!r}, {r.hi!r}) has no replica to "
                        f"promote for dead primary {dead!r}"
                    )
                out.append(MapRange(r.lo, r.hi, reps[0], reps[1:]))
            else:
                out.append(replace(r, replicas=reps))
        nodes = {k: v for k, v in self.nodes.items() if k != dead}
        return PartitionMap(self.version + 1, out, nodes)

    # ------------------------------------------------------------------
    # Wire format (plain lists for the msgpack-ish codec)
    # ------------------------------------------------------------------
    def to_wire(self) -> list:
        return [
            self.version,
            [[r.lo, r.hi, r.primary, list(r.replicas)] for r in self.ranges],
            [[name, list(addr)] for name, addr in sorted(self.nodes.items())],
        ]

    @classmethod
    def from_wire(cls, wire) -> "PartitionMap":
        version, ranges, nodes = wire
        return cls(
            int(version),
            [MapRange(lo, hi, primary, tuple(reps))
             for lo, hi, primary, reps in ranges],
            {name: (addr[0], int(addr[1]), int(addr[2]))
             for name, addr in nodes},
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PartitionMap(v{self.version}, {len(self.ranges)} ranges, "
            f"nodes={sorted(self.nodes)})"
        )


def uniform_segment_splits(
    prefix: str, width: int, count: int, parts: int
) -> List[str]:
    """``parts - 1`` split points dividing ``count`` zero-padded
    segments (``u0000`` … style, ``prefix`` + ``width`` digits) into
    ``parts`` near-equal slices — the builder benches and the CLI use
    to spread a synthetic user population."""
    if parts < 1:
        raise ValueError("parts must be >= 1")
    return [
        f"{prefix}{(count * i) // parts:0{width}d}"
        for i in range(1, parts)
    ]


class HashPartitionMap:
    """The hash partitioner behind the map-consult interface.

    The simulated in-process cluster routes through this: placement is
    byte-identical to the historical :meth:`Partitioner.home_of`
    scheme (so §5.5 measurements are untouched), but routing code now
    consults a versioned map object the way the process cluster does.
    ``owner_of`` returns ``None`` for keys outside the partitioned
    base tables — those hash over all nodes at the caller's level.
    """

    def __init__(self, partitioner: Partitioner, version: int = 1) -> None:
        self.partitioner = partitioner
        self.version = version

    @property
    def node_names(self) -> List[str]:
        return list(self.partitioner.home_nodes)

    def owner_of(self, key: str) -> Optional[str]:
        home = self.partitioner.home_of(key)
        if home is not None:
            return home
        return self.node_names[stable_hash(key) % len(self.node_names)]

    def home_of(self, key: str) -> Optional[str]:
        """Partitioned-base-table owner, or None (hash-placed)."""
        return self.partitioner.home_of(key)
