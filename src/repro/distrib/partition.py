"""Partition functions: mapping base-key ranges to home servers (§2.4).

"Each base key has a home server to which updates are directed (a
partition function maps key ranges to home servers)."  The partitioner
here hashes the first key segment after the table tag — for Twip, posts
``p|<poster>|...`` and subscriptions ``s|<user>|...`` partition by user
— so every containing range a join scans (which always pins that first
segment or covers the whole table) maps to one home, or in the
whole-table case, to all of them.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Sequence

from ..store.keys import SEP


def stable_hash(text: str) -> int:
    """Deterministic across runs and processes (unlike ``hash``)."""
    return zlib.crc32(text.encode("utf-8"))


class Partitioner:
    """Maps keys and ranges of partitioned base tables to home servers."""

    def __init__(self, base_tables: Sequence[str], home_nodes: Sequence[str]) -> None:
        if not home_nodes:
            raise ValueError("need at least one home node")
        self.base_tables = set(base_tables)
        self.home_nodes: List[str] = list(home_nodes)

    def is_base_table(self, table: str) -> bool:
        return table in self.base_tables

    def partition_segment(self, key: str) -> Optional[str]:
        """The key segment that selects the partition (first slot)."""
        parts = key.split(SEP, 2)
        if len(parts) < 2:
            return None
        return parts[1]

    def home_of(self, key: str) -> Optional[str]:
        """The home server for ``key``, or None if it isn't base data."""
        table = key.split(SEP, 1)[0]
        if table not in self.base_tables:
            return None
        segment = self.partition_segment(key)
        if segment is None:
            segment = ""
        index = stable_hash(f"{table}|{segment}") % len(self.home_nodes)
        return self.home_nodes[index]

    def homes_for_range(self, table: str, lo: str, hi: str) -> List[str]:
        """Home servers whose data may intersect ``[lo, hi)``.

        When both bounds pin the same partition segment (the common
        containing-range shape, e.g. ``[p|bob|0100, p|bob})``) a single
        home suffices; otherwise the range may span partitions and all
        homes are consulted.
        """
        if table not in self.base_tables:
            return []
        lo_seg = self.partition_segment(lo)
        if lo_seg and self._range_within_segment(table, lo_seg, lo, hi):
            return [self.home_of(f"{table}{SEP}{lo_seg}") or self.home_nodes[0]]
        return list(self.home_nodes)

    @staticmethod
    def _range_within_segment(table: str, segment: str, lo: str, hi: str) -> bool:
        prefix = f"{table}{SEP}{segment}"
        if not lo.startswith(prefix):
            return False
        # hi must not extend past the keys beginning with the segment.
        from ..store.keys import prefix_upper_bound

        return hi <= prefix_upper_bound(prefix)
