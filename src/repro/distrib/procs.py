"""Launch and coordinate a real multi-process Pequod cluster.

:class:`ProcCluster` spawns N cluster-node processes (each a full
:class:`~.procnode.ClusterNodeRuntime`: engine + client endpoint +
peer endpoint), builds a contiguous-range :class:`~.partition_map.
PartitionMap` over their addresses, and installs it everywhere.  It
then acts as the cluster's (only) coordinator: live migrations and
failover promotions go through it, so map-version bumps are
serialized.

Two deployment modes:

* ``in_process=False`` (default) — one OS process per node, spawned
  through the hidden ``repro cluster-node`` CLI entry.  Nodes bind
  ephemeral ports and report them on stdout with a READY line; hard
  kills (``kill -9``) exercise real crash recovery.
* ``in_process=True`` — node runtimes on threads inside the caller's
  process.  Same code paths over real TCP sockets, but startup is
  ~10x faster and coverage/debugging see into the nodes; most tests
  use this.

The coordinator is deliberately *not* highly available: the paper's
prototype drives reconfiguration from the experiment harness, and so
does this reproduction.  What IS resilient is the data plane — killing
a node loses no acknowledged base write (replication) and no watch
events (map-gated exactly-once pushes).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..net.rpc_client import RpcClient
from .partition_map import PartitionMap
from .procnode import ClusterNodeRuntime

#: Seconds to wait for a spawned node's READY line.
READY_TIMEOUT = 30.0


class ClusterError(RuntimeError):
    """A cluster-level coordination failure (spawn, migrate, promote)."""


class _ProcNode:
    """One spawned cluster-node subprocess."""

    def __init__(self, name: str, proc: subprocess.Popen, host: str,
                 port: int, peer_port: int) -> None:
        self.name = name
        self.proc = proc
        self.host = host
        self.port = port
        self.peer_port = peer_port

    def address(self) -> Tuple[str, int, int]:
        return (self.host, self.port, self.peer_port)

    def alive(self) -> bool:
        return self.proc.poll() is None

    def terminate(self) -> None:
        if self.alive():
            self.proc.terminate()

    def kill_hard(self) -> None:
        """``kill -9``: no WAL flush, no goodbye — real crash."""
        if self.alive():
            self.proc.kill()

    def wait(self, timeout: float = 10.0) -> None:
        try:
            self.proc.wait(timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(5)


class _ThreadNode:
    """One in-process node: the same runtime on private threads."""

    def __init__(self, runtime: ClusterNodeRuntime) -> None:
        self.name = runtime.name
        self.runtime = runtime
        self._dead = False

    def address(self) -> Tuple[str, int, int]:
        return self.runtime.address()

    @property
    def host(self) -> str:
        return self.runtime.host

    @property
    def port(self) -> int:
        return self.runtime.port

    @property
    def peer_port(self) -> int:
        return self.runtime.peer_port

    def alive(self) -> bool:
        return not self._dead

    def terminate(self) -> None:
        self._dead = True
        self.runtime.stop()

    def kill_hard(self) -> None:
        # Threads can't be SIGKILLed; stopping the endpoints without
        # draining is the closest in-process approximation — peers and
        # clients see connections drop mid-flight.
        self.terminate()

    def wait(self, timeout: float = 10.0) -> None:
        pass


class ProcCluster:
    """A partitioned, replicated cluster of Pequod processes."""

    def __init__(
        self,
        count: int = 2,
        *,
        tables: Sequence[str] = ("t",),
        splits: Sequence[str] = (),
        replication: int = 2,
        in_process: bool = False,
        host: str = "127.0.0.1",
        data_dir: Optional[str] = None,
        joins: Sequence[str] = (),
        memory_limit: Optional[int] = None,
        mode: str = "write-through",
    ) -> None:
        if count < 1:
            raise ValueError("a cluster needs at least one node")
        self.names = [f"node{i}" for i in range(count)]
        self.tables = list(tables)
        self.splits = list(splits)
        self.replication = min(replication, count)
        self.in_process = in_process
        self.host = host
        self.data_dir = data_dir
        self.joins = list(joins)
        self.memory_limit = memory_limit
        self.mode = mode
        self.nodes: Dict[str, Any] = {}
        self.map: Optional[PartitionMap] = None
        self._migrate_lock = threading.Lock()
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ProcCluster":
        if self._started:
            return self
        try:
            for name in self.names:
                self.nodes[name] = (
                    self._start_thread_node(name)
                    if self.in_process
                    else self._spawn(name)
                )
            self.map = PartitionMap.for_tables(
                self.names,
                {n: node.address() for n, node in self.nodes.items()},
                tables=self.tables,
                splits=self.splits,
                replication=self.replication,
            )
            wire = self.map.to_wire()
            for name in self.names:
                self._call(name, "install_map", wire)
            for text in self.joins:
                self.add_join(text)
        except BaseException:
            self.stop_all()
            raise
        self._started = True
        return self

    def __enter__(self) -> "ProcCluster":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop_all()

    def _node_data_dir(self, name: str) -> Optional[str]:
        if self.data_dir is None:
            return None
        path = os.path.join(self.data_dir, name)
        os.makedirs(path, exist_ok=True)
        return path

    def _start_thread_node(self, name: str) -> _ThreadNode:
        runtime = ClusterNodeRuntime(
            name,
            host=self.host,
            server_kwargs={
                "data_dir": self._node_data_dir(name),
                "memory_limit": self.memory_limit,
                "mode": self.mode,
            },
        )
        runtime.start_threaded()
        return _ThreadNode(runtime)

    def _spawn(self, name: str) -> _ProcNode:
        cmd = [
            sys.executable, "-m", "repro", "cluster-node",
            "--name", name, "--host", self.host,
        ]
        node_dir = self._node_data_dir(name)
        if node_dir is not None:
            cmd += ["--data-dir", node_dir]
        if self.memory_limit is not None:
            cmd += ["--memory-limit", str(self.memory_limit)]
        if self.mode != "write-through":
            cmd += ["--mode", self.mode]
        env = dict(os.environ)
        # The child must resolve the same `repro` package as the
        # parent, venv or no venv.
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, env=env, text=True, bufsize=1,
        )
        deadline = time.monotonic() + READY_TIMEOUT
        while True:
            if proc.poll() is not None:
                raise ClusterError(
                    f"cluster node {name} exited with {proc.returncode} "
                    f"before READY"
                )
            line = proc.stdout.readline()
            if not line:
                if time.monotonic() > deadline:
                    proc.kill()
                    raise ClusterError(f"cluster node {name}: READY timeout")
                continue
            try:
                ready = json.loads(line)
            except ValueError:
                continue  # stray startup output
            if ready.get("ready"):
                return _ProcNode(
                    name, proc, self.host, ready["port"], ready["peer_port"]
                )

    def stop_all(self) -> None:
        for node in self.nodes.values():
            node.terminate()
        for node in self.nodes.values():
            node.wait()
        self.nodes.clear()
        self._started = False

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def live_names(self) -> List[str]:
        return [n for n, node in self.nodes.items() if node.alive()]

    def addresses(self) -> Dict[str, Tuple[str, int, int]]:
        return {n: node.address() for n, node in self.nodes.items()}

    def client_addresses(self) -> List[Tuple[str, int]]:
        """(host, port) of every live client endpoint — what a
        :class:`~repro.client.procs.ProcClusterClient` bootstraps from."""
        return [
            (node.host, node.port)
            for node in self.nodes.values()
            if node.alive()
        ]

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def _call(self, name: str, method: str, *args, timeout: float = 60.0):
        node = self.nodes[name]

        async def go():
            client = RpcClient(node.host, node.port)
            await client.connect()
            try:
                return await asyncio.wait_for(
                    client.call(method, *args), timeout
                )
            finally:
                await client.close()

        return asyncio.run(go())

    def add_join(self, text: str) -> None:
        """Install a cache join on every node (each node runs the full
        join set; §3.2's compute-where-owned placement)."""
        for name in self.live_names():
            self._call(name, "add_join", text)

    def info(self) -> Dict[str, dict]:
        return {n: self._call(n, "cluster_info") for n in self.live_names()}

    def settle(self, timeout: float = 30.0) -> None:
        """Block until inter-node update traffic has drained: every
        node's per-peer sent counters match the receivers' applied
        counters (dead peers excluded pairwise), nothing in flight,
        stable across two polls."""
        deadline = time.monotonic() + timeout
        stable = 0
        while stable < 2:
            live = self.live_names()
            counters = {n: self._call(n, "cluster_settle") for n in live}
            quiet = all(
                c["inflight"] == 0 and c["queued"] == 0 for c in counters.values()
            ) and all(
                counters[src]["sent_to"].get(dst, 0)
                == counters[dst]["applied_from"].get(src, 0)
                for src in live
                for dst in live
                if dst != src
            )
            stable = stable + 1 if quiet else 0
            if stable < 2:
                if time.monotonic() > deadline:
                    raise ClusterError(f"settle timeout: {counters}")
                time.sleep(0.02)

    # ------------------------------------------------------------------
    # Reconfiguration
    # ------------------------------------------------------------------
    def migrate(self, lo: str, hi: str, target: str) -> PartitionMap:
        """Live-migrate ownership of ``[lo, hi)`` to ``target``.

        The source node drives snapshot + tail catch-up + subscription
        handoff (see ``procnode.migrate_out``); this coordinator picks
        the source, builds the new map, and afterwards installs it on
        the bystander nodes.  Serialized: concurrent migrations could
        interleave fences.
        """
        with self._migrate_lock:
            if self.map is None:
                raise ClusterError("cluster has no partition map yet")
            source = self.map.owner_of(lo)
            if source == target:
                return self.map
            new_map = self.map.reassign(lo, hi, target)
            self._call(source, "migrate_range", lo, hi, target,
                       new_map.to_wire())
            self.map = new_map
            wire = new_map.to_wire()
            for name in self.live_names():
                if name not in (source, target):
                    self._call(name, "install_map", wire)
            return new_map

    def fail_over(self, dead: str) -> PartitionMap:
        """Promote replicas over a dead node's ranges.

        The dead node keeps no role: every range it led is promoted to
        its first surviving replica, and live nodes drop subscriptions
        and mirror coverage that depended on it.  Raises if some range
        it led has no replica (data loss would be real — refuse)."""
        with self._migrate_lock:
            if self.map is None:
                raise ClusterError("cluster has no partition map yet")
            node = self.nodes.get(dead)
            if node is not None and node.alive():
                raise ClusterError(f"{dead} is still alive; kill it first")
            new_map = self.map.promote(dead)
            self.map = new_map
            wire = new_map.to_wire()
            for name in self.live_names():
                self._call(name, "install_map", wire, dead)
            return new_map

    def kill(self, name: str, hard: bool = True) -> None:
        """Kill one node (``hard`` = SIGKILL / no flush)."""
        node = self.nodes[name]
        if hard:
            node.kill_hard()
        else:
            node.terminate()
        node.wait()


def run_node(
    name: str,
    host: str = "127.0.0.1",
    port: int = 0,
    peer_port: int = 0,
    data_dir: Optional[str] = None,
    memory_limit: Optional[int] = None,
    mode: str = "write-through",
) -> None:
    """The ``repro cluster-node`` subprocess entry point: start both
    endpoints, print one READY line for the launcher's handshake, and
    serve until SIGTERM/SIGINT."""
    runtime = ClusterNodeRuntime(
        name,
        host=host,
        port=port,
        peer_port=peer_port,
        server_kwargs={
            "data_dir": data_dir,
            "memory_limit": memory_limit,
            "mode": mode,
        },
    )
    runtime.start_threaded()
    print(
        json.dumps(
            {
                "ready": True,
                "name": name,
                "port": runtime.port,
                "peer_port": runtime.peer_port,
                "pid": os.getpid(),
            }
        ),
        flush=True,
    )
    stop = threading.Event()
    for sig in (signal.SIGTERM, signal.SIGINT):
        signal.signal(sig, lambda *_: stop.set())
    stop.wait()
    runtime.stop()
