"""Cross-server base-data subscriptions (paper §2.4).

"When a base key k is read from a server S other than its home server
H, S requests k's value from H.  In addition to returning the value, H
installs a subscription for S to k.  When H receives an update to k's
value, it will send the new value to S."

The home side keeps subscriptions in an interval tree (ranges, not
single keys — fetches are containing ranges).  Updates propagate as
asynchronous messages, so replicas are eventually consistent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core.operators import ChangeKind
from ..store.interval_tree import IntervalTree
from ..store.keys import table_of


class SubscriptionRegistry:
    """Home-server side: who mirrors which of my ranges."""

    def __init__(self) -> None:
        self._by_table: Dict[str, IntervalTree] = {}
        self.installed = 0

    def subscribe(self, subscriber: str, lo: str, hi: str) -> None:
        """Record that ``subscriber`` mirrors ``[lo, hi)``."""
        table = table_of(lo)
        tree = self._by_table.setdefault(table, IntervalTree())
        entry = tree.find_entry(lo, hi)
        if entry is not None and subscriber in entry.payloads:
            return  # idempotent re-subscription
        tree.add(lo, hi, subscriber)
        self.installed += 1

    def unsubscribe(self, subscriber: str, lo: str, hi: str) -> bool:
        table = table_of(lo)
        tree = self._by_table.get(table)
        if tree is None:
            return False
        return tree.discard(lo, hi, subscriber)

    def subscribers_of(self, key: str) -> Set[str]:
        """Every server mirroring ``key``'s range."""
        tree = self._by_table.get(table_of(key))
        if tree is None:
            return set()
        out: Set[str] = set()
        for entry in tree.stab(key):
            out.update(entry.payloads)
        return out

    def drop_subscriber(self, subscriber: str) -> int:
        """Remove every subscription ``subscriber`` holds — what a home
        server does when a subscriber crashes (cluster fault injection).
        Returns how many range subscriptions were dropped."""
        dropped = 0
        for tree in self._by_table.values():
            doomed = [
                (entry.lo, entry.hi)
                for entry in tree.entries()
                if subscriber in entry.payloads
            ]
            for lo, hi in doomed:
                if tree.discard(lo, hi, subscriber):
                    dropped += 1
        return dropped

    def overlapping(self, lo: str, hi: str) -> List[Tuple[str, str, str]]:
        """Every ``(subscriber, lo, hi)`` whose range intersects
        ``[lo, hi)`` — what a migration source enumerates to hand its
        subscriptions off to the target."""
        out: List[Tuple[str, str, str]] = []
        for tree in self._by_table.values():
            for entry in tree.entries():
                if entry.lo < hi and lo < entry.hi:
                    for subscriber in entry.payloads:
                        out.append((subscriber, entry.lo, entry.hi))
        return out

    def subscription_count(self) -> int:
        return sum(t.payload_count() for t in self._by_table.values())

    def ranges_for(self, subscriber: str) -> List[Tuple[str, str]]:
        out = []
        for tree in self._by_table.values():
            for entry in tree.entries():
                if subscriber in entry.payloads:
                    out.append((entry.lo, entry.hi))
        return out

    def memory_bytes(self) -> int:
        """Approximate bookkeeping cost (the §5.5 base-server growth)."""
        total = 0
        for tree in self._by_table.values():
            for entry in tree.entries():
                total += 64 + len(entry.lo) + len(entry.hi)
                total += 16 * len(entry.payloads)
        return total


#: An asynchronous subscription update: (key, old, new, kind).
Update = Tuple[str, Optional[str], Optional[str], ChangeKind]


def encode_update(update: Update) -> list:
    key, old, new, kind = update
    return [key, old, new, kind.value]


def decode_update(body: list) -> Update:
    key, old, new, kind = body
    return key, old, new, ChangeKind(kind)


def encode_update_batch(updates: List[Update]) -> list:
    return [encode_update(update) for update in updates]


def decode_update_batch(body: list) -> List[Update]:
    return [decode_update(item) for item in body]


class UpdateBuffer:
    """Per-destination coalescing buffer for outbound updates.

    During a batched write a home server collects every subscriber
    notification here instead of sending it; flushing ships ONE
    coalesced message per subscriber.  Updates to the same key
    coalesce last-write-wins — mirrors apply the carried new value
    directly, so a superseded update is pure waste on the wire.
    """

    def __init__(self) -> None:
        self._by_dst: Dict[str, Dict[str, Update]] = {}
        self.coalesced = 0

    def add(self, dst: str, update: Update) -> None:
        buffered = self._by_dst.setdefault(dst, {})
        if update[0] in buffered:
            self.coalesced += 1
        buffered[update[0]] = update

    def __len__(self) -> int:
        return sum(len(buffered) for buffered in self._by_dst.values())

    def __bool__(self) -> bool:
        return bool(self._by_dst)

    def flush(self) -> List[Tuple[str, List[Update]]]:
        """Drain: one (destination, key-ordered updates) pair each."""
        out = [
            (dst, [buffered[key] for key in sorted(buffered)])
            for dst, buffered in self._by_dst.items()
        ]
        self._by_dst.clear()
        return out
