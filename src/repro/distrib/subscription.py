"""Cross-server base-data subscriptions (paper §2.4).

"When a base key k is read from a server S other than its home server
H, S requests k's value from H.  In addition to returning the value, H
installs a subscription for S to k.  When H receives an update to k's
value, it will send the new value to S."

The home side keeps subscriptions in an interval tree (ranges, not
single keys — fetches are containing ranges).  Updates propagate as
asynchronous messages, so replicas are eventually consistent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core.operators import ChangeKind
from ..store.interval_tree import IntervalTree
from ..store.keys import table_of


class SubscriptionRegistry:
    """Home-server side: who mirrors which of my ranges."""

    def __init__(self) -> None:
        self._by_table: Dict[str, IntervalTree] = {}
        self.installed = 0

    def subscribe(self, subscriber: str, lo: str, hi: str) -> None:
        """Record that ``subscriber`` mirrors ``[lo, hi)``."""
        table = table_of(lo)
        tree = self._by_table.setdefault(table, IntervalTree())
        entry = tree.find_entry(lo, hi)
        if entry is not None and subscriber in entry.payloads:
            return  # idempotent re-subscription
        tree.add(lo, hi, subscriber)
        self.installed += 1

    def unsubscribe(self, subscriber: str, lo: str, hi: str) -> bool:
        table = table_of(lo)
        tree = self._by_table.get(table)
        if tree is None:
            return False
        return tree.discard(lo, hi, subscriber)

    def subscribers_of(self, key: str) -> Set[str]:
        """Every server mirroring ``key``'s range."""
        tree = self._by_table.get(table_of(key))
        if tree is None:
            return set()
        out: Set[str] = set()
        for entry in tree.stab(key):
            out.update(entry.payloads)
        return out

    def subscription_count(self) -> int:
        return sum(t.payload_count() for t in self._by_table.values())

    def ranges_for(self, subscriber: str) -> List[Tuple[str, str]]:
        out = []
        for tree in self._by_table.values():
            for entry in tree.entries():
                if subscriber in entry.payloads:
                    out.append((entry.lo, entry.hi))
        return out

    def memory_bytes(self) -> int:
        """Approximate bookkeeping cost (the §5.5 base-server growth)."""
        total = 0
        for tree in self._by_table.values():
            for entry in tree.entries():
                total += 64 + len(entry.lo) + len(entry.hi)
                total += 16 * len(entry.payloads)
        return total


#: An asynchronous subscription update: (key, old, new, kind).
Update = Tuple[str, Optional[str], Optional[str], ChangeKind]


def encode_update(update: Update) -> list:
    key, old, new, kind = update
    return [key, old, new, kind.value]


def decode_update(body: list) -> Update:
    key, old, new, kind = body
    return key, old, new, ChangeKind(kind)
