"""The deterministic cost model behind modeled runtimes.

The paper's evaluation ran C++ servers on 32-core EC2 instances; a
pure-Python reproduction cannot approach those absolute numbers, and
wall-clock ratios between *Python* implementations would mostly measure
interpreter artifacts.  Instead, every system in this repository counts
the work it performs — RPC round trips, hash probes, tree descents,
skiplist walks, SQL statement overheads, bytes moved — and this module
converts the counters into a modeled runtime.

Unit costs are stated in microseconds and drawn from well-known
in-memory system magnitudes (sub-microsecond hash probes, ~1µs ordered-
index descents, a few µs per kernel-bypass-free RPC, tens of µs per SQL
statement for parse/plan/execute).  The Figure-7 ordering then *emerges*
from architecture: Pequod does server-side fan-out on 1% of operations,
client-managed caches pay one RPC per follower per post plus backfill
RPCs per subscription, memcached re-ships whole timelines on every
check, and the relational design pays statement overhead on every
operation.  Change any constant within reason and the ordering is
stable; the benchmarks print the breakdown so this is auditable.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

#: Unit costs in microseconds per counted unit.
DEFAULT_UNIT_COSTS_US: Dict[str, float] = {
    # client <-> server round trip (loopback TCP, event-driven server)
    "rpcs": 2.0,
    # O(1) hash-table probe (memcached/Redis lookup, subtable jump)
    "hash_jumps": 0.15,
    # ordered-index descent, per log2(n) level (RB tree, B-tree)
    "tree_descent_cost": 0.07,
    # Redis sorted-set (skiplist) walk, per log2(n) level
    "skiplist_cost": 0.07,
    # per item touched by a range scan / returned row
    "scanned_items": 0.04,
    # per byte shipped to a client (~500 MB/s effective with copies)
    "bytes_moved": 0.002,
    # per byte appended/written into a value
    "bytes_written": 0.001,
    # SQL statement overhead: parse, plan, execute, snapshot
    "sql_statements": 18.0,
    # per row read/written through the SQL executor
    "sql_rows": 0.4,
    # per row written by a trigger body (trigger invocation amortized)
    "sql_trigger_rows": 0.8,
    # join-engine events (on top of the store work they cause)
    "updaters_fired": 0.10,
    "outputs_installed": 0.05,
    "pending_applied": 0.20,
    "recomputations": 1.00,
    "joins_executed": 0.10,
    "source_keys_examined": 0.02,
    # basic op dispatch (covered mostly by rpcs; small server-side cost)
    "puts": 0.05,
    "gets": 0.05,
    "removes": 0.05,
    "scans": 0.10,
}


class CostModel:
    """Convert work counters into modeled runtimes.

    ``overrides`` adjusts unit costs for sensitivity analysis; the
    ablation benchmark uses this to show orderings are stable.
    """

    def __init__(self, overrides: Optional[Mapping[str, float]] = None) -> None:
        self.unit_costs = dict(DEFAULT_UNIT_COSTS_US)
        if overrides:
            self.unit_costs.update(overrides)

    def runtime_us(self, counters: Mapping[str, float]) -> float:
        """Total modeled microseconds for a counter snapshot."""
        return sum(
            count * self.unit_costs[name]
            for name, count in counters.items()
            if name in self.unit_costs
        )

    def runtime_s(self, counters: Mapping[str, float]) -> float:
        return self.runtime_us(counters) / 1e6

    def breakdown(self, counters: Mapping[str, float]) -> Dict[str, float]:
        """Per-component microseconds, largest first."""
        parts = {
            name: count * self.unit_costs[name]
            for name, count in counters.items()
            if name in self.unit_costs and count
        }
        return dict(sorted(parts.items(), key=lambda kv: -kv[1]))

    def dominant(self, counters: Mapping[str, float]) -> Tuple[str, float]:
        parts = self.breakdown(counters)
        if not parts:
            return ("nothing", 0.0)
        name = next(iter(parts))
        return name, parts[name]


DEFAULT_MODEL = CostModel()


def modeled_runtime_us(counters: Mapping[str, float]) -> float:
    return DEFAULT_MODEL.runtime_us(counters)
