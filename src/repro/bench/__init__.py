"""Benchmark harness: cost model, experiment runners, reporting."""

from .costmodel import DEFAULT_MODEL, DEFAULT_UNIT_COSTS_US, CostModel, modeled_runtime_us
from .harness import (
    ScalabilityPoint,
    SystemRun,
    figure7_backends,
    run_cluster_scaleout,
    run_figure7,
    run_figure8,
    run_figure8_point,
    run_figure9,
    run_figure9_point,
    run_figure10,
    run_figure10_point,
)
from .report import crossover_point, format_series, format_table, normalized

__all__ = [
    "CostModel",
    "DEFAULT_MODEL",
    "DEFAULT_UNIT_COSTS_US",
    "ScalabilityPoint",
    "SystemRun",
    "crossover_point",
    "figure7_backends",
    "format_series",
    "format_table",
    "modeled_runtime_us",
    "normalized",
    "run_cluster_scaleout",
    "run_figure7",
    "run_figure8",
    "run_figure8_point",
    "run_figure9",
    "run_figure9_point",
    "run_figure10",
    "run_figure10_point",
]
