"""Standalone load-driver process for the cluster scale-out bench.

The harness (:func:`repro.bench.harness.run_cluster_scaleout`) spawns
several of these, one OS process each, so client-side work never
shares a GIL with the cluster nodes or with other drivers.  Each
driver opens one :class:`~repro.client.procs.AsyncProcClusterClient`,
issues a deterministic put/get mix against the partitioned base table
with ``depth`` operations outstanding (the §5.1 event-driven client
model), measures every operation's latency, and prints one JSON
object on stdout::

    python -m repro.bench.cluster_driver \
        --endpoints 127.0.0.1:7709,127.0.0.1:7712 \
        --ops 2000 --depth 32 --n-keys 256 --value-size 32 --seed 3
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from typing import List, Tuple

from ..client.procs import AsyncProcClusterClient


def build_ops(
    ops: int, n_keys: int, value_size: int, seed: int
) -> List[Tuple[str, str, str]]:
    """A deterministic (method, key, value) schedule; value is ""
    for gets.  Seeded per driver so drivers don't write identical
    keys in lockstep."""
    value = "v" * value_size
    out: List[Tuple[str, str, str]] = []
    for i in range(ops):
        j = (i * 2654435761 + seed * 97) % (2**32)
        key = f"p|u{j % n_keys:04d}|{seed:02d}{i:06d}"
        if i % 2 == 0:
            out.append(("put", key, f"{value}{i}"))
        else:
            out.append(("get", f"p|u{j % n_keys:04d}|", ""))
    return out


async def drive(
    endpoints: List[Tuple[str, int]],
    ops: int,
    depth: int,
    n_keys: int,
    value_size: int,
    seed: int,
) -> dict:
    client = await AsyncProcClusterClient.open(endpoints)
    schedule = build_ops(ops, n_keys, value_size, seed)
    latencies: List[float] = []
    sem = asyncio.Semaphore(depth)

    async def one(method: str, key: str, value: str) -> None:
        async with sem:
            start = time.perf_counter()
            if method == "put":
                await client.put(key, value)
            else:
                await client.scan_prefix(key)
            latencies.append(time.perf_counter() - start)

    start = time.perf_counter()
    await asyncio.gather(*(one(m, k, v) for m, k, v in schedule))
    wall = time.perf_counter() - start
    await client.aclose()
    return {
        "ops": ops,
        "wall_s": wall,
        "ops_per_sec": ops / max(wall, 1e-9),
        "latencies_us": [round(l * 1e6, 1) for l in latencies],
    }


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(prog="cluster_driver")
    parser.add_argument("--endpoints", required=True)
    parser.add_argument("--ops", type=int, default=2000)
    parser.add_argument("--depth", type=int, default=32)
    parser.add_argument("--n-keys", type=int, default=256)
    parser.add_argument("--value-size", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    endpoints = []
    for part in args.endpoints.split(","):
        host, _, port = part.strip().rpartition(":")
        endpoints.append((host, int(port)))
    result = asyncio.run(
        drive(
            endpoints,
            args.ops,
            args.depth,
            args.n_keys,
            args.value_size,
            args.seed,
        )
    )
    json.dump(result, sys.stdout)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
