"""Experiment harness: the runnable reproductions of §5's evaluation.

Each ``run_*`` function regenerates one table or figure at a
configurable scale and returns a structured result that both the pytest
benchmarks and the EXPERIMENTS.md record are produced from.  The scale
parameter trades fidelity for runtime; shapes (who wins, rough factors,
crossover locations) are stable across scales.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..apps.newp import NewpApp
from ..apps.social_graph import SocialGraph, generate_graph
from ..apps.twip import PequodTwipBackend, TIMELINE_JOIN, format_time
from ..apps.workload import (
    NewpWorkload,
    OP_POST,
    TwipWorkload,
    checks_and_posts_workload,
)
from ..baselines import (
    ClientPequodBackend,
    MemcacheLikeBackend,
    RedisLikeBackend,
    SqlViewBackend,
    TwipBackend,
)
from ..client import PequodClient, make_client
from ..core.server import PequodServer
from ..distrib.cluster import Cluster
from ..store.keys import prefix_upper_bound
from .costmodel import CostModel, DEFAULT_MODEL


class SystemRun:
    """One system's measurements for a comparison experiment."""

    def __init__(
        self,
        name: str,
        modeled_us: float,
        wall_s: float,
        counters: Dict[str, float],
    ) -> None:
        self.name = name
        self.modeled_us = modeled_us
        self.wall_s = wall_s
        self.counters = counters

    def __repr__(self) -> str:  # pragma: no cover
        return f"<SystemRun {self.name}: {self.modeled_us:.0f}us>"


def _wall(fn: Callable[[], object]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


# ======================================================================
# Figure 7: system comparison
# ======================================================================
def figure7_backends() -> Dict[str, Callable[[], TwipBackend]]:
    return {
        "pequod": lambda: PequodTwipBackend(),
        "redis": lambda: RedisLikeBackend(),
        "client pequod": lambda: ClientPequodBackend(),
        "memcached": lambda: MemcacheLikeBackend(),
        "postgresql": lambda: SqlViewBackend(),
    }


def run_figure7(
    n_users: int = 500,
    mean_follows: float = 15.0,
    total_ops: int = 12000,
    prepopulated_posts: Optional[int] = None,
    seed: int = 42,
    model: CostModel = DEFAULT_MODEL,
) -> List[SystemRun]:
    """Run the same Twip workload to completion on all five systems.

    Before measurement each backend is loaded with the social graph and
    a body of existing posts (log-follower weighted, §5.1) through its
    normal write path — logins must return "a list of many recent
    tweets", which is where architectures that re-ship whole timelines
    pay.

    Scale note: the paper ran 1.8M users and ~73M operations; at very
    small scales (a few hundred users) Pequod's fixed join-engine
    bookkeeping is not yet amortized and Redis can edge ahead.  From
    roughly 500 users / 12k operations upward the paper's ordering is
    stable (and widens with scale).
    """
    import random as _random

    graph = generate_graph(n_users, mean_follows, seed=seed)
    workload = TwipWorkload(graph, total_ops, seed=seed)
    ops = workload.generate()
    if prepopulated_posts is None:
        prepopulated_posts = n_users
    rng = _random.Random(seed + 1)
    weights = [graph.post_weight(u) for u in graph.users]
    pre_posts = [
        (rng.choices(graph.users, weights)[0], i)
        for i in range(prepopulated_posts)
    ]
    runs: List[SystemRun] = []
    for name, factory in figure7_backends().items():
        backend = factory()
        backend.load_graph(graph.edges)
        for poster, i in pre_posts:
            backend.post(poster, format_time(i), f"old tweet {i} from {poster}")
        backend.reset_meter()
        wall = _wall(lambda: workload.run(backend, ops=ops, load_graph=False))
        counters = backend.meter.snapshot()
        runs.append(SystemRun(name, model.runtime_us(counters), wall, counters))
    runs.sort(key=lambda r: r.modeled_us)
    return runs


# ======================================================================
# Figure 8: materialization strategies
# ======================================================================
def _twip_server(strategy: str) -> PequodServer:
    server = PequodServer(subtable_config={"t": 2, "p": 2, "s": 2})
    if strategy == "none":
        # No materialization: recompute on every read, cache nothing.
        server.add_join(
            "t|<user>|<time>|<poster> = pull "
            "check s|<user>|<poster> copy p|<poster>|<time>"
        )
    else:
        server.add_join(TIMELINE_JOIN)
    return server


def run_figure8_point(
    graph: SocialGraph,
    strategy: str,
    active_pct: int,
    posts: int,
    seed: int = 7,
    model: CostModel = DEFAULT_MODEL,
) -> SystemRun:
    """One (strategy, %active) cell of Figure 8."""
    server = _twip_server(strategy)
    for follower, followee in graph.edges:
        server.put(f"s|{follower}|{followee}", "1")
    if strategy == "full":
        # Full materialization: every timeline computed and maintained
        # up front, active or not.
        for user in graph.users:
            server.scan(f"t|{user}|", prefix_upper_bound(f"t|{user}|"))
    server.stats.reset()
    ops = checks_and_posts_workload(graph, active_pct, posts, seed=seed)
    tick = 0

    def drive() -> None:
        nonlocal tick
        for op in ops:
            tick += 1
            if op.kind == OP_POST:
                server.put(f"p|{op.user}|{format_time(tick)}", f"tweet {tick}")
            else:
                server.scan(f"t|{op.user}|", prefix_upper_bound(f"t|{op.user}|"))

    wall = _wall(drive)
    counters = server.stats.snapshot()
    return SystemRun(strategy, model.runtime_us(counters), wall, counters)


def run_figure8(
    n_users: int = 300,
    mean_follows: float = 10.0,
    posts: int = 600,
    active_pcts: Sequence[int] = (1, 10, 30, 50, 70, 90, 100),
    seed: int = 7,
    model: CostModel = DEFAULT_MODEL,
) -> Dict[str, List[SystemRun]]:
    graph = generate_graph(n_users, mean_follows, seed=seed)
    out: Dict[str, List[SystemRun]] = {"none": [], "full": [], "dynamic": []}
    for strategy in out:
        for pct in active_pcts:
            out[strategy].append(
                run_figure8_point(graph, strategy, pct, posts, seed=seed, model=model)
            )
    return out


# ======================================================================
# Figure 9: Newp interleaved vs non-interleaved joins
# ======================================================================
def run_figure9_point(
    interleaved: bool,
    vote_rate: float,
    scale: float = 1.0,
    seed: int = 9,
    model: CostModel = DEFAULT_MODEL,
) -> SystemRun:
    workload = NewpWorkload(
        n_articles=int(200 * scale),
        n_users=int(100 * scale),
        n_comments=int(2000 * scale),
        n_votes=int(4000 * scale),
        n_sessions=int(2000 * scale),
        vote_rate=vote_rate,
        seed=seed,
    )
    app = NewpApp(interleaved=interleaved)
    workload.prepopulate(app)
    wall = _wall(lambda: workload.run(app))
    counters = app.meter.snapshot()
    name = "interleaved" if interleaved else "non-interleaved"
    return SystemRun(name, model.runtime_us(counters), wall, counters)


def run_figure9(
    vote_rates: Sequence[float] = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0),
    scale: float = 1.0,
    seed: int = 9,
    model: CostModel = DEFAULT_MODEL,
) -> Dict[str, List[SystemRun]]:
    return {
        "interleaved": [
            run_figure9_point(True, rate, scale, seed, model) for rate in vote_rates
        ],
        "non-interleaved": [
            run_figure9_point(False, rate, scale, seed, model) for rate in vote_rates
        ],
    }


# ======================================================================
# Figure 10: distributed scalability
# ======================================================================
class ScalabilityPoint:
    """One cluster size's measurements (§5.5)."""

    def __init__(
        self,
        compute_servers: int,
        throughput_qps: float,
        base_memory: int,
        compute_memory: int,
        subscription_fraction: float,
    ) -> None:
        self.compute_servers = compute_servers
        self.throughput_qps = throughput_qps
        self.base_memory = base_memory
        self.compute_memory = compute_memory
        self.subscription_fraction = subscription_fraction


def run_figure10_point(
    compute_servers: int,
    n_users: int = 300,
    mean_follows: float = 10.0,
    total_ops: int = 6000,
    base_servers: int = 4,
    seed: int = 10,
    model: CostModel = DEFAULT_MODEL,
) -> ScalabilityPoint:
    """Run the fixed Twip workload on a cluster of the given size.

    Mirrors §5.5: base servers absorb writes, compute servers execute
    the timeline join, every user's reads go to one compute server, and
    caches are warmed by logging every user in before measurement.  The
    workload uses the §5.1 mix (timeline checks dominate; 9% new
    subscriptions; 1% posts, log-follower weighted) with incremental
    checks.  The measured bottleneck is compute-server CPU, so modeled
    runtime is the busiest compute server's modeled time and throughput
    is ops / that time.

    Sublinear scaling has the paper's cause: a popular poster's tweets
    are mirrored on — and applied by — every compute server with a
    subscribed reader, so total maintenance work grows with the server
    count while scan work divides across it.
    """
    graph = generate_graph(n_users, mean_follows, seed=seed)
    cluster = Cluster(base_servers, compute_servers, ("p", "s"), joins=TIMELINE_JOIN)
    for follower, followee in graph.edges:
        cluster.put(f"s|{follower}|{followee}", "1")
    # Warm: log every user in (§5.5 warms caches before measuring).
    for user in graph.users:
        cluster.scan(user, f"t|{user}|", prefix_upper_bound(f"t|{user}|"))
    cluster.settle()
    for node in cluster.nodes:
        node.server.stats.reset()
    cluster.net.kind_bytes.clear()

    workload = TwipWorkload(graph, total_ops, active_fraction=1.0, seed=seed)
    ops = workload.generate()
    drive_twip_ops(
        ops,
        put=cluster.put,
        scan_timeline=lambda user, since: cluster.scan(
            user, f"t|{user}|{since}", prefix_upper_bound(f"t|{user}|")
        ),
        settle=cluster.settle,
    )

    busiest_us = max(
        model.runtime_us(node.server.stats.snapshot())
        for node in cluster.compute_nodes
    )
    runtime_s = max(busiest_us / 1e6, 1e-9)
    return ScalabilityPoint(
        compute_servers=compute_servers,
        throughput_qps=len(ops) / runtime_s,
        base_memory=cluster.base_memory_bytes(),
        compute_memory=cluster.compute_memory_bytes(),
        subscription_fraction=cluster.subscription_traffic_fraction(),
    )


def run_figure10(
    server_counts: Sequence[int] = (3, 6, 9, 12),
    **kwargs,
) -> List[ScalabilityPoint]:
    return [run_figure10_point(count, **kwargs) for count in server_counts]


# ======================================================================
# The shared Twip op-dispatch loop (used by the figure-10 runner and
# the backend matrix, so the two experiments drive one workload)
# ======================================================================
def drive_twip_ops(
    ops,
    put: Callable[[str, str], object],
    scan_timeline: Callable[[str, str], object],
    settle: Optional[Callable[[], object]] = None,
    settle_every: int = 100,
) -> None:
    """Dispatch a generated Twip op stream onto write/read callables.

    Posts and new subscriptions become puts; logins scan the whole
    timeline and incremental checks scan from the user's last seen
    time (§5.1).  ``settle``, when given, runs every ``settle_every``
    ticks and once at the end — bounding staleness on deployments
    with asynchronous propagation.
    """
    last_seen: Dict[str, str] = {}
    tick = 0
    for op in ops:
        tick += 1
        now = format_time(tick)
        if op.kind == OP_POST:
            put(f"p|{op.user}|{now}", f"tweet {tick} from {op.user}")
        elif op.kind == "subscribe":
            put(f"s|{op.user}|{op.target}", "1")
        else:  # login or incremental check
            since = (
                format_time(0) if op.kind == "login"
                else last_seen.get(op.user, format_time(0))
            )
            scan_timeline(op.user, since)
            last_seen[op.user] = now
        if settle is not None and tick % settle_every == 0:
            settle()
    if settle is not None:
        settle()


# ======================================================================
# Backend matrix: one workload, every deployment shape
# ======================================================================
def run_twip_backend(
    client: PequodClient,
    graph: SocialGraph,
    ops,
    settle_every: int = 50,
) -> Dict[str, object]:
    """Drive the Twip workload through ONE unified client.

    This is the point of the client API: the driver contains no
    backend-specific code — the same puts and scans run in-process,
    over TCP RPC, or against a simulated cluster.  ``settle_every``
    bounds cluster staleness during the run (a no-op elsewhere); a
    final settle plus full rescan yields the comparable output state.
    """
    client.add_join(TIMELINE_JOIN)
    graph.load_into(client)
    client.settle()
    start = time.perf_counter()
    drive_twip_ops(
        ops,
        put=client.put,
        scan_timeline=lambda user, since: client.scan(
            f"t|{user}|{since}", prefix_upper_bound(f"t|{user}|")
        ),
        settle=client.settle,
        settle_every=settle_every,
    )
    wall = time.perf_counter() - start
    # The observable output state: every timeline plus the base data,
    # all read back through the same unified API.
    state: List[Tuple[str, str]] = []
    for user in graph.users:
        state.extend(client.scan_prefix(f"t|{user}|"))
    state.extend(client.scan_prefix("p|"))
    state.extend(client.scan_prefix("s|"))
    return {"wall_s": wall, "ops_per_sec": len(ops) / max(wall, 1e-9),
            "state": state}


def run_twip_matrix(
    backends: Sequence[str] = ("local", "rpc", "cluster"),
    n_users: int = 60,
    mean_follows: float = 6.0,
    total_ops: int = 800,
    settle_every: int = 50,
    seed: int = 42,
) -> Dict[str, object]:
    """The acceptance experiment for the unified client API: the same
    deterministic Twip workload on every requested backend, asserting
    the final output state is identical everywhere.

    Absolute rates are not comparable across backends — "rpc" pays
    real TCP round trips per operation and "cluster" simulates several
    servers — which is exactly the deployment truth the paper's single
    abstraction hides from application code.
    """
    import hashlib

    graph = generate_graph(n_users, mean_follows, seed=seed)
    ops = TwipWorkload(graph, total_ops, seed=seed).generate()
    results: Dict[str, Dict[str, object]] = {}
    baseline_state: Optional[List[Tuple[str, str]]] = None
    state_identical = True
    for backend in backends:
        with make_client(
            backend,
            subtable_config={"t": 2, "p": 2, "s": 2},
            base_tables=("p", "s"),
        ) as client:
            run = run_twip_backend(client, graph, ops, settle_every)
        state = run.pop("state")
        digest = hashlib.sha256(repr(state).encode()).hexdigest()
        if baseline_state is None:
            baseline_state = state
        elif state != baseline_state:
            state_identical = False
        run["state_sha256"] = digest
        run["keys"] = len(state)
        results[backend] = run
    return {
        "workload": {
            "n_users": n_users,
            "mean_follows": mean_follows,
            "total_ops": total_ops,
            "settle_every": settle_every,
            "seed": seed,
        },
        "backends": results,
        "state_identical": state_identical,
    }


# ======================================================================
# Read path: the §4 lookup-path overhaul, layer by layer
# ======================================================================
#: Read-heavy §5.1-style mix: timeline scans carry the run — 12% full
#: logins (the "list of many recent tweets"), 85.5% incremental checks,
#: and only 2.5% writes, so the lookup path is what is measured.
READ_HEAVY_MIX = (
    ("login", 0.12),
    ("subscribe", 0.005),
    ("check", 0.855),
    (OP_POST, 0.02),
)

#: The cumulative optimization layers of the read-path overhaul, applied
#: in the order they stack: compiled patterns (match/expand without
#: regex or split), the engine's validation memo (§4.2's hint idea
#: applied to status-range validation), the batched scan loop, and the
#: blocked sorted-array store.  ``baseline`` reproduces the pre-overhaul
#: read path faithfully (rbtree store, uncompiled patterns, no memo,
#: legacy per-item scan loop).
READ_PATH_CONFIGS = (
    ("baseline", {}),
    ("+compiled-patterns", {"compiled": True}),
    ("+validation-memo", {"compiled": True, "memo": True}),
    ("+batched-scan", {"compiled": True, "memo": True, "fast_scan": True}),
    (
        "+sortedarray-store",
        {
            "compiled": True,
            "memo": True,
            "fast_scan": True,
            "store_impl": "sortedarray",
        },
    ),
)


def run_pattern_micro(rounds: int = 200) -> Dict[str, object]:
    """Compiled vs reference pattern operations, in matches/second.

    The compiled paths pay off on the *compute* side of reads (login
    materialization, pending application, updater fires) where the
    macro benchmark mixes them with scan work; this isolates them.
    """
    from ..core.pattern import Pattern

    variable = Pattern("t|<user>|<time>|<poster>")
    fixed = Pattern("p|<poster>|<time:8>")
    var_keys = [f"t|user{i % 97:03d}|{i:08d}|poster{i % 13}" for i in range(1000)]
    fix_keys = [f"p|poster{i % 13}|{i:08d}" for i in range(1000)]

    def rate(fn, keys) -> float:
        start = time.process_time()
        for _ in range(rounds):
            for key in keys:
                fn(key)
        return rounds * len(keys) / max(time.process_time() - start, 1e-9)

    out: Dict[str, object] = {}
    for name, pattern, keys in (
        ("variable_width", variable, var_keys),
        ("fixed_width", fixed, fix_keys),
    ):
        compiled = rate(pattern.match, keys)
        reference = rate(pattern.match_reference, keys)
        out[name] = {
            "compiled_per_sec": compiled,
            "reference_per_sec": reference,
            "speedup": compiled / reference,
        }
    return out


def run_read_path(
    n_users: int = 400,
    mean_follows: float = 12.0,
    total_ops: int = 20000,
    prepopulated_posts: Optional[int] = None,
    seed: int = 13,
    repeats: int = 2,
    model: CostModel = DEFAULT_MODEL,
    configs: Sequence[Tuple[str, Dict[str, object]]] = READ_PATH_CONFIGS,
) -> Dict[str, object]:
    """The read-heavy Twip scan workload across the overhaul's layers.

    Before measurement every server is loaded with the social graph and
    a body of existing posts (log-follower weighted, as in Figure 7) and
    every timeline is materialized, so logins return "a list of many
    recent tweets" and incremental checks — the 85.5% case — exercise
    the warm lookup path the paper's §4 engineers.  CPU time is measured
    (the read path is pure computation; wall clock would mostly measure
    machine load), and the final observable state — every timeline plus
    the base tables — is asserted byte-identical across all
    configurations: the benchmark doubles as an equivalence check for
    the compiled pattern paths and both store implementations.
    """
    import gc as _gc
    import random as _random

    from ..core.pattern import set_pattern_compilation

    graph = generate_graph(n_users, mean_follows, seed=seed)
    ops = TwipWorkload(graph, total_ops, mix=READ_HEAVY_MIX, seed=seed).generate()
    if prepopulated_posts is None:
        prepopulated_posts = 12 * n_users
    rng = _random.Random(seed + 1)
    weights = [graph.post_weight(u) for u in graph.users]
    pre_posts = [
        (rng.choices(graph.users, weights)[0], i)
        for i in range(prepopulated_posts)
    ]
    #: Per-user timeline bounds, precomputed once — client-side caching
    #: the driver applies identically to every configuration.
    timeline_lo = {u: f"t|{u}|" for u in graph.users}
    timeline_hi = {u: prefix_upper_bound(f"t|{u}|") for u in graph.users}

    def build_server(cfg: Dict[str, object]) -> PequodServer:
        server = PequodServer(
            subtable_config={"t": 2, "p": 2, "s": 2},
            store_impl=cfg.get("store_impl", "rbtree"),
        )
        server.engine.enable_validation_memo = bool(cfg.get("memo", False))
        server.store.legacy_read_path = not cfg.get("fast_scan", False)
        server.add_join(TIMELINE_JOIN)
        for follower, followee in graph.edges:
            server.put(f"s|{follower}|{followee}", "1")
        for poster, i in pre_posts:
            server.put(f"p|{poster}|{format_time(i)}",
                       f"old tweet {i} from {poster}")
        for user in graph.users:
            server.scan(timeline_lo[user], timeline_hi[user])
        server.stats.reset()
        return server

    def snapshot(server: PequodServer) -> List[Tuple[str, str]]:
        state: List[Tuple[str, str]] = []
        for user in graph.users:
            state.extend(server.scan(timeline_lo[user], timeline_hi[user]))
        state.extend(server.scan("p|", "p}"))
        state.extend(server.scan("s|", "s}"))
        return state

    points: List[Dict[str, float]] = []
    baseline_state: Optional[List[Tuple[str, str]]] = None
    baseline_rate: Optional[float] = None
    state_identical = True
    for name, cfg in configs:
        previous = set_pattern_compilation(bool(cfg.get("compiled", False)))
        try:
            # Best of ``repeats`` fresh runs: CPU time is steady, but
            # best-of damps scheduler and cache noise that would
            # otherwise dominate the between-layer deltas.
            cpu = None
            for _ in range(max(1, repeats)):
                server = build_server(cfg)
                scan = server.scan
                _gc.collect()
                cpu_start = time.process_time()
                drive_twip_ops(
                    ops,
                    put=server.put,
                    scan_timeline=lambda user, since: scan(
                        f"t|{user}|{since}", timeline_hi[user]
                    ),
                )
                elapsed = time.process_time() - cpu_start
                cpu = elapsed if cpu is None else min(cpu, elapsed)
            # Counters describe the measured op stream only — captured
            # before the verification snapshot re-scans everything.
            counters = server.stats.snapshot()
            state = snapshot(server)
        finally:
            set_pattern_compilation(previous)
        if baseline_state is None:
            baseline_state = state
        elif state != baseline_state:
            state_identical = False
        rate = len(ops) / max(cpu, 1e-9)
        if baseline_rate is None:
            baseline_rate = rate
        points.append(
            {
                "config": name,
                "cpu_s": cpu,
                "ops_per_sec": rate,
                "speedup": rate / baseline_rate,
                "modeled_us": model.runtime_us(counters),
                "scanned_items": counters.get("scanned_items", 0.0),
                "validation_memo_hits": counters.get("validation_memo_hits", 0.0),
            }
        )
    return {
        "workload": {
            "n_users": n_users,
            "mean_follows": mean_follows,
            "total_ops": total_ops,
            "prepopulated_posts": prepopulated_posts,
            "mix": {kind: weight for kind, weight in READ_HEAVY_MIX},
            "repeats": repeats,
            "seed": seed,
        },
        "points": points,
        "pattern_micro": run_pattern_micro(),
        "state_identical": state_identical,
        "speedup_full": points[-1]["speedup"] if points else 0.0,
    }


# ======================================================================
# Write batching: throughput at high write rates
# ======================================================================
def run_write_batching(
    n_users: int = 400,
    mean_follows: float = 12.0,
    posts: int = 4096,
    batch_sizes: Sequence[int] = (1, 8, 32, 128),
    edit_fraction: float = 0.35,
    edit_window: int = 8,
    seed: int = 11,
    model: CostModel = DEFAULT_MODEL,
) -> Dict[str, object]:
    """Per-key writes vs ``WriteBatch`` on the high-write Twip workload.

    Every fully-warmed timeline makes each post fan out to its
    followers, so the write path dominates: this is the regime where
    update cost eats the freshness budget and grouping writes pays.
    The stream is log-follower-weighted posts with ``edit_fraction``
    of writes rewriting one of the last ``edit_window`` posts — the
    edit/metadata-update bursts of a write-heavy feed.  Batching wins
    two ways: per-write overheads (interval-tree stab, status-range
    resolution per updater firing) amortize across the group, and a
    post superseded within its batch coalesces away, skipping its
    per-follower fan-out entirely.  The same stream is applied once
    per batch size; batch size 1 is the per-key baseline.  Output
    state is asserted identical across batch sizes — the benchmark
    doubles as an end-to-end coalescing-correctness check.
    """
    import gc as _gc
    import random as _random

    graph = generate_graph(n_users, mean_follows, seed=seed)
    rng = _random.Random(seed + 1)
    weights = [graph.post_weight(u) for u in graph.users]
    stream: List[Tuple[str, str]] = []
    recent: List[str] = []
    for tick in range(posts):
        if recent and rng.random() < edit_fraction:
            key = rng.choice(recent[-edit_window:])
            stream.append((key, f"edited at {tick}"))
        else:
            poster = rng.choices(graph.users, weights)[0]
            key = f"p|{poster}|{format_time(tick)}"
            stream.append((key, f"tweet {tick} from {poster}"))
            recent.append(key)

    def build_server() -> PequodServer:
        server = PequodServer(subtable_config={"t": 2, "p": 2, "s": 2})
        server.add_join(TIMELINE_JOIN)
        for follower, followee in graph.edges:
            server.put(f"s|{follower}|{followee}", "1")
        for user in graph.users:
            server.scan(f"t|{user}|", prefix_upper_bound(f"t|{user}|"))
        server.stats.reset()
        return server

    def snapshot(server: PequodServer) -> List[Tuple[str, str]]:
        return server.scan("t|", "t}") + server.scan("p|", "p}")

    points: List[Dict[str, float]] = []
    baseline_state: Optional[List[Tuple[str, str]]] = None
    baseline_rate: Optional[float] = None
    state_identical = True
    for size in batch_sizes:
        server = build_server()
        coalesced = 0

        def drive() -> None:
            nonlocal coalesced
            if size <= 1:
                for key, value in stream:
                    server.put(key, value)
                return
            for start in range(0, len(stream), size):
                batch = server.write_batch()
                batch.update(stream[start : start + size])
                batch.apply()
                coalesced += batch.coalesced_ops

        # CPU time, not wall: the write path is pure computation, and
        # process time is robust to machine load, which would otherwise
        # dominate the few-percent-to-2x differences measured here.
        _gc.collect()
        cpu_start = time.process_time()
        drive()
        cpu = time.process_time() - cpu_start
        state = snapshot(server)
        if baseline_state is None:
            baseline_state = state
        elif state != baseline_state:
            state_identical = False
        rate = len(stream) / max(cpu, 1e-9)
        if baseline_rate is None:
            baseline_rate = rate
        counters = server.stats.snapshot()
        points.append(
            {
                "batch_size": size,
                "cpu_s": cpu,
                "ops_per_sec": rate,
                "speedup": rate / baseline_rate,
                "modeled_us": model.runtime_us(counters),
                "coalesced_ops": float(coalesced),
                "updater_groups_fired": counters.get("updater_groups_fired", 0.0),
                "updaters_fired": counters.get("updaters_fired", 0.0),
            }
        )
    return {
        "workload": {
            "n_users": n_users,
            "mean_follows": mean_follows,
            "posts": posts,
            "edit_fraction": edit_fraction,
            "edit_window": edit_window,
            "seed": seed,
        },
        "points": points,
        "state_identical": state_identical,
    }


# ======================================================================
# Write path: compiled execution plans at celebrity fan-out
# ======================================================================
WRITE_PATH_CONFIGS = (
    ("reference", {}),
    ("+exec-plans", {"plans": True}),
    ("+whole-table-validity", {"plans": True, "fastpath": True}),
)


def run_write_path(
    fan_out: int = 10000,
    rounds: int = 8,
    batch_size: int = 8,
    pre_posts: int = 4,
    repeats: int = 2,
    seed: int = 17,
    model: CostModel = DEFAULT_MODEL,
    configs: Sequence[Tuple[str, Dict[str, object]]] = WRITE_PATH_CONFIGS,
) -> Dict[str, object]:
    """The celebrity problem: write-side maintenance at high fan-out.

    One celebrity with ``fan_out`` followers, every follower timeline
    materialized, so each celebrity post fires one eager updater per
    follower — the per-fire interpretation cost the compiled write path
    (``core.plan``) removes.  Each measured round writes one single
    post (the per-key fire path), one ``batch_size`` post batch (the
    grouped fire path with batched ``install_many`` output runs), and
    two cross-timeline scans over a ~100-timeline window (the
    validation cost the whole-table fast path removes once the cover
    is quiescent).

    Configurations layer the tentpole: the interpreted reference
    (``set_plan_compilation(False)``), compiled execution plans, and
    plans plus the whole-table validity fast path.  CPU time is
    measured best-of-``repeats`` on fresh servers; the final store
    state (every timeline plus base tables) must be byte-identical —
    the benchmark doubles as the plan-vs-interpreter equivalence
    oracle, and the JSON records the sha256 of the state each config
    produced.
    """
    import gc as _gc
    import hashlib as _hashlib

    from ..core.plan import set_plan_compilation

    celebrity = "celeb"
    followers = [f"u{i:05d}" for i in range(fan_out)]
    scan_lo = "t|u000"
    scan_hi = prefix_upper_bound(scan_lo)
    posts_per_round = 1 + batch_size
    total_posts = rounds * posts_per_round

    def build_server() -> PequodServer:
        server = PequodServer(subtable_config={"t": 2, "p": 2, "s": 2})
        server.add_join(TIMELINE_JOIN)
        for follower in followers:
            server.put(f"s|{follower}|{celebrity}", "1")
        for i in range(pre_posts):
            server.put(
                f"p|{celebrity}|{format_time(i)}", f"warm tweet {i}"
            )
        for follower in followers:
            server.scan(f"t|{follower}|", prefix_upper_bound(f"t|{follower}|"))
        # One warm cross-timeline scan tiles the gaps between follower
        # timelines, so the timed scans see a contiguous cover (the
        # precondition for whole-table validity) in every config.
        server.scan("t|", "t}")
        server.stats.reset()
        return server

    def drive(server: PequodServer) -> None:
        tick = pre_posts
        for _ in range(rounds):
            server.put(
                f"p|{celebrity}|{format_time(tick)}", f"tweet {tick}"
            )
            tick += 1
            batch = server.write_batch()
            batch.update(
                [
                    (f"p|{celebrity}|{format_time(tick + j)}", f"tweet {tick + j}")
                    for j in range(batch_size)
                ]
            )
            batch.apply()
            tick += batch_size
            server.scan(scan_lo, scan_hi)
            server.scan(scan_lo, scan_hi)

    def snapshot(server: PequodServer) -> str:
        state = (
            server.scan("t|", "t}")
            + server.scan("p|", "p}")
            + server.scan("s|", "s}")
        )
        return _hashlib.sha256(repr(state).encode()).hexdigest()

    points: List[Dict[str, object]] = []
    baseline_digest: Optional[str] = None
    baseline_rate: Optional[float] = None
    state_identical = True
    for name, cfg in configs:
        previous = set_plan_compilation(bool(cfg.get("plans", False)))
        try:
            cpu = None
            for _ in range(max(1, repeats)):
                server = build_server()
                server.engine.enable_whole_table_fastpath = bool(
                    cfg.get("fastpath", False)
                )
                _gc.collect()
                cpu_start = time.process_time()
                drive(server)
                elapsed = time.process_time() - cpu_start
                cpu = elapsed if cpu is None else min(cpu, elapsed)
            counters = server.stats.snapshot()
            digest = snapshot(server)
        finally:
            set_plan_compilation(previous)
        if baseline_digest is None:
            baseline_digest = digest
        elif digest != baseline_digest:
            state_identical = False
        rate = total_posts / max(cpu, 1e-9)
        if baseline_rate is None:
            baseline_rate = rate
        points.append(
            {
                "config": name,
                "cpu_s": cpu,
                "ops_per_sec": rate,
                "speedup": rate / baseline_rate,
                "modeled_us": model.runtime_us(counters),
                "state_sha256": digest,
                "updaters_fired": counters.get("updaters_fired", 0.0),
                "write_plan_fires": counters.get("write_plan_fires", 0.0),
                "write_batched_installs": counters.get(
                    "write_batched_installs", 0.0
                ),
                "write_whole_table_fastpath_hits": counters.get(
                    "write_whole_table_fastpath_hits", 0.0
                ),
                "hint_hits": counters.get("hint_hits", 0.0),
            }
        )
    return {
        "workload": {
            "fan_out": fan_out,
            "rounds": rounds,
            "batch_size": batch_size,
            "pre_posts": pre_posts,
            "total_posts": total_posts,
            "repeats": repeats,
            "seed": seed,
        },
        "points": points,
        "state_identical": state_identical,
        "speedup_plans": points[1]["speedup"] if len(points) > 1 else 0.0,
        "speedup_full": points[-1]["speedup"] if points else 0.0,
        "whole_table_fastpath_hits": (
            points[-1]["write_whole_table_fastpath_hits"] if points else 0.0
        ),
    }


# ======================================================================
# Concurrency: pipelined async client vs one-outstanding-request sync
# ======================================================================
def run_concurrency(
    total_ops: int = 2000,
    depths: Sequence[int] = (1, 4, 8, 32),
    n_keys: int = 256,
    value_size: int = 32,
    repeats: int = 3,
) -> Dict[str, object]:
    """Throughput vs. number of outstanding pipelined requests (§5.1).

    The paper's clients "are event-driven processes that keep many
    RPCs outstanding"; this experiment measures why.  A real RPC
    server runs on its own thread (its own event loop, genuine TCP).
    The *baseline* drives it the way a strictly synchronous client
    must — one blocking call at a time, one request outstanding —
    while the async client keeps windows of ``depth`` requests in
    flight on one pipelined connection (every frame written before any
    response is awaited, one drain per window).  Deeper windows
    amortize syscalls, thread wakeups, and framing across the batch
    the server reads at once.

    Returns per-depth throughput plus the speedup over the sync
    baseline, best-of-``repeats`` per configuration.  Correctness is
    asserted inside the run: after every configuration the store must
    hold exactly the workload's final state.
    """
    import asyncio

    from ..net.rpc_client import RpcClient, SyncRpcClient
    from ..net.rpc_server import ThreadedRpcService

    value = "v" * value_size
    calls: List[Tuple[str, List[object]]] = []
    for i in range(total_ops):
        key = f"p|u{i % n_keys:04d}|{(i // n_keys) % 4:04d}"
        if i % 8 == 0:
            calls.append(("put", [key, f"{value}{i % n_keys}"]))
        else:
            calls.append(("get", [key]))
    expected_keys = len({args[0] for method, args in calls if method == "put"})

    def check_state(count: int, label: str) -> None:
        assert count == expected_keys, (
            f"{label}: {count} keys stored, expected {expected_keys}"
        )

    def run_sync_baseline() -> float:
        service = ThreadedRpcService(PequodServer())
        try:
            client = SyncRpcClient("127.0.0.1", service.port)
            try:
                start = time.perf_counter()
                for method, args in calls:
                    client.call(method, *args)
                elapsed = time.perf_counter() - start
                check_state(client.count("p|", "p}"), "sync baseline")
                return elapsed
            finally:
                client.close()
        finally:
            service.stop()

    async def drive(port: int, depth: int) -> float:
        client = RpcClient("127.0.0.1", port)
        await client.connect()
        try:
            start = time.perf_counter()
            await client.call_windowed(calls, depth)
            elapsed = time.perf_counter() - start
            check_state(
                await client.call("count", "p|", "p}"), f"depth {depth}"
            )
            return elapsed
        finally:
            await client.close()

    def run_pipelined(depth: int) -> float:
        service = ThreadedRpcService(PequodServer())
        try:
            loop = asyncio.new_event_loop()
            try:
                return loop.run_until_complete(drive(service.port, depth))
            finally:
                loop.close()
        finally:
            service.stop()

    baseline_s = min(run_sync_baseline() for _ in range(repeats))
    baseline_rate = total_ops / max(baseline_s, 1e-9)
    points: List[Dict[str, float]] = []
    for depth in depths:
        best = min(run_pipelined(depth) for _ in range(repeats))
        rate = total_ops / max(best, 1e-9)
        points.append(
            {
                "depth": depth,
                "wall_s": best,
                "ops_per_sec": rate,
                "speedup": rate / baseline_rate,
            }
        )
    return {
        "workload": {
            "total_ops": total_ops,
            "n_keys": n_keys,
            "value_size": value_size,
            "repeats": repeats,
            "op_mix": "1:7 put:get",
        },
        "baseline": {"wall_s": baseline_s, "ops_per_sec": baseline_rate},
        "points": points,
        "max_speedup": max(p["speedup"] for p in points),
    }


# ======================================================================
# Overload: shed vs bounded-staleness degrade under a forced burst
# ======================================================================
def run_overload(
    n_users: int = 300,
    mean_follows: float = 10.0,
    ops: int = 6000,
    write_fraction: float = 0.2,
    follow_fraction: float = 0.1,
    max_staleness: float = 5.0,
    seed: int = 23,
    model: CostModel = DEFAULT_MODEL,
) -> Dict[str, object]:
    """Admission-control modes under a synthetic overload burst.

    The same post + timeline-read stream runs three times — no policy,
    ``shed``, and ``degrade`` with a ``max_staleness`` bound — with the
    admission controller force-overloaded in pulses across the middle
    half of the stream (overload arrives in waves, not one long
    plateau).  Shedding turns pulsed operations into immediate
    ``OverloadError``s (the client sees fast failure instead of an
    unbounded queue); degrade keeps serving reads from status ranges
    younger than the bound, skipping revalidation, while still
    shedding writes.  Writes that land *between* pulses invalidate
    timelines, so the next pulse has genuinely stale ranges to serve —
    the regime the policy exists for.  The run reports what each mode
    did with the burst (served / shed / served-stale) and the
    throughput effect, and asserts the degrade mode's observed
    staleness never exceeded the configured bound — the same invariant
    the chaos tests enforce.
    """
    import random as _random

    from ..core.load import OverloadError, OverloadPolicy

    graph = generate_graph(n_users, mean_follows, seed=seed)
    rng = _random.Random(seed + 1)
    weights = [graph.post_weight(u) for u in graph.users]
    # Posts are eager (the copy source fans out immediately); follow
    # churn hits the lazy check source, leaving pending-log entries the
    # next read must resolve — the staleness degrade mode trades on.
    stream: List[Tuple[str, str]] = []
    for _ in range(ops):
        r = rng.random()
        if r < write_fraction:
            stream.append(("post", rng.choices(graph.users, weights)[0]))
        elif r < write_fraction + follow_fraction:
            a, b = rng.sample(graph.users, 2)
            stream.append(("follow", f"s|{a}|{b}"))
        else:
            stream.append(("read", rng.choice(graph.users)))
    burst_lo, burst_hi = ops // 4, (3 * ops) // 4
    pulse = max(8, ops // 24)

    def in_burst(tick: int) -> bool:
        if not burst_lo <= tick < burst_hi:
            return False
        return ((tick - burst_lo) // pulse) % 2 == 0

    def build_server(policy: Optional[OverloadPolicy]) -> PequodServer:
        server = PequodServer(
            subtable_config={"t": 2, "p": 2, "s": 2},
            overload_policy=policy,
        )
        server.add_join(TIMELINE_JOIN)
        for follower, followee in graph.edges:
            server.put(f"s|{follower}|{followee}", "1")
        for user in graph.users:
            server.scan(f"t|{user}|", prefix_upper_bound(f"t|{user}|"))
        server.stats.reset()
        return server

    modes: List[Tuple[str, Optional[OverloadPolicy]]] = [
        ("baseline", None),
        ("shed", OverloadPolicy(mode="shed")),
        ("degrade", OverloadPolicy(mode="degrade", max_staleness=max_staleness)),
    ]
    points: List[Dict[str, float]] = []
    baseline_rate: Optional[float] = None
    staleness_bounded = True
    for mode, policy in modes:
        server = build_server(policy)
        served = shed = 0

        def drive() -> None:
            nonlocal served, shed
            forced = False
            for tick, (op, user) in enumerate(stream):
                if server.load is not None:
                    want = in_burst(tick)
                    if want != forced:
                        server.load.force("bench burst" if want else None)
                        forced = want
                try:
                    if op == "post":
                        server.put(f"p|{user}|{format_time(tick)}", f"t{tick}")
                    elif op == "follow":
                        server.put(user, "1")
                    else:
                        server.scan(
                            f"t|{user}|", prefix_upper_bound(f"t|{user}|")
                        )
                    served += 1
                except OverloadError:
                    shed += 1

        cpu_start = time.process_time()
        drive()
        cpu = time.process_time() - cpu_start
        counters = server.stats.snapshot()
        stale_age = max(
            (tm.stale_age_max for tm in server.engine.table_metrics.values()),
            default=0.0,
        )
        if mode == "degrade" and stale_age > max_staleness:
            staleness_bounded = False
        rate = ops / max(cpu, 1e-9)
        if baseline_rate is None:
            baseline_rate = rate
        points.append(
            {
                "mode": mode,
                "cpu_s": cpu,
                "ops_per_sec": rate,
                "speedup": rate / baseline_rate,
                "served": float(served),
                "shed": float(shed),
                "degraded_reads": counters.get("overload_degraded_reads", 0.0),
                "stale_reads_served": counters.get("stale_reads_served", 0.0),
                "shed_writes": counters.get("overload_shed_writes", 0.0),
                "stale_age_max_s": stale_age,
                "modeled_us": model.runtime_us(counters),
            }
        )
    return {
        "workload": {
            "n_users": n_users,
            "mean_follows": mean_follows,
            "ops": ops,
            "write_fraction": write_fraction,
            "follow_fraction": follow_fraction,
            "max_staleness": max_staleness,
            "seed": seed,
            "burst": [burst_lo, burst_hi],
        },
        "points": points,
        "staleness_bounded": staleness_bounded,
    }


# ======================================================================
# Persistence: recovery throughput, spilled-read cost, bloom skip rate
# ======================================================================
def run_persistence(
    n_keys: int = 100_000,
    value_size: int = 64,
    waves: int = 6,
    read_ops: int = 4000,
    seed: int = 7,
) -> Dict[str, object]:
    """The durability tier's three costs, as machine-stable ratios.

    1. **Recovery** — ingest ``n_keys`` writes through a durable server
       (WAL, ``fsync="batch"``), close it cleanly, and reopen: recovery
       replay throughput relative to live ingest throughput (replay
       skips join maintenance and journaling, so it should not be
       slower than ingest was).  The recovered state must be
       byte-identical to the pre-shutdown state.
    2. **Spilled reads** — random gets against the recovered server
       with everything resident, then again after ``spill_all`` moved
       every value to segment files: the disk/RAM throughput ratio is
       the price of exceeding RAM.
    3. **Bloom skip rate** — ``waves`` spill segments, each holding an
       interleaved 1/waves slice of the key space, so every segment's
       key *range* overlaps every probe and only the bloom filters can
       rule segments out.  Point reads of every key count how many
       negative segment probes the blooms answered without touching
       the file.

    Each point's ``speedup`` is a ratio of two rates measured on the
    same machine in the same process, so ``scripts/bench_compare.py``
    can trend them across commits without normalizing for hardware.
    """
    import hashlib
    import os
    import random
    import tempfile

    from ..persist.manager import SegmentStack
    from ..store.stats import StoreStats

    value = "x" * value_size
    keys = [f"p|u{i % 997:04d}|{i:08d}" for i in range(n_keys)]
    rng = random.Random(seed)

    def state_digest(server: PequodServer) -> str:
        digest = hashlib.sha256()
        for key, val in server.scan("p|", "p}"):
            digest.update(key.encode())
            digest.update(b"=")
            digest.update(val.encode())
            digest.update(b"\n")
        return digest.hexdigest()

    with tempfile.TemporaryDirectory(prefix="pequod-bench-") as tmp:
        data_dir = os.path.join(tmp, "data")

        # --- 1. ingest, shut down cleanly, recover -------------------
        server = PequodServer(data_dir=data_dir, wal_fsync="batch")
        start = time.perf_counter()
        for lo in range(0, n_keys, 1000):
            server.put_many(
                [(key, f"{value}{i}") for i, key in
                 enumerate(keys[lo:lo + 1000], lo)]
            )
        ingest_s = time.perf_counter() - start
        digest_before = state_digest(server)
        server.close()

        start = time.perf_counter()
        recovered = PequodServer(data_dir=data_dir, store_impl="disk")
        recovery_s = time.perf_counter() - start
        state_identical = state_digest(recovered) == digest_before
        recovery_ms = recovered.stats.get("persist_recovery_ms")

        # --- 2. resident vs spilled random gets ----------------------
        probe_keys = [keys[rng.randrange(n_keys)] for _ in range(read_ops)]
        start = time.perf_counter()
        for key in probe_keys:
            recovered.get(key)
        ram_s = time.perf_counter() - start

        spill_freed = recovered.store.spill_all()
        start = time.perf_counter()
        for key in probe_keys:
            recovered.get(key)
        disk_s = time.perf_counter() - start
        recovered.close()

        # --- 3. bloom filters on interleaved spill waves -------------
        bloom_stats = StoreStats()
        stack = SegmentStack(os.path.join(tmp, "waves"), stats=bloom_stats)
        for wave in range(waves):
            stack.push(
                [(key, value) for i, key in enumerate(keys) if i % waves == wave]
            )
        for i in range(0, n_keys, max(1, n_keys // 20_000)):
            stack.read(keys[i])
        stack.close()
        probes = bloom_stats.get("persist_segment_probes")
        negatives = bloom_stats.get("persist_bloom_negatives")
        false_pos = bloom_stats.get("persist_bloom_false_positives")
        negative_probes = negatives + false_pos
        bloom_skip = negatives / max(negative_probes, 1.0)

    ingest_rate = n_keys / max(ingest_s, 1e-9)
    recovery_rate = n_keys / max(recovery_s, 1e-9)
    ram_rate = read_ops / max(ram_s, 1e-9)
    disk_rate = read_ops / max(disk_s, 1e-9)
    points = [
        {
            "config": "ram_reads",
            "wall_s": ram_s,
            "ops_per_sec": ram_rate,
            "speedup": 1.0,
        },
        {
            "config": "disk_reads",
            "wall_s": disk_s,
            "ops_per_sec": disk_rate,
            "speedup": disk_rate / ram_rate,
        },
        {
            "config": "recovery",
            "wall_s": recovery_s,
            "ops_per_sec": recovery_rate,
            "speedup": recovery_rate / ingest_rate,
        },
        {
            "config": "bloom_skip",
            "speedup": bloom_skip,
        },
    ]
    return {
        "workload": {
            "n_keys": n_keys,
            "value_size": value_size,
            "waves": waves,
            "read_ops": read_ops,
            "seed": seed,
        },
        "ingest": {"wall_s": ingest_s, "ops_per_sec": ingest_rate},
        "recovery": {
            "wall_s": recovery_s,
            "ops_per_sec": recovery_rate,
            "recovery_ms": recovery_ms,
        },
        "spill": {"freed_bytes": spill_freed},
        "bloom": {
            "probes": probes,
            "negatives": negatives,
            "false_positives": false_pos,
            "skip_ratio": bloom_skip,
        },
        "points": points,
        "state_identical": state_identical,
    }


# ======================================================================
# Cluster scale-out: real processes, real TCP, partitioned ownership
# ======================================================================
def _percentiles_us(samples: List[float]) -> Dict[str, float]:
    if not samples:
        return {"p50_us": 0.0, "p95_us": 0.0, "p99_us": 0.0}
    ordered = sorted(samples)

    def at(q: float) -> float:
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return round(ordered[index], 1)

    return {"p50_us": at(0.50), "p95_us": at(0.95), "p99_us": at(0.99)}


def run_cluster_scaleout(
    proc_counts: Sequence[int] = (1, 2, 4, 8),
    total_ops: int = 4000,
    depth: int = 32,
    drivers: int = 2,
    n_keys: int = 256,
    value_size: int = 32,
    replication: int = 1,
    in_process: bool = False,
) -> Dict[str, object]:
    """Aggregate throughput and latency of the multi-process cluster
    as nodes are added (the scale-out claim behind Figure 10, run on
    real processes instead of the simulator).

    For each process count a fresh :class:`ProcCluster` is started
    with the base table range-partitioned evenly across the nodes,
    and ``drivers`` separate load-driver *processes* (see
    :mod:`repro.bench.cluster_driver`) split ``total_ops`` between
    them — so neither the nodes nor the drivers ever share a GIL.
    Each point reports aggregate ops/s, per-op p50/p95/p99, and the
    speedup over the single-process point.

    Honesty contract: ``cpu_cores`` is recorded in the result, and
    scaling beyond the core count is *not* expected — on a 1-core
    machine every extra process multiplies coordination cost while
    adding no compute, so the committed artifact documents whatever
    the hardware actually did.
    """
    import json as _json
    import os
    import subprocess
    import sys

    from ..distrib.procs import ProcCluster

    user_width = 4

    def splits_for(count: int) -> List[str]:
        return [
            f"u{int(i * n_keys / count):0{user_width}d}"
            for i in range(1, count)
        ]

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    ops_per_driver = max(1, total_ops // drivers)
    points: List[Dict[str, object]] = []
    baseline_rate: Optional[float] = None
    for count in proc_counts:
        with ProcCluster(
            count,
            tables=("p",),
            splits=splits_for(count),
            replication=min(replication, count),
            in_process=in_process,
        ) as cluster:
            endpoints = ",".join(
                f"{host}:{port}" for host, port in cluster.client_addresses()
            )
            procs = [
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro.bench.cluster_driver",
                        "--endpoints", endpoints,
                        "--ops", str(ops_per_driver),
                        "--depth", str(depth),
                        "--n-keys", str(n_keys),
                        "--value-size", str(value_size),
                        "--seed", str(seed),
                    ],
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    text=True,
                    env=env,
                )
                for seed in range(drivers)
            ]
            results = []
            for proc in procs:
                out, err = proc.communicate(timeout=600)
                if proc.returncode != 0:
                    raise RuntimeError(
                        f"cluster driver failed ({proc.returncode}): {err}"
                    )
                results.append(_json.loads(out))
            # Sanity: the partitioned writes actually landed.
            total = cluster.info()
            stored = sum(node["keys"] for node in total.values())
            assert stored >= n_keys, (
                f"{stored} keys stored across {count} nodes"
            )
        ops_done = sum(r["ops"] for r in results)
        wall = max(r["wall_s"] for r in results)
        rate = ops_done / max(wall, 1e-9)
        if baseline_rate is None:
            baseline_rate = rate
        merged = [l for r in results for l in r["latencies_us"]]
        point: Dict[str, object] = {
            "config": f"procs={count}",
            "processes": count,
            "ops": ops_done,
            "wall_s": round(wall, 4),
            "ops_per_sec": round(rate, 1),
            "speedup": round(rate / baseline_rate, 3),
        }
        point.update(_percentiles_us(merged))
        points.append(point)
    return {
        "workload": {
            "total_ops": total_ops,
            "depth": depth,
            "drivers": drivers,
            "n_keys": n_keys,
            "value_size": value_size,
            "replication": replication,
            "in_process": in_process,
            "op_mix": "1:1 put:scan_prefix",
        },
        "cpu_cores": os.cpu_count(),
        "points": points,
        "max_speedup": max(p["speedup"] for p in points),
    }


# ======================================================================
# CDC write-around: ingest rate and propagation lag
# ======================================================================
def run_cdc(
    n_users: int = 60,
    mean_follows: float = 6.0,
    total_ops: int = 2000,
    settle_every: int = 100,
    burst_posts: int = 1000,
    seed: int = 42,
) -> Dict[str, object]:
    """Write-around vs write-through on the §2 Twip workload.

    Two deployments of the same local server run the identical
    deterministic workload:

    * **write-through** (baseline) — every put runs incremental join
      maintenance synchronously before returning;
    * **write-around** — puts land in the backing database, whose
      change feed drives maintenance asynchronously (:mod:`repro.cdc`);
      ``settle_cdc`` is the convergence barrier before reads that need
      a fresh view.

    Each mode first drives the mixed Twip stream (with a barrier every
    ``settle_every`` ticks), materializing the timelines, then absorbs
    a pure-write **ingest burst** against the warm cache with no
    barrier until the end — the measured ingest ops/s is where
    write-around earns its keep: fan-out to materialized timelines is
    deferred off the write path and applied in coalesced batches.  The
    write-around run also reports propagation-lag percentiles (write
    commit → cache apply) from the pump's histogram.  Both modes must
    converge to byte-identical output state after the final barrier.
    """
    import hashlib
    import random as _random

    graph = generate_graph(n_users, mean_follows, seed=seed)
    ops = TwipWorkload(graph, total_ops, seed=seed).generate()
    rng = _random.Random(seed + 7)
    burst = [
        (f"p|{rng.choice(graph.users)}|9{i:07d}", f"burst {i}")
        for i in range(burst_posts)
    ]

    points: List[Dict[str, object]] = []
    states: Dict[str, List[Tuple[str, str]]] = {}
    baseline_rate: Optional[float] = None
    for mode in ("write-through", "write-around"):
        with make_client(
            "local",
            subtable_config={"t": 2, "p": 2, "s": 2},
            mode=mode,
        ) as client:
            client.add_join(TIMELINE_JOIN)
            graph.load_into(client)
            client.settle_cdc()
            # Mixed workload with a bounded-staleness barrier cadence;
            # this also materializes the users' timelines.
            drive_twip_ops(
                ops,
                put=client.put,
                scan_timeline=lambda user, since: client.scan(
                    f"t|{user}|{since}", prefix_upper_bound(f"t|{user}|")
                ),
                settle=client.settle_cdc,
                settle_every=settle_every,
            )
            # Ingest burst against the warm cache: pure writes, barrier
            # only at the end.
            start = time.perf_counter()
            for key, value in burst:
                client.put(key, value)
            ingest_wall = time.perf_counter() - start
            client.settle_cdc()
            state: List[Tuple[str, str]] = []
            for user in graph.users:
                state.extend(client.scan_prefix(f"t|{user}|"))
            state.extend(client.scan_prefix("p|"))
            state.extend(client.scan_prefix("s|"))
            states[mode] = state
            server = client._async.server  # noqa: SLF001 - harness introspection
            cdc = server.cdc
        rate = len(burst) / max(ingest_wall, 1e-9)
        if baseline_rate is None:
            baseline_rate = rate
        point: Dict[str, object] = {
            "mode": mode,
            "ingest_posts": len(burst),
            "ingest_wall_s": round(ingest_wall, 4),
            "ops_per_sec": round(rate, 1),
            "speedup": round(rate / baseline_rate, 3),
            "state_sha256": hashlib.sha256(
                repr(state).encode()
            ).hexdigest(),
            "lag_p50_ms": None,
            "lag_p95_ms": None,
            "lag_p99_ms": None,
        }
        if cdc is not None:
            point["lag_p50_ms"] = round(cdc.lag.percentile(50) * 1000, 4)
            point["lag_p95_ms"] = round(cdc.lag.percentile(95) * 1000, 4)
            point["lag_p99_ms"] = round(cdc.lag.percentile(99) * 1000, 4)
            point["records_applied"] = cdc.records_applied
            point["feed_high_water"] = cdc.feed.high_water
        points.append(point)
    return {
        "workload": {
            "n_users": n_users,
            "mean_follows": mean_follows,
            "total_ops": total_ops,
            "settle_every": settle_every,
            "burst_posts": burst_posts,
            "seed": seed,
        },
        "points": points,
        "state_identical": states["write-around"] == states["write-through"],
    }
