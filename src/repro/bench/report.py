"""Paper-style tables and series for benchmark output.

Each benchmark regenerates one table or figure from the paper's §5.
Tables render like Figure 7 (system, runtime, normalized factor);
figures render as aligned x/y series, one row per x, one column per
line — enough to read off who wins and where curves cross.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Monospace table with right-aligned numeric columns."""
    rendered = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            "  ".join(
                row[i].rjust(widths[i]) if _numericish(row[i]) else row[i].ljust(widths[i])
                for i in range(len(row))
            )
        )
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def _numericish(text: str) -> bool:
    return bool(text) and (text[0].isdigit() or text[0] in "+-." or text.endswith("x"))


def normalized(value: float, baseline: float) -> str:
    """The paper's '(1.33x)' notation."""
    if baseline == 0:
        return "(--)"
    return f"({value / baseline:.2f}x)"


def format_series(
    x_label: str,
    xs: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    y_format: str = "{:.2f}",
) -> str:
    """A figure as aligned columns: x, then one column per line."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        row: List[object] = [x]
        for name in series:
            row.append(y_format.format(series[name][i]))
        rows.append(row)
    return format_table(headers, rows, title=title)


def write_batching_table(points: Sequence[Mapping[str, float]]) -> str:
    """The write-batching sweep as a table (shared by CLI and bench)."""
    rows = [
        (
            int(point["batch_size"]),
            f"{point['ops_per_sec']:,.0f}",
            f"{point['speedup']:.2f}x",
            int(point["coalesced_ops"]),
        )
        for point in points
    ]
    return format_table(
        ["batch size", "ops/sec", "speedup", "coalesced"],
        rows,
        title="Write batching — high-write Twip (batch=1 is per-key)",
    )


def crossover_point(
    xs: Sequence[float], a: Sequence[float], b: Sequence[float]
) -> Optional[float]:
    """First x where series ``a`` stops beating series ``b`` (a <= b
    before, a > b after); None if they never cross."""
    for i in range(1, len(xs)):
        if a[i - 1] <= b[i - 1] and a[i] > b[i]:
            return xs[i]
    return None
