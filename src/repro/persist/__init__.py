"""Durable persistence: WAL, sorted segment files, and crash recovery.

Everything above this package treats the store as RAM-resident; this
package adds the disk tier behind it:

* :mod:`~repro.persist.wal` — a write-ahead log journaling
  ``WriteBatch``es (length-prefixed, CRC-checked, KeyList
  prefix-compressed) with a configurable fsync policy;
* :mod:`~repro.persist.segment` — immutable sorted segment files with
  per-segment sparse key indexes and bloom filters;
* :mod:`~repro.persist.bloom` — the bloom filter those segments embed;
* :mod:`~repro.persist.manager` — the ties: ``SegmentStack`` (an
  ordered, compacting stack of segments behind a manifest) and
  ``PersistenceManager`` (WAL + checkpoint segments + crash recovery,
  owned by :class:`~repro.core.server.PequodServer` when it is given a
  ``data_dir``).

The value-spill side (cold values moving to segments so datasets exceed
RAM) lives in :mod:`repro.store.diskmap`, which builds on the same
segment format.
"""

from .bloom import BloomFilter
from .manager import PersistenceManager, SegmentStack
from .segment import SegmentReader, write_segment
from .wal import FSYNC_MODES, WriteAheadLog, frame_payload, scan_frames, scan_wal

__all__ = [
    "BloomFilter",
    "PersistenceManager",
    "SegmentStack",
    "SegmentReader",
    "write_segment",
    "FSYNC_MODES",
    "WriteAheadLog",
    "frame_payload",
    "scan_frames",
    "scan_wal",
]
