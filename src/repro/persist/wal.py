"""The write-ahead log: batch journaling with torn-tail recovery.

Every client write (``put``, ``remove``, ``apply_batch``) is journaled
here *before* it touches the store, as one record per committed batch::

    <u32 payload_len> <u32 payload_crc32> <payload>

where the payload is the wire codec's encoding of ``[keys, values]`` —
``keys`` a :class:`~repro.net.codec.KeyList` (batches arrive key-sorted,
so the shared-prefix compression that earns its keep on the wire earns
it again on disk) and ``values`` a parallel list with ``None`` marking
removes.

Replay applies records in order and is idempotent (records are plain
puts/removes), so recovery after a crash mid-apply is safe.  A torn
tail — a record the process died inside of writing, or that never fully
reached disk — fails the length or CRC check; :func:`scan_wal` reports
the last good offset so recovery can truncate the tail rather than
refuse to start.

Durability is the fsync policy:

* ``always`` — fsync after every record: every acknowledged batch
  survives power loss.
* ``batch`` — fsync when :data:`SYNC_INTERVAL_BYTES` of records have
  accumulated, and on :meth:`~WriteAheadLog.flush`/close: bounded loss.
* ``off`` — never fsync (the OS flushes eventually): fastest, and the
  contract after a hard crash is only what the checkpoint segments hold.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import List, Optional, Tuple

from ..net.codec import CodecError, KeyList, decode, encode

FSYNC_ALWAYS = "always"
FSYNC_BATCH = "batch"
FSYNC_OFF = "off"
FSYNC_MODES = (FSYNC_ALWAYS, FSYNC_BATCH, FSYNC_OFF)

#: ``batch`` mode fsyncs when this many unsynced bytes accumulate.
SYNC_INTERVAL_BYTES = 64 * 1024

_HEADER = struct.Struct(">II")  # payload length, payload crc32
#: Frame header size in bytes, exported for fault injectors that need
#: to compute record boundaries (``repro.chaos.torn_wal_tail``).
WAL_HEADER_SIZE = _HEADER.size

#: One WAL record: parallel (keys, values); a None value is a remove.
WalRecord = Tuple[List[str], List[Optional[str]]]


def frame_payload(payload: bytes) -> bytes:
    """Frame one payload in the journal record format: length + crc32
    header followed by the payload bytes.  Shared by the WAL and the
    CDC change-feed journal (:mod:`repro.cdc.feed`)."""
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def scan_frames(path: str) -> Tuple[List[bytes], int, bool]:
    """Tolerantly parse a framed journal into raw payloads.

    Returns ``(payloads, good_offset, torn)``: every intact payload in
    order, the byte offset just past the last intact frame, and whether
    a torn/corrupt tail was found after it.  A missing file is an empty
    journal.  This is the framing layer only; callers decode payloads
    themselves (and may treat an undecodable payload as a torn tail).
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        return [], 0, False
    payloads: List[bytes] = []
    offset = 0
    size = len(data)
    while offset + _HEADER.size <= size:
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > size:
            return payloads, offset, True  # torn: record body cut short
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return payloads, offset, True
        payloads.append(payload)
        offset = end
    return payloads, offset, offset < size


def scan_wal(path: str) -> Tuple[List[WalRecord], int, bool]:
    """Parse a WAL file tolerantly.

    Returns ``(records, good_offset, torn)``: every intact record in
    order, the byte offset just past the last intact record, and
    whether a torn/corrupt tail was found after it.  A missing file is
    an empty log.
    """
    payloads, good_offset, torn = scan_frames(path)
    records: List[WalRecord] = []
    offset = 0
    for payload in payloads:
        try:
            keys, values = decode(payload)
        except (CodecError, ValueError):
            return records, offset, True
        records.append((keys, values))
        offset += _HEADER.size + len(payload)
    return records, good_offset, torn


class WriteAheadLog:
    """An append-only batch journal with a configurable fsync policy."""

    def __init__(
        self,
        path: str,
        fsync: str = FSYNC_BATCH,
        sync_interval_bytes: int = SYNC_INTERVAL_BYTES,
        stats=None,
    ) -> None:
        if fsync not in FSYNC_MODES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; expected one of {FSYNC_MODES}"
            )
        self.path = path
        self.fsync = fsync
        self.sync_interval_bytes = sync_interval_bytes
        self.stats = stats
        self._fh = open(path, "ab")
        #: Bytes in the file.  Pre-existing contents were either synced
        #: by the previous run or survived into this one regardless; in
        #: both cases they are on disk now, so they count as synced.
        self.size = os.fstat(self._fh.fileno()).st_size
        self.synced_size = self.size
        self.records = 0

    # ------------------------------------------------------------------
    def append(
        self, keys: List[str], values: List[Optional[str]]
    ) -> None:
        """Journal one batch: parallel keys and values (None = remove)."""
        payload = encode([KeyList(keys), list(values)])
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        self._fh.write(frame)
        self.size += len(frame)
        self.records += 1
        if self.stats is not None:
            self.stats.add("persist_wal_records")
            self.stats.add("persist_wal_appended_bytes", len(frame))
        if self.fsync == FSYNC_ALWAYS:
            self._sync()
        elif (
            self.fsync == FSYNC_BATCH
            and self.size - self.synced_size >= self.sync_interval_bytes
        ):
            self._sync()

    def append_ops(self, ops) -> None:
        """Journal a sequence of :class:`~repro.store.batch.BatchOp`."""
        keys = [op.key for op in ops]
        values = [op.value if op.kind == "put" else None for op in ops]
        if keys:
            self.append(keys, values)

    def _sync(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.synced_size = self.size
        if self.stats is not None:
            self.stats.add("persist_wal_syncs")

    def flush(self) -> None:
        """Force everything written so far to durable storage."""
        if self._fh.closed:
            return
        self._fh.flush()
        if self.fsync != FSYNC_OFF:
            os.fsync(self._fh.fileno())
            self.synced_size = self.size

    def reset(self) -> None:
        """Empty the log (after its contents were checkpointed)."""
        self._fh.truncate(0)
        self._fh.seek(0)
        self._fh.flush()
        if self.fsync != FSYNC_OFF:
            os.fsync(self._fh.fileno())
        self.size = 0
        self.synced_size = 0
        self.records = 0

    def close(self) -> None:
        if self._fh.closed:
            return
        self.flush()
        self._fh.close()

    # ------------------------------------------------------------------
    # Crash simulation (chaos hooks)
    # ------------------------------------------------------------------
    def simulate_crash(self) -> int:
        """Model ``kill -9`` plus power loss: drop everything after the
        last fsync (pessimistically, unsynced bytes never reached the
        platter).  Returns how many bytes were lost.  The log is closed
        and unusable afterwards — recovery means reopening the data dir.
        """
        lost = self.size - self.synced_size
        self._fh.close()
        with open(self.path, "r+b") as fh:
            fh.truncate(self.synced_size)
        return lost

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WriteAheadLog {os.path.basename(self.path)} "
            f"bytes={self.size} synced={self.synced_size} fsync={self.fsync}>"
        )
