"""Immutable sorted segment files: the on-disk ordered tier.

A segment holds a sorted run of ``(key, value-or-tombstone)`` records,
written once and never modified (compaction writes replacements).  The
layout borrows the classic SSTable shape:

* **records region** — key-ordered records with shared-prefix key
  compression (the same ``<varint shared> <varint len> <suffix>``
  scheme as the wire codec's ``KeyList``), resetting at *restart
  points* every :data:`RESTART_EVERY` records so a reader can start
  parsing mid-file;
* **footer** — a codec-encoded block carrying the record count, the
  restart keys (a sparse key index, one entry per restart), their
  absolute file offsets, the records region's CRC, and a serialized
  :class:`~repro.persist.bloom.BloomFilter` over every key;
* **trailer** — the footer's offset and CRC32, fixed-width, so a
  reader finds the footer from the end of the file and detects
  truncation before trusting anything.

Point reads cost one bloom check (memory), one bisect of the restart
keys (memory), then a bounded parse of at most one restart run from
disk.  Negative reads usually stop at the bloom.

Record grammar::

    <varint shared> <varint suffix_len> <suffix bytes>
    <tag: 0x00 tombstone | 0x01 value> [<varint value_len> <value bytes>]
"""

from __future__ import annotations

import os
import struct
import zlib
from bisect import bisect_right
from typing import Iterator, List, Optional, Sequence, Tuple

from ..net.codec import (
    CodecError,
    KeyList,
    decode,
    encode,
    encode_varint,
    decode_varint,
)
from .bloom import BloomFilter

MAGIC = b"PQSG1\n"
#: Prefix compression resets (and the sparse index gains an entry)
#: every this many records.
RESTART_EVERY = 32

_TRAILER = struct.Struct(">II")  # footer offset, footer crc32


class CorruptSegment(ValueError):
    """Raised when a segment file fails structural validation."""


def write_segment(
    path: str,
    pairs: Sequence[Tuple[str, Optional[str]]],
    fp_rate: float = 0.01,
) -> int:
    """Write ``pairs`` (sorted by key; None value = tombstone) to ``path``.

    Writes to a temp file and renames into place so a crash mid-write
    never leaves a half-segment under the final name.  Returns the
    record count.
    """
    restart_keys: List[str] = []
    restart_offsets: List[int] = []
    tmp = path + ".tmp"
    count = 0
    bloom = BloomFilter.for_items(len(pairs), fp_rate)
    with open(tmp, "wb") as fh:
        fh.write(MAGIC)
        offset = len(MAGIC)
        prev = b""
        buf = bytearray()
        for key, value in pairs:
            raw = key.encode("utf-8")
            if count % RESTART_EVERY == 0:
                restart_keys.append(key)
                restart_offsets.append(offset + len(buf))
                prev = b""
            shared = 0
            limit = min(len(prev), len(raw))
            while shared < limit and prev[shared] == raw[shared]:
                shared += 1
            suffix = raw[shared:]
            buf.extend(encode_varint(shared))
            buf.extend(encode_varint(len(suffix)))
            buf.extend(suffix)
            if value is None:
                buf.append(0)
            else:
                vraw = value.encode("utf-8")
                buf.append(1)
                buf.extend(encode_varint(len(vraw)))
                buf.extend(vraw)
            prev = raw
            bloom.add(raw)
            count += 1
            if len(buf) >= 1 << 20:
                fh.write(buf)
                offset += len(buf)
                buf = bytearray()
        fh.write(buf)
        offset += len(buf)
        footer = encode(
            [
                count,
                KeyList(restart_keys),
                restart_offsets,
                bloom.to_bytes(),
            ]
        )
        footer_offset = offset
        fh.write(footer)
        fh.write(_TRAILER.pack(footer_offset, zlib.crc32(footer)))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return count


class SegmentReader:
    """Read-side handle for one segment file.

    Loads the footer (restart index + bloom) into memory at open; record
    reads seek into the file on demand, so resident cost is the sparse
    index, not the data.
    """

    __slots__ = (
        "path",
        "count",
        "restart_keys",
        "restart_offsets",
        "bloom",
        "_fh",
        "_records_end",
    )

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "rb")
        try:
            self._load_footer()
        except BaseException:
            self._fh.close()
            raise

    def _load_footer(self) -> None:
        fh = self._fh
        fh.seek(0, os.SEEK_END)
        size = fh.tell()
        if size < len(MAGIC) + _TRAILER.size:
            raise CorruptSegment(f"{self.path}: too short ({size} bytes)")
        fh.seek(0)
        if fh.read(len(MAGIC)) != MAGIC:
            raise CorruptSegment(f"{self.path}: bad magic")
        fh.seek(size - _TRAILER.size)
        footer_offset, footer_crc = _TRAILER.unpack(fh.read(_TRAILER.size))
        if not len(MAGIC) <= footer_offset <= size - _TRAILER.size:
            raise CorruptSegment(f"{self.path}: footer offset out of range")
        fh.seek(footer_offset)
        footer = fh.read(size - _TRAILER.size - footer_offset)
        if zlib.crc32(footer) != footer_crc:
            raise CorruptSegment(f"{self.path}: footer CRC mismatch")
        try:
            count, restart_keys, restart_offsets, bloom_raw = decode(footer)
        except (CodecError, ValueError) as exc:
            raise CorruptSegment(f"{self.path}: bad footer: {exc}") from exc
        self.count = count
        self.restart_keys = restart_keys
        self.restart_offsets = restart_offsets
        self.bloom = BloomFilter.from_bytes(bloom_raw)
        self._records_end = footer_offset

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.count

    def may_contain(self, key: str) -> bool:
        """Bloom check: False means definitely absent (no disk read)."""
        return key.encode("utf-8") in self.bloom

    def file_bytes(self) -> int:
        return os.path.getsize(self.path)

    def _run_bounds(self, idx: int) -> Tuple[int, int]:
        """Byte range [start, end) of restart run ``idx``."""
        start = self.restart_offsets[idx]
        if idx + 1 < len(self.restart_offsets):
            end = self.restart_offsets[idx + 1]
        else:
            end = self._records_end
        return start, end

    def _parse_run(self, raw: bytes, base: str = "") -> Iterator[Tuple[str, Optional[str]]]:
        """Decode one restart run (prefix compression restarts at 0)."""
        offset = 0
        prev = b""
        n = len(raw)
        while offset < n:
            try:
                shared, offset = decode_varint(raw, offset)
                slen, offset = decode_varint(raw, offset)
                if shared > len(prev) or offset + slen > n:
                    raise CorruptSegment(f"{self.path}: bad record")
                kraw = prev[:shared] + raw[offset : offset + slen]
                offset += slen
                if offset >= n:
                    raise CorruptSegment(f"{self.path}: truncated record")
                tag = raw[offset]
                offset += 1
                if tag == 1:
                    vlen, offset = decode_varint(raw, offset)
                    if offset + vlen > n:
                        raise CorruptSegment(f"{self.path}: truncated value")
                    value: Optional[str] = raw[offset : offset + vlen].decode("utf-8")
                    offset += vlen
                elif tag == 0:
                    value = None
                else:
                    raise CorruptSegment(f"{self.path}: bad record tag {tag:#x}")
            except CodecError as exc:
                raise CorruptSegment(f"{self.path}: {exc}") from exc
            prev = kraw
            yield kraw.decode("utf-8"), value

    def get(self, key: str) -> Tuple[bool, Optional[str]]:
        """Look ``key`` up: ``(present, value_or_None_for_tombstone)``.

        Callers consult :meth:`may_contain` first; this method always
        reads the candidate restart run.
        """
        if not self.restart_keys or key < self.restart_keys[0]:
            return False, None
        idx = bisect_right(self.restart_keys, key) - 1
        start, end = self._run_bounds(idx)
        self._fh.seek(start)
        raw = self._fh.read(end - start)
        for found, value in self._parse_run(raw):
            if found == key:
                return True, value
            if found > key:
                break
        return False, None

    def scan(
        self, lo: Optional[str] = None, hi: Optional[str] = None
    ) -> Iterator[Tuple[str, Optional[str]]]:
        """Records with ``lo <= key < hi`` in key order (None = open)."""
        if not self.restart_keys:
            return
        if lo is None:
            idx = 0
        else:
            idx = max(0, bisect_right(self.restart_keys, lo) - 1)
        fh = self._fh
        for run in range(idx, len(self.restart_offsets)):
            if hi is not None and self.restart_keys[run] >= hi:
                return
            start, end = self._run_bounds(run)
            fh.seek(start)
            raw = fh.read(end - start)
            for key, value in self._parse_run(raw):
                if lo is not None and key < lo:
                    continue
                if hi is not None and key >= hi:
                    return
                yield key, value

    def close(self) -> None:
        self._fh.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SegmentReader {os.path.basename(self.path)} records={self.count}>"
