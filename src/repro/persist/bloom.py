"""A bloom filter for negative segment lookups.

Segment files are immutable and sorted, so a missing key costs a sparse
index bisect plus one block parse — cheap, but a disk seek.  Keys are
checked against many segments on the read path (newest first), and most
segments do not hold the key at all; the bloom filter answers "definitely
not here" from memory so negative probes skip the file entirely.

Hashing must be *stable across processes* (the filter is serialized
into the segment footer and consulted by later runs), so Python's
randomized ``hash()`` is out.  Each key is hashed once with blake2b and
the 128-bit digest split into two 64-bit halves; the ``k`` probe
positions come from double hashing (``h1 + i*h2``), the standard
Kirsch–Mitzenmacher construction.
"""

from __future__ import annotations

import math
from hashlib import blake2b


def _hash_pair(key: bytes) -> tuple:
    digest = blake2b(key, digest_size=16).digest()
    h1 = int.from_bytes(digest[:8], "big")
    h2 = int.from_bytes(digest[8:], "big") | 1  # odd: full period mod m
    return h1, h2


class BloomFilter:
    """A fixed-size bloom filter over byte strings.

    ``m`` is the bit count, ``k`` the probe count.  Use
    :meth:`for_items` to size one for an expected item count and false
    positive rate.
    """

    __slots__ = ("m", "k", "bits")

    def __init__(self, m: int, k: int, bits: bytearray = None) -> None:
        if m <= 0 or k <= 0:
            raise ValueError("bloom filter needs m > 0 and k > 0")
        self.m = m
        self.k = k
        nbytes = (m + 7) // 8
        if bits is None:
            bits = bytearray(nbytes)
        elif len(bits) != nbytes:
            raise ValueError(f"bit array holds {len(bits)} bytes, need {nbytes}")
        self.bits = bits

    @classmethod
    def for_items(cls, n: int, fp_rate: float = 0.01) -> "BloomFilter":
        """Size a filter for ``n`` items at roughly ``fp_rate``."""
        n = max(1, n)
        if not 0.0 < fp_rate < 1.0:
            raise ValueError("fp_rate must be in (0, 1)")
        m = max(8, int(math.ceil(-n * math.log(fp_rate) / (math.log(2) ** 2))))
        k = max(1, int(round(m / n * math.log(2))))
        return cls(m, k)

    def add(self, key: bytes) -> None:
        h1, h2 = _hash_pair(key)
        m = self.m
        bits = self.bits
        for i in range(self.k):
            pos = (h1 + i * h2) % m
            bits[pos >> 3] |= 1 << (pos & 7)

    def __contains__(self, key: bytes) -> bool:
        h1, h2 = _hash_pair(key)
        m = self.m
        bits = self.bits
        for i in range(self.k):
            pos = (h1 + i * h2) % m
            if not bits[pos >> 3] & (1 << (pos & 7)):
                return False
        return True

    # ------------------------------------------------------------------
    # Serialization (embedded in the segment footer)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        head = self.m.to_bytes(4, "big") + self.k.to_bytes(2, "big")
        return head + bytes(self.bits)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "BloomFilter":
        if len(raw) < 6:
            raise ValueError("truncated bloom filter")
        m = int.from_bytes(raw[:4], "big")
        k = int.from_bytes(raw[4:6], "big")
        return cls(m, k, bytearray(raw[6:]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BloomFilter m={self.m} k={self.k}>"
