"""Segment stacks and the persistence manager.

:class:`SegmentStack` is an ordered collection of immutable segment
files behind a ``MANIFEST``: new segments stack on top (newest wins on
read), and compaction merges the stack back down to one segment.  Both
disk tiers reuse it — the durability tier (checkpoint segments folded
out of the WAL) and the spill tier (cold values evicted from RAM by
:mod:`repro.store.diskmap`).

:class:`PersistenceManager` owns one data directory::

    <data_dir>/pequod.wal        the write-ahead log
    <data_dir>/segments/         checkpoint segments + MANIFEST
    <data_dir>/spill/            value-spill segments (disk store impl)

and implements the recovery contract: on startup, replay checkpoint
segments oldest-to-newest (tombstones delete), then the WAL tail,
truncating a torn tail at the last intact record.  Only *client* writes
are journaled — computed join outputs are never persisted, so recovered
state re-enters the validity machinery with no status ranges at all and
every computed range starts invalid until demand recomputation
revalidates it (the conservative reading of single-table invalidation:
never trust recovered derived data).
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..metrics import Histogram
from .segment import SegmentReader, write_segment
from .wal import FSYNC_BATCH, FSYNC_MODES, WriteAheadLog, scan_wal

MANIFEST = "MANIFEST"
WAL_NAME = "pequod.wal"

#: Fixed buckets (seconds) for flush / compaction duration histograms.
FLUSH_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0)


class SegmentStack:
    """An ordered stack of immutable segments behind a manifest.

    ``segments[0]`` is oldest; reads probe newest-first and stop at the
    first segment whose bloom admits the key and whose run contains it.
    The manifest is replaced atomically (temp file + rename), so a crash
    between writing a segment and publishing it leaves at worst an
    orphan ``.seg`` file, never a half-registered stack.
    """

    def __init__(
        self,
        directory: str,
        stats=None,
        compact_threshold: int = 8,
        label: str = "segments",
    ) -> None:
        self.directory = directory
        self.stats = stats
        self.compact_threshold = compact_threshold
        self.label = label
        self.segments: List[SegmentReader] = []
        self._next_id = 0
        self.compaction_seconds = Histogram(FLUSH_BUCKETS)
        os.makedirs(directory, exist_ok=True)
        self._load_manifest()

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def _manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST)

    def _load_manifest(self) -> None:
        try:
            with open(self._manifest_path()) as fh:
                names = [line.strip() for line in fh if line.strip()]
        except FileNotFoundError:
            return
        for name in names:
            path = os.path.join(self.directory, name)
            self.segments.append(SegmentReader(path))
            seq = int(name.split("-")[1].split(".")[0])
            self._next_id = max(self._next_id, seq + 1)

    def _write_manifest(self) -> None:
        tmp = self._manifest_path() + ".tmp"
        with open(tmp, "w") as fh:
            for seg in self.segments:
                fh.write(os.path.basename(seg.path) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._manifest_path())

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def push(self, pairs: List[Tuple[str, Optional[str]]]) -> Optional[SegmentReader]:
        """Write ``pairs`` (None value = tombstone) as the newest
        segment and publish it.  Empty input writes nothing."""
        if not pairs:
            return None
        # Segments must be key-sorted (restart-key bisect and prefix
        # compression both assume it); sorting sorted input is O(n).
        pairs = sorted(pairs, key=lambda pair: pair[0])
        name = f"seg-{self._next_id:08d}.seg"
        self._next_id += 1
        path = os.path.join(self.directory, name)
        write_segment(path, pairs)
        reader = SegmentReader(path)
        self.segments.append(reader)
        self._write_manifest()
        if self.stats is not None:
            self.stats.add("persist_segments_written")
            self.stats.add("persist_segment_bytes_written", reader.file_bytes())
        return reader

    def maybe_compact(
        self, live: Optional[Callable[[str], bool]] = None
    ) -> bool:
        if len(self.segments) > self.compact_threshold:
            self.compact(live)
            return True
        return False

    def compact(self, live: Optional[Callable[[str], bool]] = None) -> None:
        """Merge the stack down to one segment (newest version per key).

        Tombstones are dropped — a compacted stack has no older version
        left to mask.  ``live`` optionally filters keys (the spill tier
        passes "is this key still spilled?" so dead values are garbage
        collected); filtered keys are simply not carried forward.
        """
        if len(self.segments) <= 1 and live is None:
            return
        start = time.perf_counter()
        merged: Dict[str, Optional[str]] = {}
        for seg in self.segments:  # oldest first: newest naturally wins
            for key, value in seg.scan():
                merged[key] = value
        pairs = [
            (key, value)
            for key, value in sorted(merged.items())
            if value is not None and (live is None or live(key))
        ]
        old = self.segments
        name = f"seg-{self._next_id:08d}.seg"
        self._next_id += 1
        if pairs:
            path = os.path.join(self.directory, name)
            write_segment(path, pairs)
            self.segments = [SegmentReader(path)]
        else:
            self.segments = []
        self._write_manifest()
        for seg in old:
            seg.close()
            try:
                os.unlink(seg.path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        self.compaction_seconds.observe(time.perf_counter() - start)
        if self.stats is not None:
            self.stats.add("persist_compactions")

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read(self, key: str) -> Tuple[bool, Optional[str]]:
        """Newest-first point lookup: ``(present, value_or_tombstone)``.

        Counts every probe: a probe of a segment that lacks the key is
        *negative*, and the bloom filter's job is to answer those
        without touching the file (``persist_bloom_negatives``); the
        ones it lets through are its false positives.
        """
        stats = self.stats
        for seg in reversed(self.segments):
            if not seg.may_contain(key):
                if stats is not None:
                    stats.add("persist_segment_probes")
                    stats.add("persist_bloom_negatives")
                continue
            if stats is not None:
                stats.add("persist_segment_probes")
            present, value = seg.get(key)
            if present:
                if stats is not None:
                    stats.add("persist_segment_hits")
                return True, value
            if stats is not None:
                stats.add("persist_bloom_false_positives")
        return False, None

    def iter_merged(
        self, lo: Optional[str] = None, hi: Optional[str] = None
    ) -> Iterator[Tuple[str, Optional[str]]]:
        """Newest-wins merged iteration over ``[lo, hi)``, tombstones
        included (callers decide whether deletions matter)."""
        merged: Dict[str, Optional[str]] = {}
        for seg in self.segments:
            for key, value in seg.scan(lo, hi):
                merged[key] = value
        for key in sorted(merged):
            yield key, merged[key]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.segments)

    def record_count(self) -> int:
        return sum(seg.count for seg in self.segments)

    def file_bytes(self) -> int:
        return sum(seg.file_bytes() for seg in self.segments)

    def close(self) -> None:
        for seg in self.segments:
            seg.close()
        self.segments = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SegmentStack {self.label} segments={len(self.segments)}>"


class PersistenceManager:
    """WAL + checkpoint segments + recovery for one data directory."""

    def __init__(
        self,
        data_dir: str,
        fsync: str = FSYNC_BATCH,
        checkpoint_bytes: int = 4 << 20,
        compact_threshold: int = 8,
        stats=None,
    ) -> None:
        if fsync not in FSYNC_MODES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; expected one of {FSYNC_MODES}"
            )
        self.data_dir = data_dir
        self.fsync = fsync
        self.checkpoint_bytes = checkpoint_bytes
        self.stats = stats
        os.makedirs(data_dir, exist_ok=True)
        self.segments = SegmentStack(
            os.path.join(data_dir, "segments"),
            stats=stats,
            compact_threshold=compact_threshold,
            label="checkpoint",
        )
        self.flush_seconds = Histogram(FLUSH_BUCKETS)
        self.wal = WriteAheadLog(
            os.path.join(data_dir, WAL_NAME), fsync=fsync, stats=stats
        )
        self.checkpoints = 0
        self.recovered_ops = 0
        self.recovery_ms = 0.0
        self._closed = False

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover_into(self, store) -> int:
        """Rebuild ``store`` from checkpoint segments plus the WAL tail.

        Applies raw store batches (no join maintenance — joins are not
        installed yet at recovery time, and computed output is never
        persisted anyway).  Returns the number of operations replayed.
        A torn WAL tail is truncated at the last intact record.
        """
        start = time.perf_counter()
        ops = 0
        chunk: List[Tuple[str, Optional[str]]] = []
        for key, value in self.segments.iter_merged():
            if value is None:
                continue  # a fully-compacted delete; nothing to apply
            chunk.append((key, value))
            if len(chunk) >= 4096:
                store.apply_batch(chunk)
                ops += len(chunk)
                chunk = []
        if chunk:
            store.apply_batch(chunk)
            ops += len(chunk)
        records, good_offset, torn = scan_wal(self.wal.path)
        if torn:
            # Truncate the torn tail so the next append lands on a
            # record boundary.  The WAL handle is already open (append
            # mode); reopen after truncating to keep offsets honest.
            self.wal.close()
            with open(self.wal.path, "r+b") as fh:
                fh.truncate(good_offset)
            self.wal = WriteAheadLog(
                self.wal.path, fsync=self.fsync, stats=self.stats
            )
            if self.stats is not None:
                self.stats.add("persist_wal_torn_tails")
        for keys, values in records:
            store.apply_batch(list(zip(keys, values)))
            ops += len(keys)
        self.recovered_ops = ops
        self.recovery_ms = (time.perf_counter() - start) * 1000.0
        if self.stats is not None:
            self.stats.counters["persist_recovery_ms"] = self.recovery_ms
            self.stats.add("persist_recovered_ops", ops)
        return ops

    # ------------------------------------------------------------------
    # The write path
    # ------------------------------------------------------------------
    def log_put(self, key: str, value: str) -> None:
        self.wal.append([key], [value])

    def log_remove(self, key: str) -> None:
        self.wal.append([key], [None])

    def log_ops(self, ops) -> None:
        self.wal.append_ops(ops)

    def maybe_checkpoint(self) -> bool:
        if self.wal.size >= self.checkpoint_bytes:
            self.checkpoint()
            return True
        return False

    def checkpoint(self) -> None:
        """Fold the WAL into a new checkpoint segment and reset it.

        The WAL is synced first so the fold reads everything; the
        segment is fsynced and published (manifest rename) before the
        WAL truncates, so a crash at any point loses nothing: either
        the old WAL still holds the records, or the segment does.
        """
        start = time.perf_counter()
        self.wal.flush()
        records, _, _ = scan_wal(self.wal.path)
        net: Dict[str, Optional[str]] = {}
        for keys, values in records:
            for key, value in zip(keys, values):
                net[key] = value
        self.segments.push(sorted(net.items()))
        self.segments.maybe_compact()
        self.wal.reset()
        self.checkpoints += 1
        self.flush_seconds.observe(time.perf_counter() - start)
        if self.stats is not None:
            self.stats.add("persist_checkpoints")

    def flush(self) -> None:
        """Make everything journaled so far durable."""
        self.wal.flush()

    def close(self) -> None:
        """Flush and close cleanly (the graceful-shutdown path)."""
        if self._closed:
            return
        self._closed = True
        self.wal.close()
        self.segments.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PersistenceManager {self.data_dir!r} wal={self.wal.size}B "
            f"segments={len(self.segments)}>"
        )
