"""A fluent, validated builder for cache joins.

The Figure-2 grammar is compact but stringly; the builder is the same
join written as code, with validation errors raised where the mistake
was made.  The paper's Twip timeline join (§2.2)::

    from repro.client import join

    timeline = (join("t|<user>|<time>|<poster>")
                .check("s|<user>|<poster>")
                .copy("p|<poster>|<time>"))

and its pull-maintained celebrity variant (§2.3) appends ``.pull()``.
Builders compile to :class:`~repro.core.joins.CacheJoin` via
:meth:`build` and are accepted directly by every client's and server's
``add_join``, so the two spellings are interchangeable.

Each source method mirrors one grammar operator: ``check`` / ``echeck``
guard sources, ``copy`` the value source, and ``count`` / ``sum`` /
``min`` / ``max`` the aggregates.  ``push`` / ``pull`` /
``snapshot(interval)`` set the §3.4 maintenance annotation.  All
methods return the builder; a builder is reusable (``build`` does not
consume it) and compiling never mutates server state.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.joins import CacheJoin, JoinError, MaintenanceType
from ..core.pattern import PatternError
from .errors import JoinSpecError


class JoinBuilder:
    """Fluent construction of one cache join; see the module docs."""

    def __init__(self, output: str) -> None:
        if not isinstance(output, str) or not output.strip():
            raise JoinSpecError("join output must be a non-empty pattern")
        self._output = output.strip()
        self._sources: List[Tuple[str, str]] = []
        self._maintenance = MaintenanceType.PUSH
        self._interval: Optional[float] = None

    # ------------------------------------------------------------------
    # Sources (grammar operators)
    # ------------------------------------------------------------------
    def _source(self, operator: str, pattern: str) -> "JoinBuilder":
        if not isinstance(pattern, str) or not pattern.strip():
            raise JoinSpecError(
                f"{operator} needs a non-empty source pattern"
            )
        self._sources.append((operator, pattern.strip()))
        return self

    def check(self, pattern: str) -> "JoinBuilder":
        """A guard source: pairs must exist, values are unused."""
        return self._source("check", pattern)

    def echeck(self, pattern: str) -> "JoinBuilder":
        """An eagerly-maintained check (the ``echeck`` extension)."""
        return self._source("echeck", pattern)

    def copy(self, pattern: str) -> "JoinBuilder":
        """The value source: output values are copies of its values."""
        return self._source("copy", pattern)

    def count(self, pattern: str) -> "JoinBuilder":
        """Aggregate value source: the number of matching pairs."""
        return self._source("count", pattern)

    def sum(self, pattern: str) -> "JoinBuilder":
        return self._source("sum", pattern)

    def min(self, pattern: str) -> "JoinBuilder":
        return self._source("min", pattern)

    def max(self, pattern: str) -> "JoinBuilder":
        return self._source("max", pattern)

    # ------------------------------------------------------------------
    # Maintenance annotations (§3.4)
    # ------------------------------------------------------------------
    def push(self) -> "JoinBuilder":
        """Eager incremental maintenance (the default)."""
        self._maintenance = MaintenanceType.PUSH
        self._interval = None
        return self

    def pull(self) -> "JoinBuilder":
        """Recompute on every query; never cache the output."""
        self._maintenance = MaintenanceType.PULL
        self._interval = None
        return self

    def snapshot(self, interval: float) -> "JoinBuilder":
        """Compute once, serve unmaintained for ``interval`` seconds."""
        if not isinstance(interval, (int, float)) or interval <= 0:
            raise JoinSpecError("snapshot needs a positive interval")
        self._maintenance = MaintenanceType.SNAPSHOT
        self._interval = float(interval)
        return self

    # ------------------------------------------------------------------
    def build(self) -> CacheJoin:
        """Compile to a validated :class:`CacheJoin` (§3's add-join
        checks run here); raises :class:`JoinSpecError` on failure."""
        if not self._sources:
            raise JoinSpecError(
                f"join {self._output!r} has no sources; add .copy()/"
                ".count()/... before building"
            )
        try:
            return CacheJoin(
                self._output,
                self._sources,
                maintenance=self._maintenance,
                snapshot_interval=self._interval,
            )
        except (JoinError, PatternError) as exc:
            raise JoinSpecError(str(exc)) from exc

    @property
    def text(self) -> str:
        """The equivalent Figure-2 grammar text."""
        return self.build().text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sources = " ".join(f"{op} {pat}" for op, pat in self._sources)
        return f"JoinBuilder({self._output!r} = {sources or '<no sources>'})"


def join(output: str) -> JoinBuilder:
    """Start a fluent join: ``join("t|<u>|<tm>|<p>").check(...).copy(...)``."""
    return JoinBuilder(output)
