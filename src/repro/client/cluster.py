"""ClusterClient: the unified client over a distributed deployment.

Wraps :class:`~repro.distrib.cluster.Cluster` routing (§2.4, §5.5) in
the ``PequodClient`` surface.  The paper's Twip deployment strategy is
generalized into key-space routing:

* **Writes** go to the written key's home server (lookaside, §5.1) —
  ``Cluster.put`` / ``remove`` / ``apply_batch`` already do this.
* **Reads of computed ranges** (any table some installed join outputs)
  go to the affinity compute server ``S(u)`` (§2.4), which executes
  joins locally, fetching and subscribing to missing base ranges
  (§3.3).  The affinity is the key's first slot segment by default —
  ``t|ann|…`` routes on ``ann`` — matching the paper's per-user read
  affinity; pass ``affinity_of`` to override.
* **Reads of base data** go to the data's home server(s), the source
  of truth — compute nodes only mirror base ranges their joins have
  demanded, so asking a compute server for arbitrary base data would
  invent a miss the deployment doesn't have.

Freshness follows §2.4: maintenance propagates asynchronously, so
reads of computed data may briefly trail writes; :meth:`settle`
delivers everything in flight, after which reads match what a
single server would return.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core.joins import JoinError
from ..core.pattern import PatternError
from ..distrib.cluster import Cluster, Session
from ..store.batch import PUT
from ..store.keys import prefix_upper_bound
from ..store.stats import StoreStats
from .base import BatchLike, JoinLike, PequodClient, join_text
from .errors import JoinSpecError


def default_affinity(key: str) -> str:
    """The paper's read affinity: the user segment of the key —
    the first ``|``-separated segment after the table tag."""
    parts = key.split("|", 2)
    return parts[1] if len(parts) > 1 else key


class ClusterClient(PequodClient):
    """Drive a :class:`Cluster` of base and compute servers."""

    backend = "cluster"

    def __init__(
        self,
        cluster: Cluster,
        affinity_of: Optional[Callable[[str], str]] = None,
    ) -> None:
        self.cluster = cluster
        self.affinity_of = affinity_of or default_affinity
        self._computed_cache: Optional[set] = None

    # ------------------------------------------------------------------
    # Routing helpers
    # ------------------------------------------------------------------
    def _computed_tables(self) -> set:
        """Tables produced by installed joins (compute-node data).

        Cached: joins are installed identically on every compute node
        through :meth:`add_join` (which invalidates the cache), so one
        node's join list is authoritative.
        """
        if self._computed_cache is None:
            self._computed_cache = {
                j.output.table
                for node in self.cluster.compute_nodes[:1]
                for j in node.server.joins
            }
        return self._computed_cache

    def _is_computed(self, table: str) -> bool:
        return table in self._computed_tables()

    @staticmethod
    def _table_of(key: str) -> str:
        return key.split("|", 1)[0]

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[str]:
        if self._is_computed(self._table_of(key)):
            return self.cluster.get(self.affinity_of(key), key)
        # Base / plain data: read the home server directly.
        return self.cluster.get_home(key)

    def _compute_node_of(self, key: str):
        return self.cluster.compute_node_for(self.affinity_of(key))

    def put(self, key: str, value: str) -> None:
        self.check_value(value)
        if self._is_computed(self._table_of(key)):
            # Direct writes into a computed range live where the range
            # is computed and read — the affinity compute server — not
            # at a base home that no reader ever consults.
            self.cluster.put_at(self._compute_node_of(key), key, value)
            return
        self.cluster.put(key, value)

    def remove(self, key: str) -> bool:
        if self._is_computed(self._table_of(key)):
            return self.cluster.remove_at(self._compute_node_of(key), key)
        return self.cluster.remove(key)

    def scan(self, first: str, last: str) -> List[Tuple[str, str]]:
        table = self._table_of(first)
        if not self._is_computed(table):
            # Base data lives at its home server(s); merge their slices.
            return self.cluster.scan_homes(first, last)
        affinity = self.affinity_of(first)
        rows = self.cluster.scan(affinity, first, last)
        # A scan confined to one affinity — the paper's read pattern
        # (§2.4: all of a user's reads go to S(u)) — is complete: the
        # affinity server demand-computes the whole range.  A scan
        # crossing affinities must also merge rows that other compute
        # servers hold exclusively (direct writes into their slice of
        # the computed range); their stored rows suffice, with the
        # demand-computing affinity server winning key collisions.
        prefix = f"{table}|{affinity}|"
        if first.startswith(prefix) and last <= prefix_upper_bound(prefix):
            return rows
        seen = {key for key, _ in rows}
        merged = list(rows)
        scanned = self._compute_node_of(first)
        for node in self.cluster.compute_nodes:
            if node is scanned:
                continue
            merged.extend(
                (key, value)
                for key, value in self.cluster.stored_rows_at(
                    node, first, last
                )
                if key not in seen
            )
        merged.sort()
        return merged

    def add_join(self, join: JoinLike) -> List[str]:
        """Install joins on every compute server (they execute joins;
        base servers only hold base data).

        Compute servers stay in lock-step: the whole spec is validated
        as one batch before installation (PequodServer's add-join
        atomicity), so a rejected spec touches no node and every
        compute server always holds the same join set.
        """
        text = join_text(join)
        installed: List[str] = []
        try:
            for i, node in enumerate(self.cluster.compute_nodes):
                added = node.server.add_join(text)
                if i == 0:
                    installed = [j.text for j in added]
        except (JoinError, PatternError) as exc:
            raise JoinSpecError(str(exc)) from exc
        finally:
            self._computed_cache = None
        return installed

    def apply_batch(self, batch: BatchLike) -> int:
        # Ops on computed tables go to their affinity compute server
        # (like single writes); the rest take the home-server path.
        base_ops: List[Tuple[str, Optional[str]]] = []
        by_compute: Dict[str, List[Tuple[str, Optional[str]]]] = {}
        nodes = {}
        for op in self.checked_ops(batch):
            pair = (op.key, op.value if op.kind == PUT else None)
            if self._is_computed(self._table_of(op.key)):
                node = self._compute_node_of(op.key)
                nodes[node.name] = node
                by_compute.setdefault(node.name, []).append(pair)
            else:
                base_ops.append(pair)
        applied = 0
        if base_ops:
            applied += self.cluster.apply_batch(base_ops)
        for name, pairs in by_compute.items():
            applied += self.cluster.apply_batch_at(nodes[name], pairs)
        return applied

    def stats(self) -> Dict[str, float]:
        merged = StoreStats()
        for node in self.cluster.nodes:
            merged = merged.merged_with(node.server.stats)
        return merged.snapshot()

    # ------------------------------------------------------------------
    def settle(self) -> int:
        """Deliver all in-flight subscription updates (§2.4)."""
        return self.cluster.settle()

    def session(self, affinity: str) -> Session:
        """A read-your-own-writes session pinned to ``S(affinity)``."""
        return self.cluster.session(affinity)
