"""ClusterClient: the sync facade over the distributed async backend.

The routing strategy (writes to home servers, computed reads to the
affinity compute server ``S(u)``, base reads to the data's homes —
§2.4, §5.5) lives in :class:`~repro.client.aio.AsyncClusterClient`;
this facade owns an event loop and drives it per operation, which also
executes the async backend's per-server fan-outs (scans and batched
writes ``gather`` one task per home server).

Freshness follows §2.4: maintenance propagates asynchronously, so
reads of computed data may briefly trail writes; :meth:`settle`
delivers everything in flight, after which reads match what a
single server would return.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..distrib.cluster import Cluster, Session
from .aio import AsyncClusterClient, default_affinity
from .base import PequodClient

__all__ = ["ClusterClient", "default_affinity"]


class ClusterClient(PequodClient):
    """Drive a :class:`Cluster` of base and compute servers."""

    backend = "cluster"

    def __init__(
        self,
        cluster: Cluster,
        affinity_of: Optional[Callable[[str], str]] = None,
    ) -> None:
        self._adopt(AsyncClusterClient(cluster, affinity_of))

    @property
    def cluster(self) -> Cluster:
        return self._async.cluster  # type: ignore[attr-defined]

    @property
    def affinity_of(self) -> Callable[[str], str]:
        return self._async.affinity_of  # type: ignore[attr-defined]

    def session(self, affinity: str) -> Session:
        """A read-your-own-writes session pinned to ``S(affinity)``."""
        return self._async.session(affinity)  # type: ignore[attr-defined]
