"""The async-native Pequod client API: event-driven backends plus
server-push watch streams.

The paper's clients "are event-driven processes that keep many RPCs
outstanding" (§5.1) and its servers *push* updates to subscribers
rather than being polled (§2.4).  This module is that model as the
primary client surface:

* :class:`AsyncPequodClient` — the abstract interface, mirroring the
  synchronous ``PequodClient`` operation set as coroutines;
* :class:`AsyncLocalClient` — an in-process server;
* :class:`AsyncRemoteClient` — a server across TCP, driving the
  pipelined :class:`~repro.net.rpc_client.RpcClient` directly, so
  hundreds of operations ride one connection concurrently;
* :class:`AsyncClusterClient` — a distributed deployment, fanning
  reads and batched writes out to home servers concurrently
  (``asyncio.gather``);
* :meth:`AsyncPequodClient.watch` — a server-push stream of committed
  changes in a key range, delivered exactly once in commit order, on
  every backend.

The synchronous clients of :mod:`repro.client.local` / ``remote`` /
``cluster`` are thin facades over these classes (each sync client owns
one event loop), so there is exactly one implementation of every
backend.  Use :func:`repro.client.factory.make_async_client` to build
one::

    client = await make_async_client("rpc")
    await client.add_join("t|<u>|<tm>|<p> = check s|<u>|<p> copy p|<p>|<tm>")
    await client.put("s|ann|bob", "1")
    await client.scan_prefix("t|ann|")   # materialize ann's timeline
    watch = await client.watch("t|ann|", "t|ann}")
    await client.put("p|bob|0100", "hello!")   # maintained, then pushed
    async for event in watch:
        render(event)          # pushed by the server, not polled
"""

from __future__ import annotations

import asyncio
from typing import (
    Awaitable,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from ..core.hub import ChangeEvent
from ..core.joins import JoinError
from ..core.load import OverloadError as CoreOverloadError
from ..core.pattern import PatternError
from ..core.server import PequodServer
from ..distrib.cluster import Cluster, Session
from ..distrib.node import ROLE_BASE, ROLE_COMPUTE, DistributedNode
from ..metrics import merge_snapshots
from ..net import protocol
from ..net.rpc_client import RpcClient, RpcError
from ..store.batch import PUT, WriteBatch
from ..store.keys import prefix_upper_bound
from .base import BatchLike, JoinLike, check_value, checked_ops, join_text
from .errors import (
    BadRequestError,
    JoinSpecError,
    NotFoundError,
    OverloadError,
    TransportError,
    error_for_code,
)


def _overload(exc: CoreOverloadError) -> OverloadError:
    """Re-raise an engine-level shed as the unified client type."""
    return OverloadError(str(exc), reason=exc.reason)

#: Sentinel queued into a Watch when its stream has ended.
_STREAM_END = object()


class Watch:
    """An async stream of committed changes in ``[lo, hi)``.

    Iterate it (``async for event in watch``), await single events
    with :meth:`next_event`, or drain whatever has already arrived
    with :meth:`drain`.  The stream ends — iteration stops — when
    :meth:`close` is called or the backend connection is lost.
    """

    def __init__(
        self,
        lo: str,
        hi: str,
        on_close: Optional[Callable[[], Union[None, Awaitable[None]]]] = None,
    ) -> None:
        self.lo = lo
        self.hi = hi
        self._queue: asyncio.Queue = asyncio.Queue()
        self._on_close = on_close
        self._ended = False
        self.closed = False

    # -- producer side (backends) --------------------------------------
    def _push(self, event: ChangeEvent) -> None:
        if not self.closed:
            self._queue.put_nowait(event)

    def _push_end(self) -> None:
        self._queue.put_nowait(_STREAM_END)

    # -- consumer side -------------------------------------------------
    def __aiter__(self) -> "Watch":
        return self

    async def __anext__(self) -> ChangeEvent:
        event = await self.next_event()
        if event is None:
            raise StopAsyncIteration
        return event

    async def next_event(
        self, timeout: Optional[float] = None
    ) -> Optional[ChangeEvent]:
        """The next change, or None if the stream ended or ``timeout``
        seconds passed without one."""
        if self._ended and self._queue.empty():
            return None
        try:
            if timeout is None:
                item = await self._queue.get()
            else:
                item = await asyncio.wait_for(self._queue.get(), timeout)
        except asyncio.TimeoutError:
            return None
        if item is _STREAM_END:
            self._ended = True
            return None
        return item

    def drain(self) -> List[ChangeEvent]:
        """Every event already delivered, without waiting."""
        out: List[ChangeEvent] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return out
            if item is _STREAM_END:
                self._ended = True
                return out
            out.append(item)

    async def close(self) -> None:
        """Stop delivery and release the server-side subscription."""
        if self.closed:
            return
        self.closed = True
        if self._on_close is not None:
            result = self._on_close()
            if asyncio.iscoroutine(result):
                await result
        self._push_end()


class AsyncWriteBatch(WriteBatch):
    """A write batch bound to an async client.

    Works as an async context manager (applies on clean exit) or via
    explicit ``await batch.aapply()``::

        async with client.write_batch() as batch:
            batch.put("p|bob|0100", "hello")
            batch.put("p|bob|0101", "again")
    """

    __slots__ = ("_client",)

    def __init__(self, client: "AsyncPequodClient") -> None:
        super().__init__()
        self._client = client

    async def aapply(self) -> int:
        return await self._client.apply_batch(self)

    async def __aenter__(self) -> "AsyncWriteBatch":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and self:
            await self.aapply()


class AsyncPequodClient:
    """Abstract async client for a Pequod cache, whatever its
    deployment.

    Subclasses implement the primitives marked *backend*; the
    convenience forms are derived here so their semantics can't drift
    between backends.  Clients are async context managers::

        async with await make_async_client("rpc") as client:
            await client.put("s|ann|bob", "1")
    """

    #: Short backend tag ("local", "rpc", "cluster") for diagnostics.
    backend = "abstract"

    # ------------------------------------------------------------------
    # Backend primitives
    # ------------------------------------------------------------------
    async def get(self, key: str) -> Optional[str]:
        """The value for ``key``, computing overlapping joins on demand."""
        raise NotImplementedError

    async def put(self, key: str, value: str) -> None:
        """Write ``key``; incremental maintenance runs before returning."""
        raise NotImplementedError

    async def remove(self, key: str) -> bool:
        """Remove ``key``; True iff it was present (on every backend)."""
        raise NotImplementedError

    async def scan(self, first: str, last: str) -> List[Tuple[str, str]]:
        """Ordered pairs with ``first <= key < last`` (§2's scan)."""
        raise NotImplementedError

    async def add_join(self, join: JoinLike) -> List[str]:
        """Install cache joins; returns their normalized texts."""
        raise NotImplementedError

    async def apply_batch(self, batch: BatchLike) -> int:
        """Apply a coalesced write batch as one maintenance pass;
        returns the number of net changes applied."""
        raise NotImplementedError

    async def stats(self) -> Dict[str, float]:
        """Server work counters (summed across servers on a cluster)."""
        raise NotImplementedError

    async def watch(self, lo: str, hi: str) -> Watch:
        """A server-push stream of committed changes in ``[lo, hi)``.

        Every change committed after the call — client writes and
        maintained join outputs alike — is delivered exactly once, in
        commit order (per key: key-version order).  Close the returned
        :class:`Watch` to unsubscribe."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Derived operations — identical on every backend by construction
    # ------------------------------------------------------------------
    async def scan_prefix(self, prefix: str) -> List[Tuple[str, str]]:
        """All pairs whose keys start with ``prefix``."""
        return await self.scan(prefix, prefix_upper_bound(prefix))

    async def count(self, first: str, last: str) -> int:
        return len(await self.scan(first, last))

    async def exists(self, key: str) -> bool:
        return await self.get(key) is not None

    def write_batch(self) -> AsyncWriteBatch:
        """A write batch bound to this client; applies on clean
        ``async with`` exit or explicit :meth:`AsyncWriteBatch.aapply`."""
        return AsyncWriteBatch(self)

    async def put_many(self, pairs: Iterable[Tuple[str, str]]) -> int:
        """Batch-write ``(key, value)`` pairs; returns changes applied."""
        batch = WriteBatch()
        for key, value in pairs:
            check_value(value)
            batch.put(key, value)
        return await self.apply_batch(batch)

    # ------------------------------------------------------------------
    # Deployment hooks
    # ------------------------------------------------------------------
    async def settle(self) -> int:
        """Deliver in-flight asynchronous maintenance; returns the
        number of messages delivered (0 off-cluster)."""
        return 0

    async def settle_cdc(self) -> int:
        """Write-around convergence barrier: drain the change feed into
        the cache on every server (sequence high-water-mark compare;
        pgcache's ``wait_for_cdc``).  Returns change records consumed —
        0 on write-through deployments, so callers need not branch."""
        return 0

    async def aclose(self) -> None:
        """Release backend resources; the client is unusable after."""

    async def __aenter__(self) -> "AsyncPequodClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} backend={self.backend!r}>"


class AsyncLocalClient(AsyncPequodClient):
    """Drive an in-process :class:`PequodServer`.

    Accepts an existing server (sharing it with direct callers is
    fine — both see the same store) or builds one from the keyword
    arguments, which mirror the server's tunables.  ``watch`` streams
    come straight off the server's change hub, delivered synchronously
    with each commit.
    """

    backend = "local"

    def __init__(
        self, server: Optional[PequodServer] = None, **server_kwargs
    ) -> None:
        if server is not None and server_kwargs:
            raise BadRequestError(
                "pass either an existing server or server kwargs, not both"
            )
        self.server = (
            server if server is not None else PequodServer(**server_kwargs)
        )

    # ------------------------------------------------------------------
    async def get(self, key: str) -> Optional[str]:
        try:
            return self.server.get(key)
        except CoreOverloadError as exc:
            raise _overload(exc) from exc

    async def put(self, key: str, value: str) -> None:
        check_value(value)
        try:
            self.server.put(key, value)
        except CoreOverloadError as exc:
            raise _overload(exc) from exc

    async def remove(self, key: str) -> bool:
        try:
            return self.server.remove(key)
        except CoreOverloadError as exc:
            raise _overload(exc) from exc

    async def scan(self, first: str, last: str) -> List[Tuple[str, str]]:
        try:
            return self.server.scan(first, last)
        except CoreOverloadError as exc:
            raise _overload(exc) from exc

    async def add_join(self, join: JoinLike) -> List[str]:
        try:
            # One spec, one server call: the whole install is atomic.
            installed = self.server.add_join(join_text(join))
        except (JoinError, PatternError) as exc:
            raise JoinSpecError(str(exc)) from exc
        return [j.text for j in installed]

    async def apply_batch(self, batch: BatchLike) -> int:
        try:
            return self.server.apply_batch(checked_ops(batch))
        except CoreOverloadError as exc:
            raise _overload(exc) from exc

    async def stats(self) -> Dict[str, float]:
        return self.server.metrics_snapshot()

    async def settle_cdc(self) -> int:
        try:
            return self.server.settle_cdc()
        except CoreOverloadError as exc:
            raise _overload(exc) from exc

    async def watch(self, lo: str, hi: str) -> Watch:
        if not lo < hi:
            raise BadRequestError(f"empty watch range [{lo!r}, {hi!r})")
        watch = Watch(lo, hi)
        handle = self.server.watch(lo, hi, watch._push)
        watch._on_close = handle.close
        return watch


class AsyncRemoteClient(AsyncPequodClient):
    """Drive a Pequod RPC server at ``host:port`` over one pipelined
    connection.

    Every coroutine writes its request frame immediately and awaits
    its own response future, so concurrent callers (``gather``, task
    groups) keep many RPCs outstanding on the single connection — the
    paper's §5.1 client model, with no per-call thread hops.  ``watch``
    subscriptions ride the same connection: the server pushes change
    frames with reserved negative ids that interleave with responses.
    """

    backend = "rpc"

    def __init__(self, host: str = "127.0.0.1", port: int = 7709) -> None:
        self.host = host
        self.port = port
        self._rpc: Optional[RpcClient] = RpcClient(host, port)
        self._connected = False

    @classmethod
    async def open(
        cls, host: str = "127.0.0.1", port: int = 7709
    ) -> "AsyncRemoteClient":
        client = cls(host, port)
        await client.connect()
        return client

    async def connect(self) -> None:
        assert self._rpc is not None
        try:
            await self._rpc.connect()
        except OSError as exc:
            raise TransportError(
                f"cannot connect to pequod at {self.host}:{self.port}: {exc}"
            ) from exc
        self._connected = True

    # ------------------------------------------------------------------
    async def _call(self, method: str, *args):
        if self._rpc is None or not self._connected:
            raise TransportError("client is closed")
        try:
            return await self._rpc.call(method, *args)
        except RpcError as exc:
            raise error_for_code(exc.code, str(exc)) from exc
        except (OSError, RuntimeError) as exc:
            raise TransportError(f"rpc {method} failed: {exc}") from exc

    # ------------------------------------------------------------------
    async def get(self, key: str) -> Optional[str]:
        return await self._call("get", key)

    async def put(self, key: str, value: str) -> None:
        check_value(value)
        await self._call("put", key, value)

    async def remove(self, key: str) -> bool:
        return bool(await self._call("remove", key))

    async def scan(self, first: str, last: str) -> List[Tuple[str, str]]:
        return [tuple(pair) for pair in await self._call("scan", first, last)]

    async def scan_prefix(self, prefix: str) -> List[Tuple[str, str]]:
        # One RPC instead of a client-side bound computation + scan.
        return [
            tuple(pair) for pair in await self._call("scan_prefix", prefix)
        ]

    async def count(self, first: str, last: str) -> int:
        return await self._call("count", first, last)

    async def add_join(self, join: JoinLike) -> List[str]:
        # One spec, one RPC: the whole install is atomic server-side.
        return await self._call("add_join", join_text(join))

    async def apply_batch(self, batch: BatchLike) -> int:
        # checked_ops already coalesced and sorted; go straight to the
        # wire encoding rather than re-coalescing in the RPC layer.
        pairs = [
            (op.key, op.value if op.kind == PUT else None)
            for op in checked_ops(batch)
        ]
        if not pairs:
            return 0
        return await self._call("batch", *protocol.encode_batch_args(pairs))

    async def stats(self) -> Dict[str, float]:
        return await self._call("stats")

    async def settle_cdc(self) -> int:
        return await self._call("settle_cdc")

    async def ping(self) -> str:
        return await self._call("ping")

    async def watch(self, lo: str, hi: str) -> Watch:
        if not lo < hi:
            raise BadRequestError(f"empty watch range [{lo!r}, {hi!r})")
        rpc = self._rpc
        if rpc is None or not self._connected:
            raise TransportError("client is closed")
        sub_id = await self._call("subscribe", lo, hi)

        async def unsubscribe() -> None:
            rpc.drop_push_sink(sub_id)
            try:
                await self._call("unsubscribe", sub_id)
            except (NotFoundError, TransportError):
                pass  # connection or subscription already gone

        watch = Watch(lo, hi, on_close=unsubscribe)

        def sink(events: Optional[List[ChangeEvent]]) -> None:
            if events is None:
                watch._push_end()  # connection lost: the stream ends
            else:
                for event in events:
                    watch._push(event)

        rpc.set_push_sink(sub_id, sink)
        return watch

    # ------------------------------------------------------------------
    async def aclose(self) -> None:
        rpc, self._rpc = self._rpc, None
        self._connected = False
        if rpc is not None:
            await rpc.close()


def default_affinity(key: str) -> str:
    """The paper's read affinity: the user segment of the key —
    the first ``|``-separated segment after the table tag."""
    parts = key.split("|", 2)
    return parts[1] if len(parts) > 1 else key


class AsyncClusterClient(AsyncPequodClient):
    """Drive a :class:`Cluster` of base and compute servers.

    The routing strategy is the paper's (§2.4, §5.5): writes go to the
    written key's home server, computed reads to the affinity compute
    server ``S(u)``, base reads to the data's home server(s).  Reads
    and batched writes spanning several home servers fan out as one
    task per server under ``asyncio.gather`` — the §5.1 client shape
    applied to a partitioned deployment.  Against the *simulated*
    cluster the node calls are synchronous, so the gather executes
    them back to back; the structure is what buys concurrency the day
    a node call actually awaits (e.g. real remote nodes).

    ``watch`` is cluster-routed: a range is watched on every node that
    can own one of its keys, and each node's stream is filtered to the
    keys it is the routing owner of — so mirrored base data and
    forwarded writes never produce duplicate events, and every
    committed change surfaces exactly once.
    """

    backend = "cluster"

    def __init__(
        self,
        cluster: Cluster,
        affinity_of: Optional[Callable[[str], str]] = None,
    ) -> None:
        self.cluster = cluster
        self.affinity_of = affinity_of or default_affinity
        self._computed_cache: Optional[set] = None

    # ------------------------------------------------------------------
    # Routing helpers
    # ------------------------------------------------------------------
    def _computed_tables(self) -> set:
        """Tables produced by installed joins (compute-node data).

        Cached: joins are installed identically on every compute node
        through :meth:`add_join` (which invalidates the cache), so one
        node's join list is authoritative.
        """
        if self._computed_cache is None:
            self._computed_cache = {
                j.output.table
                for node in self.cluster.live_compute_nodes[:1]
                for j in node.server.joins
            }
        return self._computed_cache

    def _is_computed(self, table: str) -> bool:
        return table in self._computed_tables()

    @staticmethod
    def _table_of(key: str) -> str:
        return key.split("|", 1)[0]

    def _compute_node_of(self, key: str) -> DistributedNode:
        return self.cluster.compute_node_for(self.affinity_of(key))

    def _owns(self, node: DistributedNode, key: str) -> bool:
        """Is ``node`` the routing owner of ``key`` — the one server a
        commit of that key counts at?  Computed tables are owned by
        the affinity compute server, everything else by the home
        server; mirrored copies and forwarded writes are not owned."""
        if self._is_computed(self._table_of(key)):
            return node.role == ROLE_COMPUTE and node is self._compute_node_of(key)
        return node.role == ROLE_BASE and node is self.cluster.home_node(key)

    # ------------------------------------------------------------------
    async def get(self, key: str) -> Optional[str]:
        try:
            if self._is_computed(self._table_of(key)):
                return self.cluster.get(self.affinity_of(key), key)
            # Base / plain data: read the home server directly.
            return self.cluster.get_home(key)
        except CoreOverloadError as exc:
            raise _overload(exc) from exc

    async def put(self, key: str, value: str) -> None:
        check_value(value)
        try:
            if self._is_computed(self._table_of(key)):
                # Direct writes into a computed range live where the
                # range is computed and read — the affinity compute
                # server — not at a base home no reader ever consults.
                self.cluster.put_at(self._compute_node_of(key), key, value)
                return
            self.cluster.put(key, value)
        except CoreOverloadError as exc:
            raise _overload(exc) from exc

    async def remove(self, key: str) -> bool:
        try:
            if self._is_computed(self._table_of(key)):
                return self.cluster.remove_at(self._compute_node_of(key), key)
            return self.cluster.remove(key)
        except CoreOverloadError as exc:
            raise _overload(exc) from exc

    async def _scan_homes(self, first: str, last: str) -> List[Tuple[str, str]]:
        """Fan-out: every involved home server's slice is requested as
        its own gathered task (sequential against the synchronous
        simulated cluster — see the class docstring)."""
        nodes = self.cluster.home_nodes_for_range(first, last)

        async def one(node: DistributedNode) -> List[Tuple[str, str]]:
            return self.cluster.scan_home_at(node, first, last)

        slices = await asyncio.gather(*(one(node) for node in nodes))
        rows = [pair for rows in slices for pair in rows]
        rows.sort()
        return rows

    async def scan(self, first: str, last: str) -> List[Tuple[str, str]]:
        try:
            return await self._scan_routed(first, last)
        except CoreOverloadError as exc:
            raise _overload(exc) from exc

    async def _scan_routed(self, first: str, last: str) -> List[Tuple[str, str]]:
        table = self._table_of(first)
        if not self._is_computed(table):
            # Base data lives at its home server(s); merge their slices.
            return await self._scan_homes(first, last)
        affinity = self.affinity_of(first)
        rows = self.cluster.scan(affinity, first, last)
        # A scan confined to one affinity — the paper's read pattern
        # (§2.4: all of a user's reads go to S(u)) — is complete: the
        # affinity server demand-computes the whole range.  A scan
        # crossing affinities must also merge rows that other compute
        # servers hold exclusively (direct writes into their slice of
        # the computed range); their stored rows suffice, with the
        # demand-computing affinity server winning key collisions.
        prefix = f"{table}|{affinity}|"
        if first.startswith(prefix) and last <= prefix_upper_bound(prefix):
            return rows
        seen = {key for key, _ in rows}
        scanned = self._compute_node_of(first)
        others = [
            node
            for node in self.cluster.live_compute_nodes
            if node is not scanned
        ]

        async def stored(node: DistributedNode) -> List[Tuple[str, str]]:
            return self.cluster.stored_rows_at(node, first, last)

        merged = list(rows)
        for rows_at in await asyncio.gather(*(stored(n) for n in others)):
            merged.extend(
                (key, value) for key, value in rows_at if key not in seen
            )
        merged.sort()
        return merged

    async def add_join(self, join: JoinLike) -> List[str]:
        """Install joins on every compute server (they execute joins;
        base servers only hold base data).

        Compute servers stay in lock-step: the whole spec is validated
        as one batch before installation (PequodServer's add-join
        atomicity), so a rejected spec touches no node and every
        compute server always holds the same join set.
        """
        text = join_text(join)
        installed: List[str] = []
        try:
            for i, node in enumerate(self.cluster.compute_nodes):
                added = node.server.add_join(text)
                if i == 0:
                    installed = [j.text for j in added]
        except (JoinError, PatternError) as exc:
            raise JoinSpecError(str(exc)) from exc
        finally:
            self._computed_cache = None
        return installed

    async def apply_batch(self, batch: BatchLike) -> int:
        # Ops on computed tables go to their affinity compute server
        # (like single writes); the rest split by home server, each
        # shipment applied as its own concurrent task.
        base_ops: List[Tuple[str, Optional[str]]] = []
        by_compute: Dict[str, List[Tuple[str, Optional[str]]]] = {}
        nodes: Dict[str, DistributedNode] = {}
        for op in checked_ops(batch):
            pair = (op.key, op.value if op.kind == PUT else None)
            if self._is_computed(self._table_of(op.key)):
                node = self._compute_node_of(op.key)
                nodes[node.name] = node
                by_compute.setdefault(node.name, []).append(pair)
            else:
                base_ops.append(pair)
        shipments: List[Tuple[DistributedNode, List[Tuple[str, Optional[str]]]]] = []
        if base_ops:
            by_home: Dict[str, List[Tuple[str, Optional[str]]]] = {}
            home_nodes: Dict[str, DistributedNode] = {}
            for pair in base_ops:
                node = self.cluster.home_node(pair[0])
                home_nodes[node.name] = node
                by_home.setdefault(node.name, []).append(pair)
            shipments.extend(
                (home_nodes[name], pairs) for name, pairs in by_home.items()
            )
        shipments.extend(
            (nodes[name], pairs) for name, pairs in by_compute.items()
        )

        async def ship(
            node: DistributedNode, pairs: List[Tuple[str, Optional[str]]]
        ) -> int:
            return self.cluster.apply_batch_at(node, pairs)

        try:
            applied = await asyncio.gather(
                *(ship(node, pairs) for node, pairs in shipments)
            )
        except CoreOverloadError as exc:
            raise _overload(exc) from exc
        return sum(applied)

    async def stats(self) -> Dict[str, float]:
        # Per-node stats supersets merged cluster-wide: counters and
        # depths sum, staleness high-water marks take the max.  Dead
        # nodes are excluded — their counters describe state nobody can
        # reach anymore.
        return merge_snapshots(
            node.server.metrics_snapshot()
            for node in self.cluster.nodes
            if node.name not in self.cluster.dead
        )

    async def watch(self, lo: str, hi: str) -> Watch:
        if not lo < hi:
            raise BadRequestError(f"empty watch range [{lo!r}, {hi!r})")
        watch = Watch(lo, hi)
        handles = []
        for node in self.cluster.nodes:
            def sink(event: ChangeEvent, node=node) -> None:
                # Ownership filter: a change surfaces only from the
                # node that owns its key's routing, never from mirrors.
                if self._owns(node, event.key):
                    watch._push(event)

            handles.append(node.server.watch(lo, hi, sink))

        def close_all() -> None:
            for handle in handles:
                handle.close()

        watch._on_close = close_all
        return watch

    # ------------------------------------------------------------------
    async def settle(self) -> int:
        """Deliver all in-flight subscription updates (§2.4)."""
        return self.cluster.settle()

    async def settle_cdc(self) -> int:
        """Drain every live node's change feed, then settle the
        cluster's own subscription traffic (pump-driven maintenance may
        have produced forwardable updates)."""
        consumed = sum(
            node.server.settle_cdc()
            for node in self.cluster.nodes
            if node.name not in self.cluster.dead
        )
        if consumed:
            self.cluster.settle()
        return consumed

    def session(self, affinity: str) -> Session:
        """A read-your-own-writes session pinned to ``S(affinity)``."""
        return self.cluster.session(affinity)
