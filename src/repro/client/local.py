"""LocalClient: the sync facade over an in-process async backend.

The zero-deployment backend — what the paper calls the single-machine
configuration (§5.2).  The implementation lives in
:class:`~repro.client.aio.AsyncLocalClient`; this facade owns an event
loop and drives it per operation, with a fast path for the common case
(in-process operations complete without ever suspending, so the
coroutine can be stepped to completion directly — no loop round trip
on the hot path).
"""

from __future__ import annotations

from typing import Awaitable, Optional, TypeVar

from ..core.server import PequodServer
from .aio import AsyncLocalClient
from .base import PequodClient

T = TypeVar("T")


class LocalClient(PequodClient):
    """Drive an in-process :class:`PequodServer`.

    Accepts an existing server (sharing it with direct callers is
    fine — both see the same store) or builds one from the keyword
    arguments, which mirror the server's tunables::

        client = LocalClient(subtable_config={"t": 2})
    """

    backend = "local"

    def __init__(
        self, server: Optional[PequodServer] = None, **server_kwargs
    ) -> None:
        self._adopt(AsyncLocalClient(server, **server_kwargs))

    @property
    def server(self) -> PequodServer:
        """The in-process server (tests and benchmarks poke it)."""
        return self._async.server  # type: ignore[attr-defined]

    def _run(self, coro: Awaitable[T]) -> T:
        # In-process operations never suspend: AsyncLocalClient's
        # primitives are straight-line calls into the engine, so the
        # coroutine runs to StopIteration on its first step.  Stepping
        # it directly skips the event-loop round trip per operation;
        # anything that genuinely suspends (watch streams — see
        # ``_run_wait``) still takes the loop.
        try:
            coro.send(None)  # type: ignore[attr-defined]
        except StopIteration as stop:
            return stop.value
        raise AssertionError(
            "local client coroutine suspended; use _run_wait"
        )  # pragma: no cover - invariant of AsyncLocalClient
