"""LocalClient: the unified client over an in-process PequodServer.

The zero-deployment backend — what the paper calls the single-machine
configuration (§5.2).  Every operation is a direct method call into the
join engine, so this is also the semantic reference the other backends
are conformance-tested against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.joins import JoinError
from ..core.pattern import PatternError
from ..core.server import PequodServer
from .base import BatchLike, JoinLike, PequodClient, join_text
from .errors import BadRequestError, JoinSpecError


class LocalClient(PequodClient):
    """Drive an in-process :class:`PequodServer`.

    Accepts an existing server (sharing it with direct callers is
    fine — both see the same store) or builds one from the keyword
    arguments, which mirror the server's tunables::

        client = LocalClient(subtable_config={"t": 2})
    """

    backend = "local"

    def __init__(
        self, server: Optional[PequodServer] = None, **server_kwargs
    ) -> None:
        if server is not None and server_kwargs:
            raise BadRequestError(
                "pass either an existing server or server kwargs, not both"
            )
        self.server = (
            server if server is not None else PequodServer(**server_kwargs)
        )

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[str]:
        return self.server.get(key)

    def put(self, key: str, value: str) -> None:
        self.check_value(value)
        self.server.put(key, value)

    def remove(self, key: str) -> bool:
        return self.server.remove(key)

    def scan(self, first: str, last: str) -> List[Tuple[str, str]]:
        return self.server.scan(first, last)

    def add_join(self, join: JoinLike) -> List[str]:
        try:
            # One spec, one server call: the whole install is atomic.
            installed = self.server.add_join(join_text(join))
        except (JoinError, PatternError) as exc:
            raise JoinSpecError(str(exc)) from exc
        return [j.text for j in installed]

    def apply_batch(self, batch: BatchLike) -> int:
        return self.server.apply_batch(self.checked_ops(batch))

    def stats(self) -> Dict[str, float]:
        return self.server.stats.snapshot()
