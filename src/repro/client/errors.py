"""One exception hierarchy for every Pequod client backend.

The paper presents a single cache abstraction; its failures should look
the same whether the cache is in-process, across a TCP connection, or a
cluster.  Every :class:`~repro.client.base.PequodClient` backend maps
its transport's native faults onto these types:

* :class:`BadRequestError` — the caller's arguments were invalid (a
  non-string value, a malformed batch, an unknown method).
* :class:`JoinSpecError` — a cache join failed to parse or failed
  installation-time validation (§3's add-join checks).  A subclass of
  :class:`BadRequestError`: a bad join is a bad request.
* :class:`NotFoundError` — the request was well-formed but named
  something that does not exist (an unknown watch subscription, a
  missing-key engine fault).  Distinct from :class:`BadRequestError`
  so "that thing isn't there" never masquerades as "your request was
  malformed"; also a :class:`KeyError` for idiomatic handling.
* :class:`ServerError` — the server faulted while executing a
  well-formed request.
* :class:`OverloadError` — admission control shed the request (load
  control; see ``repro.core.load``).  Also a subclass of the core
  ``OverloadError`` so engine-level handlers catch it unchanged.
* :class:`TransportError` — the request never completed: connection
  refused/reset, protocol framing errors, client used after close.

Remote backends reconstruct the right type from the error code the RPC
server attaches to failure responses (``repro.net.protocol``), so
``except JoinSpecError:`` behaves identically on all backends.
"""

from __future__ import annotations

from ..core.load import OverloadError as CoreOverloadError
from ..net import protocol


class ClientError(Exception):
    """Base class for every Pequod client failure."""


class BadRequestError(ClientError, ValueError):
    """The request was invalid before any work happened."""


class JoinSpecError(BadRequestError):
    """A cache join failed parsing or add-join validation (§3)."""


class NotFoundError(ClientError, KeyError):
    """The request named something that does not exist."""

    def __str__(self) -> str:
        # KeyError.__str__ repr()s its argument; keep messages plain.
        return Exception.__str__(self)


class ServerError(ClientError):
    """The server faulted while executing the request."""


class OverloadError(ServerError, CoreOverloadError):
    """Admission control refused the request: the server is overloaded.

    Multiple inheritance keeps both ``except`` spellings working: code
    written against the client API catches :class:`ClientError` /
    :class:`ServerError`, code written against the core server catches
    ``repro.core.load.OverloadError`` — local backends re-raise the
    engine's exception as this type.
    """


class TransportError(ClientError):
    """The request could not be delivered or completed."""


class WrongOwnerError(ServerError):
    """The addressed node no longer owns the key's range.

    The cluster's write fence: a migration or failover bumped the
    partition-map version, and this node's map says the operation
    belongs elsewhere.  Cluster clients catch this internally —
    refresh the map, re-route, retry — so it only escapes when a
    client keeps losing the race (or talks to the cluster with a
    pinned stale map).
    """


#: RPC error code -> unified exception type.
_CODE_TYPES = {
    protocol.ERR_CODE_JOIN: JoinSpecError,
    protocol.ERR_CODE_BAD_REQUEST: BadRequestError,
    protocol.ERR_CODE_NOT_FOUND: NotFoundError,
    protocol.ERR_CODE_SERVER: ServerError,
    protocol.ERR_CODE_OVERLOAD: OverloadError,
    protocol.ERR_CODE_WRONG_OWNER: WrongOwnerError,
}


def error_for_code(code: str, message: str) -> ClientError:
    """The unified exception for one RPC error code."""
    return _CODE_TYPES.get(code, ServerError)(message)
