"""One Pequod client API: local, RPC, and cluster deployments behind
a single interface.

::

    from repro.client import join, make_client

    with make_client("rpc") as client:          # or "local" / "cluster"
        client.add_join(join("t|<user>|<time>|<poster>")
                        .check("s|<user>|<poster>")
                        .copy("p|<poster>|<time>"))
        client.put("s|ann|bob", "1")
        client.put("p|bob|0100", "hello!")
        client.settle()                          # no-op off-cluster
        client.scan_prefix("t|ann|")

See :mod:`repro.client.base` for the interface contract,
:mod:`repro.client.errors` for the unified failure types, and
:mod:`repro.client.builder` for the fluent join builder.
"""

from .base import BatchLike, JoinLike, PequodClient, join_text
from .builder import JoinBuilder, join
from .cluster import ClusterClient, default_affinity
from .errors import (
    BadRequestError,
    ClientError,
    JoinSpecError,
    ServerError,
    TransportError,
    error_for_code,
)
from .factory import BACKENDS, make_client
from .local import LocalClient
from .remote import RemoteClient

__all__ = [
    "BACKENDS",
    "BadRequestError",
    "BatchLike",
    "ClientError",
    "ClusterClient",
    "JoinBuilder",
    "JoinLike",
    "JoinSpecError",
    "LocalClient",
    "PequodClient",
    "RemoteClient",
    "ServerError",
    "TransportError",
    "default_affinity",
    "error_for_code",
    "join",
    "join_text",
    "make_client",
]
