"""One Pequod client API — async-native, with sync facades — over
local, RPC, and cluster deployments.

The primary surface is the event-driven async API (the paper's
clients keep many RPCs outstanding, §5.1, and its servers push
updates, §2.4)::

    from repro.client import make_async_client

    client = await make_async_client("rpc")      # or "local" / "cluster"
    await client.add_join("t|<u>|<tm>|<p> = "
                          "check s|<u>|<p> copy p|<p>|<tm>")
    await client.put("s|ann|bob", "1")
    await client.scan_prefix("t|ann|")           # materialize the timeline
    watch = await client.watch("t|ann|", "t|ann}")
    await client.put("p|bob|0100", "hello!")     # maintained, then pushed
    async for event in watch:                    # pushed, not polled
        print(event.key, event.new)

Synchronous applications use the blocking facades — each sync client
owns one event loop over the same async core::

    from repro.client import join, make_client

    with make_client("rpc") as client:           # or "local" / "cluster"
        client.add_join(join("t|<user>|<time>|<poster>")
                        .check("s|<user>|<poster>")
                        .copy("p|<poster>|<time>"))
        client.put("s|ann|bob", "1")
        client.put("p|bob|0100", "hello!")
        client.settle()                          # no-op off-cluster
        client.scan_prefix("t|ann|")
        watch = client.iter_watch("t|ann|", "t|ann}")

See :mod:`repro.client.aio` for the async interface contract,
:mod:`repro.client.base` for the sync facade, :mod:`repro.client.errors`
for the unified failure types, and :mod:`repro.client.builder` for the
fluent join builder.
"""

from ..core.hub import ChangeEvent
from .aio import (
    AsyncClusterClient,
    AsyncLocalClient,
    AsyncPequodClient,
    AsyncRemoteClient,
    AsyncWriteBatch,
    Watch,
    default_affinity,
)
from .base import (
    BatchLike,
    JoinLike,
    PequodClient,
    SyncWatch,
    check_value,
    checked_ops,
    join_text,
)
from .builder import JoinBuilder, join
from .cluster import ClusterClient
from .errors import (
    BadRequestError,
    ClientError,
    JoinSpecError,
    NotFoundError,
    OverloadError,
    ServerError,
    TransportError,
    error_for_code,
)
from .factory import BACKENDS, make_async_client, make_client
from .local import LocalClient
from .procs import AsyncProcClusterClient, ProcClusterClient
from .remote import RemoteClient

__all__ = [
    "BACKENDS",
    "AsyncClusterClient",
    "AsyncLocalClient",
    "AsyncPequodClient",
    "AsyncProcClusterClient",
    "AsyncRemoteClient",
    "AsyncWriteBatch",
    "BadRequestError",
    "BatchLike",
    "ChangeEvent",
    "ClientError",
    "ClusterClient",
    "JoinBuilder",
    "JoinLike",
    "JoinSpecError",
    "LocalClient",
    "NotFoundError",
    "OverloadError",
    "PequodClient",
    "ProcClusterClient",
    "RemoteClient",
    "ServerError",
    "SyncWatch",
    "TransportError",
    "Watch",
    "check_value",
    "checked_ops",
    "default_affinity",
    "error_for_code",
    "join",
    "join_text",
    "make_async_client",
    "make_client",
]
