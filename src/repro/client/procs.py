"""The unified client for a real multi-process Pequod cluster.

:class:`AsyncProcClusterClient` speaks the ordinary RPC protocol to
every node of a :class:`~repro.distrib.procs.ProcCluster`, routing by
a cached :class:`~repro.distrib.partition_map.PartitionMap`:

* point ops go to the key's primary; writes additionally fan to its
  replicas (``replica_batch``) and acknowledge only when every copy
  has applied — which is why killing any single node loses no
  acknowledged base write;
* batches group by owner, ship as one coalesced ``batch`` per primary
  plus one ``replica_batch`` per replica, pipelined through
  :meth:`~repro.net.rpc_client.RpcClient.call_windowed`;
* range reads split along the map's slices, fan out windowed per
  node, and concatenate in global key order;
* ``watch`` subscribes on EVERY node — the nodes' ownership-gated
  change hubs guarantee each committed change surfaces exactly once
  cluster-wide, and the merged stream survives any single node dying.

Reconfiguration is invisible at this surface: a write that races a
live migration gets :class:`~repro.client.errors.WrongOwnerError`
from the old owner, so the client refreshes its map from the cluster
and retries against the new one; a node death surfaces as
:class:`~repro.client.errors.TransportError`, handled the same way
once the coordinator has promoted a replica.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.hub import ChangeEvent
from ..distrib.partition_map import PartitionMap
from ..metrics import label_by_node, merge_snapshots
from ..net import protocol
from ..net.rpc_client import RpcClient, RpcError
from ..store.batch import PUT
from .aio import AsyncPequodClient, Watch
from .base import (
    BatchLike,
    JoinLike,
    PequodClient,
    check_value,
    checked_ops,
    join_text,
)
from .errors import (
    BadRequestError,
    TransportError,
    WrongOwnerError,
    error_for_code,
)

#: Pipelined window depth for per-node fan-out (scans, batch groups).
FANOUT_DEPTH = 32

#: How often (and how long) to retry through a reconfiguration.
RETRY_ATTEMPTS = 80
RETRY_DELAY = 0.025


class AsyncProcClusterClient(AsyncPequodClient):
    """Drive a partitioned multi-process cluster over real TCP."""

    backend = "procs"

    def __init__(self, endpoints: Sequence[Tuple[str, int]]) -> None:
        if not endpoints:
            raise BadRequestError("need at least one cluster endpoint")
        self._bootstrap = list(endpoints)
        self.map: Optional[PartitionMap] = None
        self._conns: Dict[str, RpcClient] = {}
        self._closed = False

    @classmethod
    async def open(
        cls, endpoints: Sequence[Tuple[str, int]]
    ) -> "AsyncProcClusterClient":
        client = cls(endpoints)
        await client.refresh_map()
        return client

    # ------------------------------------------------------------------
    # Map + connections
    # ------------------------------------------------------------------
    async def refresh_map(self) -> PartitionMap:
        """(Re)load the partition map, preferring live node
        connections and falling back to the bootstrap endpoints."""
        last_exc: Optional[Exception] = None
        for conn in list(self._conns.values()):
            try:
                wire = await conn.call("partition_map")
                if wire is not None:
                    return self._adopt_map(PartitionMap.from_wire(wire))
            except Exception as exc:  # noqa: BLE001 - try the next node
                last_exc = exc
        for host, port in self._bootstrap:
            conn = RpcClient(host, port)
            try:
                await conn.connect()
                wire = await conn.call("partition_map")
            except Exception as exc:  # noqa: BLE001 - try the next node
                last_exc = exc
                await conn.close()
                continue
            await conn.close()
            if wire is not None:
                return self._adopt_map(PartitionMap.from_wire(wire))
        raise TransportError(
            f"no cluster endpoint served a partition map: {last_exc}"
        )

    def _adopt_map(self, new_map: PartitionMap) -> PartitionMap:
        if self.map is None or new_map.version > self.map.version:
            self.map = new_map
        return self.map

    def _map(self) -> PartitionMap:
        if self.map is None:
            raise TransportError("client has no partition map; call open()")
        return self.map

    async def _conn(self, name: str) -> RpcClient:
        if self._closed:
            raise TransportError("client is closed")
        conn = self._conns.get(name)
        if conn is None:
            try:
                host, port, _peer = self._map().nodes[name]
            except KeyError:
                raise TransportError(f"no such cluster node {name!r}")
            conn = RpcClient(host, port)
            try:
                await conn.connect()
            except OSError as exc:
                raise TransportError(
                    f"cannot connect to {name} at {host}:{port}: {exc}"
                ) from exc
            # A concurrent caller may have connected first; keep one.
            existing = self._conns.get(name)
            if existing is not None:
                await conn.close()
                return existing
            self._conns[name] = conn
        return conn

    async def _drop_conn(self, name: str) -> None:
        conn = self._conns.pop(name, None)
        if conn is not None:
            await conn.close()

    # ------------------------------------------------------------------
    # Retry-through-reconfiguration
    # ------------------------------------------------------------------
    async def _call_node(self, name: str, method: str, *args):
        conn = await self._conn(name)
        try:
            return await conn.call(method, *args)
        except RpcError as exc:
            raise error_for_code(exc.code, str(exc)) from exc
        except (OSError, RuntimeError) as exc:
            await self._drop_conn(name)
            raise TransportError(f"rpc {method} to {name} failed: {exc}") from exc

    async def _routed(self, op: Callable[[], Any]):
        """Run ``op`` (which routes by ``self.map``), refreshing the
        map and retrying when it hits a reconfiguration in flight."""
        last_exc: Exception = TransportError("unreachable")
        for attempt in range(RETRY_ATTEMPTS):
            try:
                return await op()
            except (WrongOwnerError, TransportError) as exc:
                last_exc = exc
                if self._closed:
                    raise
                if attempt + 1 < RETRY_ATTEMPTS:
                    await asyncio.sleep(RETRY_DELAY)
                    try:
                        await self.refresh_map()
                    except TransportError:
                        pass  # whole cluster unreachable right now; retry
        raise last_exc

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------
    async def get(self, key: str) -> Optional[str]:
        return await self._routed(
            lambda: self._call_node(self._map().owner_of(key), "get", key)
        )

    async def put(self, key: str, value: str) -> None:
        check_value(value)
        await self._routed(lambda: self._fan_write([(key, value)]))

    async def remove(self, key: str) -> bool:
        result = await self._routed(
            lambda: self._call_node(self._map().owner_of(key), "remove", key)
        )
        await self._routed(lambda: self._fan_replicas([(key, None)]))
        return bool(result)

    async def _fan_write(self, pairs: List[Tuple[str, Optional[str]]]):
        """One write shipment: primary batch + replica copies, ALL
        acknowledged before the caller's await returns (the
        zero-acknowledged-loss contract)."""
        pmap = self._map()
        if len(pairs) == 1 and pairs[0][1] is not None:
            key, value = pairs[0]
            await self._call_node(pmap.owner_of(key), "put", key, value)
        else:
            by_primary: Dict[str, List[Tuple[str, Optional[str]]]] = {}
            for key, value in pairs:
                by_primary.setdefault(pmap.owner_of(key), []).append(
                    (key, value)
                )
            await asyncio.gather(
                *(
                    self._call_node(
                        name, "batch", *protocol.encode_batch_args(group)
                    )
                    for name, group in by_primary.items()
                )
            )
        await self._fan_replicas(pairs)

    async def _fan_replicas(self, pairs: List[Tuple[str, Optional[str]]]):
        pmap = self._map()
        by_replica: Dict[str, List[Tuple[str, Optional[str]]]] = {}
        for key, value in pairs:
            for name in pmap.replicas_of(key):
                by_replica.setdefault(name, []).append((key, value))
        if by_replica:
            await asyncio.gather(
                *(
                    self._call_node(
                        name,
                        "replica_batch",
                        *protocol.encode_batch_args(group),
                    )
                    for name, group in by_replica.items()
                )
            )

    # ------------------------------------------------------------------
    # Batches (windowed per-node fan-out)
    # ------------------------------------------------------------------
    async def apply_batch(self, batch: BatchLike) -> int:
        pairs = [
            (op.key, op.value if op.kind == PUT else None)
            for op in checked_ops(batch)
        ]
        if not pairs:
            return 0
        await self._routed(lambda: self._apply_grouped(pairs))
        return len(pairs)

    async def _apply_grouped(self, pairs: List[Tuple[str, Optional[str]]]):
        """Group a coalesced batch by node and ship every group down
        each node's connection with a bounded pipeline window."""
        pmap = self._map()
        primary: Dict[str, List[Tuple[str, Optional[str]]]] = {}
        replica: Dict[str, List[Tuple[str, Optional[str]]]] = {}
        for key, value in pairs:
            primary.setdefault(pmap.owner_of(key), []).append((key, value))
            for name in pmap.replicas_of(key):
                replica.setdefault(name, []).append((key, value))
        per_node: Dict[str, List[Tuple[str, List[Any]]]] = {}
        for name, group in primary.items():
            per_node.setdefault(name, []).append(
                ("batch", protocol.encode_batch_args(group))
            )
        for name, group in replica.items():
            per_node.setdefault(name, []).append(
                ("replica_batch", protocol.encode_batch_args(group))
            )

        async def ship(name: str, calls) -> None:
            conn = await self._conn(name)
            try:
                await conn.call_windowed(calls, FANOUT_DEPTH)
            except RpcError as exc:
                raise error_for_code(exc.code, str(exc)) from exc
            except (OSError, RuntimeError) as exc:
                await self._drop_conn(name)
                raise TransportError(
                    f"batch to {name} failed: {exc}"
                ) from exc

        await asyncio.gather(
            *(ship(name, calls) for name, calls in per_node.items())
        )

    async def put_many(self, pairs: Iterable[Tuple[str, str]]) -> int:
        return await self.apply_batch(list(pairs))

    # ------------------------------------------------------------------
    # Range reads (sliced per owner, windowed, reassembled in order)
    # ------------------------------------------------------------------
    async def scan(self, first: str, last: str) -> List[Tuple[str, str]]:
        return await self._routed(lambda: self._scan_sliced(first, last))

    async def _scan_sliced(self, first: str, last: str):
        pmap = self._map()
        slices = [
            (lo, hi, r.primary)
            for lo, hi, r in pmap.slices(first, last)
            if lo < hi
        ]
        if len(slices) == 1:
            lo, hi, name = slices[0]
            rows = await self._call_node(name, "scan", lo, hi)
            return [tuple(pair) for pair in rows]
        by_node: Dict[str, List[int]] = {}
        for i, (_lo, _hi, name) in enumerate(slices):
            by_node.setdefault(name, []).append(i)
        results: List[Any] = [None] * len(slices)

        async def ship(name: str, indexes: List[int]) -> None:
            conn = await self._conn(name)
            calls = [
                ("scan", [slices[i][0], slices[i][1]]) for i in indexes
            ]
            try:
                outs = await conn.call_windowed(calls, FANOUT_DEPTH)
            except RpcError as exc:
                raise error_for_code(exc.code, str(exc)) from exc
            except (OSError, RuntimeError) as exc:
                await self._drop_conn(name)
                raise TransportError(f"scan on {name} failed: {exc}") from exc
            for i, rows in zip(indexes, outs):
                results[i] = rows

        await asyncio.gather(
            *(ship(name, indexes) for name, indexes in by_node.items())
        )
        out: List[Tuple[str, str]] = []
        for rows in results:
            out.extend(tuple(pair) for pair in rows)
        return out

    async def scan_prefix(self, prefix: str) -> List[Tuple[str, str]]:
        from ..store.keys import prefix_upper_bound

        return await self.scan(prefix, prefix_upper_bound(prefix))

    async def count(self, first: str, last: str) -> int:
        async def counted() -> int:
            pmap = self._map()
            slices = [
                (lo, hi, r.primary)
                for lo, hi, r in pmap.slices(first, last)
                if lo < hi
            ]
            counts = await asyncio.gather(
                *(
                    self._call_node(name, "count", lo, hi)
                    for lo, hi, name in slices
                )
            )
            return sum(counts)

        return await self._routed(counted)

    # ------------------------------------------------------------------
    # Cluster-wide operations
    # ------------------------------------------------------------------
    async def add_join(self, join: JoinLike) -> List[str]:
        text = join_text(join)

        async def install() -> List[str]:
            names = sorted(self._map().nodes)
            results = await asyncio.gather(
                *(self._call_node(name, "add_join", text) for name in names)
            )
            return results[0]

        return await self._routed(install)

    async def stats(self) -> Dict[str, float]:
        """Cluster stats with per-node attribution: every series tagged
        ``{node="..."}``, plus untagged cluster-wide aggregates."""

        async def gather_stats() -> Dict[str, float]:
            names = sorted(self._map().nodes)
            snaps = await asyncio.gather(
                *(self._call_node(name, "stats") for name in names)
            )
            per_node = dict(zip(names, snaps))
            merged = label_by_node(per_node)
            merged.update(merge_snapshots(per_node.values()))
            merged["cluster_nodes"] = float(len(names))
            return merged

        return await self._routed(gather_stats)

    async def cluster_info(self) -> Dict[str, dict]:
        async def gather_info() -> Dict[str, dict]:
            names = sorted(self._map().nodes)
            infos = await asyncio.gather(
                *(self._call_node(name, "cluster_info") for name in names)
            )
            return dict(zip(names, infos))

        return await self._routed(gather_info)

    async def settle(self) -> int:
        """Wait until inter-node maintenance traffic has drained:
        pairwise sent==applied across live nodes, nothing in flight,
        stable for two polls."""
        rounds = 0
        stable = 0
        while stable < 2:
            rounds += 1
            if rounds > 2000:
                raise TransportError("cluster settle timeout")

            async def poll() -> Dict[str, dict]:
                names = sorted(self._map().nodes)
                counters = await asyncio.gather(
                    *(
                        self._call_node(name, "cluster_settle")
                        for name in names
                    )
                )
                return dict(zip(names, counters))

            try:
                counters = await self._routed(poll)
            except TransportError:
                raise
            names = list(counters)
            quiet = all(
                c["inflight"] == 0 and c["queued"] == 0
                for c in counters.values()
            ) and all(
                counters[src]["sent_to"].get(dst, 0)
                == counters[dst]["applied_from"].get(src, 0)
                for src in names
                for dst in names
                if dst != src
            )
            stable = stable + 1 if quiet else 0
            if stable < 2:
                await asyncio.sleep(0.01)
        return rounds

    async def settle_cdc(self) -> int:
        """Write-around convergence barrier across the cluster: drain
        every node's change feed into its cache, then settle the
        inter-node maintenance traffic the drained records produced.
        Loops until a full pass consumes nothing new."""
        total = 0
        while True:

            async def drain() -> int:
                names = sorted(self._map().nodes)
                counts = await asyncio.gather(
                    *(
                        self._call_node(name, "settle_cdc")
                        for name in names
                    )
                )
                return sum(counts)

            consumed = await self._routed(drain)
            total += consumed
            if not consumed:
                return total
            await self.settle()

    # ------------------------------------------------------------------
    # Watch (all-node subscription; server gates make it exactly-once)
    # ------------------------------------------------------------------
    async def watch(self, lo: str, hi: str) -> Watch:
        if not lo < hi:
            raise BadRequestError(f"empty watch range [{lo!r}, {hi!r})")
        pmap = self._map()
        names = sorted(pmap.nodes)
        subs: List[Tuple[str, RpcClient, int]] = []
        for name in names:
            conn = await self._conn(name)
            try:
                sub_id = await conn.call("subscribe", lo, hi)
            except RpcError as exc:
                raise error_for_code(exc.code, str(exc)) from exc
            subs.append((name, conn, sub_id))

        live = {name for name, _, _ in subs}

        async def unsubscribe() -> None:
            for name, conn, sub_id in subs:
                conn.drop_push_sink(sub_id)
                try:
                    await conn.call("unsubscribe", sub_id)
                except Exception:  # noqa: BLE001 - node may be gone
                    pass

        watch = Watch(lo, hi, on_close=unsubscribe)

        def sink_for(name: str):
            def sink(events: Optional[List[ChangeEvent]]) -> None:
                if events is None:
                    # One node died; its keys re-home and their events
                    # continue from the promoted owner's stream.  Only
                    # a fully dead cluster ends the watch.
                    live.discard(name)
                    if not live:
                        watch._push_end()
                    return
                for event in events:
                    watch._push(event)

            return sink

        for name, conn, sub_id in subs:
            conn.set_push_sink(sub_id, sink_for(name))
        return watch

    # ------------------------------------------------------------------
    async def aclose(self) -> None:
        self._closed = True
        conns, self._conns = self._conns, {}
        for conn in conns.values():
            await conn.close()


class ProcClusterClient(PequodClient):
    """Blocking facade over :class:`AsyncProcClusterClient`."""

    backend = "procs"

    def __init__(self, endpoints: Sequence[Tuple[str, int]]) -> None:
        self._adopt(AsyncProcClusterClient(endpoints))
        self._run(self._async.refresh_map())  # type: ignore[attr-defined]

    @classmethod
    def for_cluster(cls, cluster) -> "ProcClusterClient":
        """A client for a :class:`~repro.distrib.procs.ProcCluster`."""
        return cls(cluster.client_addresses())

    @property
    def map(self) -> Optional[PartitionMap]:
        return self._async.map  # type: ignore[attr-defined]

    def refresh_map(self) -> PartitionMap:
        return self._run(self._async.refresh_map())  # type: ignore[attr-defined]

    def cluster_info(self) -> Dict[str, dict]:
        return self._run(self._async.cluster_info())  # type: ignore[attr-defined]
