"""The synchronous Pequod client interface — a facade over the async
core.

The paper presents one cache abstraction — ``get``, ``put``,
``remove``, ``scan`` plus add-join (§2) — independent of where the
cache runs.  The *primary* implementation of that abstraction is the
event-driven async API of :mod:`repro.client.aio` (the paper's clients
are event-driven, §5.1); :class:`PequodClient` is its blocking facade
for synchronous applications: every sync client owns one private event
loop and an async backend, and each operation drives the loop until
the corresponding coroutine completes.  There is therefore exactly one
implementation of each backend:

* :class:`~repro.client.local.LocalClient` — over
  :class:`~repro.client.aio.AsyncLocalClient` (in-process server);
* :class:`~repro.client.remote.RemoteClient` — over
  :class:`~repro.client.aio.AsyncRemoteClient` (pipelined TCP RPC);
* :class:`~repro.client.cluster.ClusterClient` — over
  :class:`~repro.client.aio.AsyncClusterClient` (distributed
  deployment, §2.4).

All backends share the typed operation set below, the exception
hierarchy of :mod:`repro.client.errors`, and identical semantics for
results.  The only deliberate semantic difference is freshness: a
cluster propagates updates asynchronously (§2.4's eventual
consistency), so :meth:`settle` — a no-op on the other backends —
delivers in-flight maintenance when a caller needs a globally
consistent view.  Server-push watch streams (§2.4) surface here as
:meth:`iter_watch`, a blocking view over the async ``watch`` stream.
"""

from __future__ import annotations

import asyncio
from typing import (
    TYPE_CHECKING,
    Awaitable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from ..core.joins import CacheJoin
from ..store.batch import BatchOp, WriteBatch, as_ops
from .builder import JoinBuilder
from .errors import BadRequestError, ClientError, TransportError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..core.hub import ChangeEvent
    from .aio import AsyncPequodClient, Watch

T = TypeVar("T")

#: Anything a client's ``add_join`` accepts: grammar text (possibly
#: several ';'-separated joins), a compiled join, a fluent builder, or
#: a sequence of any of those.
JoinLike = Union[str, CacheJoin, JoinBuilder, Sequence["JoinLike"]]

#: Anything a client's ``apply_batch`` accepts: a WriteBatch or
#: (key, value_or_None) pairs, None meaning remove.
BatchLike = Union[WriteBatch, Iterable[Tuple[str, Union[str, None]]]]


def join_text(join: JoinLike) -> str:
    """Normalize any accepted join form to ONE grammar-text spec.

    Text is passed through verbatim (it may hold several joins);
    compiled joins and builders contribute their normalized text;
    sequences join on statement separators.  Parsing/validation
    happens at the server — so every backend rejects the same specs
    with the same :class:`JoinSpecError` — and one spec installs
    atomically there, however many statements it holds.
    """
    if isinstance(join, str):
        return join
    if isinstance(join, CacheJoin):
        return join.text
    if isinstance(join, JoinBuilder):
        return join.build().text
    if isinstance(join, Sequence):
        # ";\n" (not bare ";") so a line comment ending one text
        # cannot swallow the next statement.
        return ";\n".join(join_text(item) for item in join)
    raise BadRequestError(f"cannot interpret {join!r} as a cache join")


def check_value(value: str) -> None:
    """Uniform argument validation: Pequod values are strings."""
    if not isinstance(value, str):
        raise BadRequestError(
            f"Pequod values are strings, got {type(value).__name__}"
        )


def checked_ops(batch: BatchLike) -> List[BatchOp]:
    """Coalesce any accepted batch form, surfacing malformed batches
    (non-string values, empty keys) as the unified
    :class:`BadRequestError` on every backend."""
    try:
        return as_ops(batch)
    except ClientError:
        raise
    except (TypeError, ValueError) as exc:
        raise BadRequestError(f"malformed batch: {exc}") from exc


class SyncWatch:
    """A blocking view of an async :class:`~repro.client.aio.Watch`.

    Produced by :meth:`PequodClient.iter_watch`.  Each call drives the
    owning client's event loop, so pushed frames keep arriving while
    the caller waits::

        watch = client.iter_watch("t|ann|", "t|ann}")
        client.put("p|bob|0100", "hello!")
        event = watch.next(timeout=1.0)

    Iterating a ``SyncWatch`` blocks for each next event until the
    stream is closed; :meth:`next` with a timeout and :meth:`drain`
    give non-blocking-ish access.
    """

    def __init__(self, client: "PequodClient", watch: "Watch") -> None:
        self._client = client
        self.watch = watch

    @property
    def lo(self) -> str:
        return self.watch.lo

    @property
    def hi(self) -> str:
        return self.watch.hi

    def next(self, timeout: Optional[float] = None) -> Optional["ChangeEvent"]:
        """The next change, or None when the stream ended or
        ``timeout`` seconds passed without one."""
        return self._client._run_wait(self.watch.next_event(timeout))

    def drain(self, settle: float = 0.05) -> List["ChangeEvent"]:
        """Collect events until none arrives for ``settle`` seconds."""
        out: List["ChangeEvent"] = []
        while True:
            event = self.next(timeout=settle)
            if event is None:
                return out
            out.append(event)

    def __iter__(self):
        while True:
            event = self.next()
            if event is None:
                return
            yield event

    def close(self) -> None:
        self._client._run_wait(self.watch.close())

    def __enter__(self) -> "SyncWatch":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class PequodClient:
    """Abstract sync client for a Pequod cache, whatever its deployment.

    A facade: subclasses bind an :class:`~repro.client.aio` backend and
    a private event loop (see module docstring), and every operation
    below drives that loop.  Clients are context managers::

        with make_client("rpc") as client:
            client.add_join(join("t|<u>|<tm>|<p>")
                            .check("s|<u>|<p>").copy("p|<p>|<tm>"))
            client.put("s|ann|bob", "1")
    """

    #: Short backend tag ("local", "rpc", "cluster") for diagnostics.
    backend = "abstract"

    _async: "AsyncPequodClient"
    _loop: asyncio.AbstractEventLoop

    # ------------------------------------------------------------------
    # Facade plumbing
    # ------------------------------------------------------------------
    def _adopt(
        self,
        aclient: "AsyncPequodClient",
        loop: Optional[asyncio.AbstractEventLoop] = None,
    ) -> None:
        """Bind this facade to its async backend and owned loop."""
        self._async = aclient
        self._loop = loop if loop is not None else asyncio.new_event_loop()

    @classmethod
    def _from_async(
        cls, aclient: "AsyncPequodClient", loop: asyncio.AbstractEventLoop
    ) -> "PequodClient":
        """Wrap an already-built async backend (factory path)."""
        self = cls.__new__(cls)
        self._adopt(aclient, loop)
        return self

    def _run(self, coro: Awaitable[T]) -> T:
        """Drive the owned loop until ``coro`` completes."""
        return self._run_wait(coro)

    def _run_wait(self, coro: Awaitable[T]) -> T:
        if self._loop.is_closed():
            coro.close()  # type: ignore[attr-defined]
            raise TransportError("client is closed")
        return self._loop.run_until_complete(coro)

    # ------------------------------------------------------------------
    # Backend operations (each drives the async core)
    # ------------------------------------------------------------------
    def get(self, key: str) -> Union[str, None]:
        """The value for ``key``, computing overlapping joins on demand."""
        return self._run(self._async.get(key))

    def put(self, key: str, value: str) -> None:
        """Write ``key``; incremental maintenance runs before returning."""
        return self._run(self._async.put(key, value))

    def remove(self, key: str) -> bool:
        """Remove ``key``; True iff it was present (on every backend)."""
        return self._run(self._async.remove(key))

    def scan(self, first: str, last: str) -> List[Tuple[str, str]]:
        """Ordered pairs with ``first <= key < last`` (§2's scan)."""
        return self._run(self._async.scan(first, last))

    def add_join(self, join: JoinLike) -> List[str]:
        """Install cache joins; returns their normalized texts."""
        return self._run(self._async.add_join(join))

    def apply_batch(self, batch: BatchLike) -> int:
        """Apply a coalesced write batch as one maintenance pass;
        returns the number of net changes applied."""
        return self._run(self._async.apply_batch(batch))

    def stats(self) -> Dict[str, float]:
        """Server work counters (summed across servers on a cluster)."""
        return self._run(self._async.stats())

    def scan_prefix(self, prefix: str) -> List[Tuple[str, str]]:
        """All pairs whose keys start with ``prefix``."""
        return self._run(self._async.scan_prefix(prefix))

    def count(self, first: str, last: str) -> int:
        return self._run(self._async.count(first, last))

    def exists(self, key: str) -> bool:
        return self._run(self._async.exists(key))

    def put_many(self, pairs: Iterable[Tuple[str, str]]) -> int:
        """Batch-write ``(key, value)`` pairs; returns changes applied."""
        return self._run(self._async.put_many(pairs))

    def write_batch(self) -> WriteBatch:
        """A write batch bound to this client; applies on clean
        ``with`` exit or explicit :meth:`WriteBatch.apply`."""
        return WriteBatch(sink=self)

    # ------------------------------------------------------------------
    # Watch streams (server push, §2.4)
    # ------------------------------------------------------------------
    def iter_watch(self, lo: str, hi: str) -> SyncWatch:
        """A blocking stream of committed changes in ``[lo, hi)``.

        Every change committed after the call — client writes and
        maintained join outputs alike — is delivered exactly once, in
        commit order (per key: key-version order).  See
        :class:`SyncWatch`; close it to unsubscribe."""
        return SyncWatch(self, self._run_wait(self._async.watch(lo, hi)))

    # ------------------------------------------------------------------
    # Deployment hooks
    # ------------------------------------------------------------------
    def settle(self) -> int:
        """Deliver in-flight asynchronous maintenance; returns the
        number of messages delivered.  Local and RPC backends are
        synchronous, so this is 0 there; on a cluster it drains the
        network (§2.4's eventual consistency made momentarily exact)."""
        return self._run(self._async.settle())

    def settle_cdc(self) -> int:
        """Write-around convergence barrier: drain the change feed into
        the cache (see :mod:`repro.cdc`).  Returns records consumed; 0
        on write-through deployments."""
        return self._run(self._async.settle_cdc())

    def close(self) -> None:
        """Release backend resources; the client is unusable after."""
        loop = getattr(self, "_loop", None)
        if loop is None or loop.is_closed():
            return
        try:
            loop.run_until_complete(self._async.aclose())
        finally:
            loop.close()

    def __enter__(self) -> "PequodClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        loop = getattr(self, "_loop", None)
        if loop is not None and not loop.is_closed() and not loop.is_running():
            loop.close()

    # ------------------------------------------------------------------
    @staticmethod
    def check_value(value: str) -> None:
        """Uniform argument validation: Pequod values are strings."""
        check_value(value)

    @staticmethod
    def checked_ops(batch: BatchLike) -> List[BatchOp]:
        """See :func:`checked_ops`."""
        return checked_ops(batch)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} backend={self.backend!r}>"
