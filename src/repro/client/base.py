"""The unified Pequod client interface.

The paper presents one cache abstraction — ``get``, ``put``,
``remove``, ``scan`` plus add-join (§2) — independent of where the
cache runs.  :class:`PequodClient` is that abstraction as a Python
interface: applications, baselines, and benchmarks program against it,
and the deployment shape is chosen by picking a backend:

* :class:`~repro.client.local.LocalClient` — an in-process
  :class:`~repro.core.server.PequodServer`;
* :class:`~repro.client.remote.RemoteClient` — a Pequod server across
  TCP, via the pipelined RPC protocol (§5.1);
* :class:`~repro.client.cluster.ClusterClient` — a distributed
  deployment of base and compute servers (§2.4).

All backends share the typed operation set below, the exception
hierarchy of :mod:`repro.client.errors`, and identical semantics for
results (``remove`` returns whether the key was present on every
backend; batches coalesce per key everywhere).  The only deliberate
semantic difference is freshness: a cluster propagates updates
asynchronously (§2.4's eventual consistency), so :meth:`settle` —
a no-op on the other backends — delivers in-flight maintenance when a
caller needs a globally consistent view.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple, Union

from ..core.joins import CacheJoin
from ..store.batch import BatchOp, WriteBatch, as_ops
from ..store.keys import prefix_upper_bound
from .builder import JoinBuilder
from .errors import BadRequestError, ClientError

#: Anything a client's ``add_join`` accepts: grammar text (possibly
#: several ';'-separated joins), a compiled join, a fluent builder, or
#: a sequence of any of those.
JoinLike = Union[str, CacheJoin, JoinBuilder, Sequence["JoinLike"]]

#: Anything a client's ``apply_batch`` accepts: a WriteBatch or
#: (key, value_or_None) pairs, None meaning remove.
BatchLike = Union[WriteBatch, Iterable[Tuple[str, Union[str, None]]]]


def join_text(join: JoinLike) -> str:
    """Normalize any accepted join form to ONE grammar-text spec.

    Text is passed through verbatim (it may hold several joins);
    compiled joins and builders contribute their normalized text;
    sequences join on statement separators.  Parsing/validation
    happens at the server — so every backend rejects the same specs
    with the same :class:`JoinSpecError` — and one spec installs
    atomically there, however many statements it holds.
    """
    if isinstance(join, str):
        return join
    if isinstance(join, CacheJoin):
        return join.text
    if isinstance(join, JoinBuilder):
        return join.build().text
    if isinstance(join, Sequence):
        # ";\n" (not bare ";") so a line comment ending one text
        # cannot swallow the next statement.
        return ";\n".join(join_text(item) for item in join)
    raise BadRequestError(f"cannot interpret {join!r} as a cache join")


class PequodClient:
    """Abstract client for a Pequod cache, whatever its deployment.

    Subclasses implement the seven primitives marked *backend*; the
    convenience forms are derived here so their semantics can't drift
    between backends.  Clients are context managers::

        with make_client("rpc") as client:
            client.add_join(join("t|<u>|<tm>|<p>")
                            .check("s|<u>|<p>").copy("p|<p>|<tm>"))
            client.put("s|ann|bob", "1")
    """

    #: Short backend tag ("local", "rpc", "cluster") for diagnostics.
    backend = "abstract"

    # ------------------------------------------------------------------
    # Backend primitives
    # ------------------------------------------------------------------
    def get(self, key: str) -> Union[str, None]:
        """The value for ``key``, computing overlapping joins on demand."""
        raise NotImplementedError

    def put(self, key: str, value: str) -> None:
        """Write ``key``; incremental maintenance runs before returning."""
        raise NotImplementedError

    def remove(self, key: str) -> bool:
        """Remove ``key``; True iff it was present (on every backend)."""
        raise NotImplementedError

    def scan(self, first: str, last: str) -> List[Tuple[str, str]]:
        """Ordered pairs with ``first <= key < last`` (§2's scan)."""
        raise NotImplementedError

    def add_join(self, join: JoinLike) -> List[str]:
        """Install cache joins; returns their normalized texts."""
        raise NotImplementedError

    def apply_batch(self, batch: BatchLike) -> int:
        """Apply a coalesced write batch as one maintenance pass;
        returns the number of net changes applied."""
        raise NotImplementedError

    def stats(self) -> Dict[str, float]:
        """Server work counters (summed across servers on a cluster)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Derived operations — identical on every backend by construction
    # ------------------------------------------------------------------
    def scan_prefix(self, prefix: str) -> List[Tuple[str, str]]:
        """All pairs whose keys start with ``prefix``."""
        return self.scan(prefix, prefix_upper_bound(prefix))

    def count(self, first: str, last: str) -> int:
        return len(self.scan(first, last))

    def exists(self, key: str) -> bool:
        return self.get(key) is not None

    def write_batch(self) -> WriteBatch:
        """A write batch bound to this client; applies on clean
        ``with`` exit or explicit :meth:`WriteBatch.apply`."""
        return WriteBatch(sink=self)

    def put_many(self, pairs: Iterable[Tuple[str, str]]) -> int:
        """Batch-write ``(key, value)`` pairs; returns changes applied."""
        batch = WriteBatch()
        for key, value in pairs:
            self.check_value(value)
            batch.put(key, value)
        return self.apply_batch(batch)

    # ------------------------------------------------------------------
    # Deployment hooks
    # ------------------------------------------------------------------
    def settle(self) -> int:
        """Deliver in-flight asynchronous maintenance; returns the
        number of messages delivered.  Local and RPC backends are
        synchronous, so this is 0 there; on a cluster it drains the
        network (§2.4's eventual consistency made momentarily exact)."""
        return 0

    def close(self) -> None:
        """Release backend resources; the client is unusable after."""

    def __enter__(self) -> "PequodClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    @staticmethod
    def check_value(value: str) -> None:
        """Uniform argument validation: Pequod values are strings."""
        if not isinstance(value, str):
            raise BadRequestError(
                f"Pequod values are strings, got {type(value).__name__}"
            )

    @staticmethod
    def checked_ops(batch: BatchLike) -> List[BatchOp]:
        """Coalesce any accepted batch form, surfacing malformed
        batches (non-string values, empty keys) as the unified
        :class:`BadRequestError` on every backend."""
        try:
            return as_ops(batch)
        except ClientError:
            raise
        except (TypeError, ValueError) as exc:
            raise BadRequestError(f"malformed batch: {exc}") from exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} backend={self.backend!r}>"
