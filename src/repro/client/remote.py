"""RemoteClient: the unified client over TCP RPC (paper §5.1).

Wraps the pipelined RPC client in the synchronous ``PequodClient``
surface and maps wire-level failures onto the unified exception
hierarchy: the server attaches an error code to every failure response
(``repro.net.protocol``), so a join rejected over the network raises
the same :class:`JoinSpecError` an in-process installation would.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..net import protocol
from ..net.rpc_client import RpcError, SyncRpcClient
from ..store.batch import PUT
from .base import BatchLike, JoinLike, PequodClient, join_text
from .errors import TransportError, error_for_code


class RemoteClient(PequodClient):
    """Drive a Pequod RPC server at ``host:port``.

    Connection errors — at construction or on any later call — raise
    :class:`TransportError`; server-reported failures raise the typed
    error their code names.  ``close`` tears down the connection (and
    the private event loop under the synchronous facade).
    """

    backend = "rpc"

    def __init__(self, host: str = "127.0.0.1", port: int = 7709) -> None:
        self.host = host
        self.port = port
        try:
            self._rpc: Optional[SyncRpcClient] = SyncRpcClient(host, port)
        except OSError as exc:
            raise TransportError(
                f"cannot connect to pequod at {host}:{port}: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    def _call(self, method: str, *args):
        if self._rpc is None:
            raise TransportError("client is closed")
        try:
            return self._rpc.call(method, *args)
        except RpcError as exc:
            raise error_for_code(exc.code, str(exc)) from exc
        except (OSError, RuntimeError) as exc:
            raise TransportError(f"rpc {method} failed: {exc}") from exc

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[str]:
        return self._call("get", key)

    def put(self, key: str, value: str) -> None:
        self.check_value(value)
        self._call("put", key, value)

    def remove(self, key: str) -> bool:
        return bool(self._call("remove", key))

    def scan(self, first: str, last: str) -> List[Tuple[str, str]]:
        return [tuple(pair) for pair in self._call("scan", first, last)]

    def scan_prefix(self, prefix: str) -> List[Tuple[str, str]]:
        # One RPC instead of a client-side bound computation + scan.
        return [tuple(pair) for pair in self._call("scan_prefix", prefix)]

    def count(self, first: str, last: str) -> int:
        return self._call("count", first, last)

    def add_join(self, join: JoinLike) -> List[str]:
        # One spec, one RPC: the whole install is atomic server-side.
        return self._call("add_join", join_text(join))

    def apply_batch(self, batch: BatchLike) -> int:
        # checked_ops already coalesced and sorted; go straight to the
        # wire encoding rather than re-coalescing in the RPC layer.
        pairs = [
            (op.key, op.value if op.kind == PUT else None)
            for op in self.checked_ops(batch)
        ]
        if not pairs:
            return 0
        return self._call("batch", *protocol.encode_batch_args(pairs))

    def stats(self) -> Dict[str, float]:
        return self._call("stats")

    def ping(self) -> str:
        return self._call("ping")

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._rpc is not None:
            try:
                self._rpc.close()
            finally:
                self._rpc = None
