"""RemoteClient: the sync facade over the pipelined RPC backend.

The implementation lives in
:class:`~repro.client.aio.AsyncRemoteClient`, which drives the
pipelined :class:`~repro.net.rpc_client.RpcClient` directly (§5.1) —
this facade owns a private event loop and blocks on one operation at a
time, mapping wire-level failures onto the unified exception
hierarchy.  Watch subscriptions are true server push even here: the
server writes change frames whenever they commit, and the facade's
loop collects them while any call (or ``iter_watch``'s ``next``) runs.
"""

from __future__ import annotations

import asyncio

from .aio import AsyncRemoteClient
from .base import PequodClient


class RemoteClient(PequodClient):
    """Drive a Pequod RPC server at ``host:port``.

    Connection errors — at construction or on any later call — raise
    :class:`TransportError`; server-reported failures raise the typed
    error their code names.  ``close`` tears down the connection and
    the private event loop.
    """

    backend = "rpc"

    def __init__(self, host: str = "127.0.0.1", port: int = 7709) -> None:
        loop = asyncio.new_event_loop()
        try:
            aclient = loop.run_until_complete(AsyncRemoteClient.open(host, port))
        except BaseException:
            loop.close()
            raise
        self._adopt(aclient, loop)

    @property
    def host(self) -> str:
        return self._async.host  # type: ignore[attr-defined]

    @property
    def port(self) -> int:
        return self._async.port  # type: ignore[attr-defined]

    def ping(self) -> str:
        return self._run(self._async.ping())  # type: ignore[attr-defined]
