"""Backend selection: one call builds a client for any deployment.

``make_async_client("local" | "rpc" | "cluster")`` (a coroutine) is
the primary entry point: it builds an event-driven
:class:`~repro.client.aio.AsyncPequodClient` on the running loop.
``make_client`` is its synchronous counterpart — it builds the same
async backend on a private event loop and wraps it in the matching
blocking facade, which is how the CLI, the benchmark harness, and the
conformance tests pick a deployment shape without changing a line of
application code.

The "rpc" backend with no explicit ``port`` is self-contained — a
real asyncio RPC server on a loopback socket, owned by the returned
client, with every operation crossing genuine TCP framing and
dispatch.  Where that server lives follows the caller's model: for
``make_async_client`` it runs *on the same event loop as the client*
(the loop is live whenever anything awaits, so other connections are
served too); for the synchronous ``make_client`` it runs on its own
event-loop thread, because a sync facade's loop only runs while a call
is in flight and an in-loop server would be unreachable between calls.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Sequence, Tuple

from ..core.server import PequodServer
from ..distrib.cluster import Cluster
from ..net.rpc_server import RpcServer, ThreadedRpcService
from .aio import (
    AsyncClusterClient,
    AsyncLocalClient,
    AsyncPequodClient,
    AsyncRemoteClient,
)
from .base import JoinLike, PequodClient
from .cluster import ClusterClient
from .errors import BadRequestError, TransportError
from .local import LocalClient
from .procs import AsyncProcClusterClient, ProcClusterClient
from .remote import RemoteClient

BACKENDS = ("local", "rpc", "cluster", "procs")

#: Backend tag -> the sync facade class wrapping its async core.
_FACADES = {
    "local": LocalClient,
    "rpc": RemoteClient,
    "cluster": ClusterClient,
    "procs": ProcClusterClient,
}


class _AsyncEphemeralRemoteClient(AsyncRemoteClient):
    """An AsyncRemoteClient that owns the loopback server it talks to."""

    def __init__(self, service: RpcServer) -> None:
        super().__init__("127.0.0.1", service.port)
        self._service = service

    async def aclose(self) -> None:
        try:
            await super().aclose()
        finally:
            await self._service.stop()
            # One extra tick so closed transports detach their sockets
            # before a private loop goes away (avoids ResourceWarnings).
            await asyncio.sleep(0)


async def make_async_client(
    backend: str = "local",
    *,
    joins: Optional[JoinLike] = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
    base_count: int = 2,
    compute_count: int = 2,
    base_tables: Sequence[str] = (),
    endpoints: Optional[Sequence[Tuple[str, int]]] = None,
    **server_kwargs,
) -> AsyncPequodClient:
    """Build an :class:`AsyncPequodClient` for the named backend.

    * ``local`` — in-process server; ``server_kwargs`` reach
      :class:`PequodServer` (``subtable_config``, ``memory_limit``,
      ``store_impl`` to pick the ordered-map backend,
      ``mode="write-around"`` for the CDC deployment of
      :mod:`repro.cdc`, …).
    * ``rpc`` — with ``host`` and/or ``port``, connect to an existing
      server there (defaults: ``127.0.0.1``, the protocol's port
      7709); with neither, start an ephemeral loopback server (built
      from ``server_kwargs``) on the current loop, owned by the
      returned client.
    * ``cluster`` — a simulated deployment of ``base_count`` home and
      ``compute_count`` compute servers; ``base_tables`` names the
      partitioned base tables (e.g. ``("p", "s")`` for Twip).
    * ``procs`` — connect to a running multi-process cluster (see
      ``repro cluster`` / :class:`~repro.distrib.procs.ProcCluster`):
      ``endpoints`` is a sequence of ``(host, port)`` bootstrap
      addresses, or give one as ``host``/``port``.

    ``joins`` (any :data:`~repro.client.base.JoinLike`) are installed
    before the client is returned, on whichever servers execute them.

    The cluster-shape arguments (``base_count`` / ``compute_count`` /
    ``base_tables``) are deliberately accepted and ignored by the
    other backends, so one call site can serve every backend.
    ``host``/``port`` express connect intent and are rejected off-RPC.
    """
    if backend not in BACKENDS:
        raise BadRequestError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend not in ("rpc", "procs") and (host is not None or port is not None):
        raise BadRequestError(
            f"host/port describe a server to connect to; the {backend!r} "
            "backend does not connect anywhere"
        )
    if endpoints is not None and backend != "procs":
        raise BadRequestError(
            "endpoints name a process cluster; only the 'procs' backend "
            "connects to one"
        )
    client: AsyncPequodClient
    if backend == "local":
        client = AsyncLocalClient(**server_kwargs)
    elif backend == "procs":
        if endpoints is None:
            if port is None:
                raise BadRequestError(
                    "the 'procs' backend needs endpoints=[(host, port), ...] "
                    "or host/port of one cluster node"
                )
            endpoints = [(host or "127.0.0.1", port)]
        if server_kwargs:
            raise BadRequestError(
                "server kwargs are meaningless when connecting to an "
                "existing cluster"
            )
        client = await AsyncProcClusterClient.open(endpoints)
    elif backend == "rpc":
        if host is not None or port is not None:
            # Connect intent: an existing server at host:port (the
            # protocol's default port when only a host is given).
            if server_kwargs:
                raise BadRequestError(
                    "server kwargs are meaningless when connecting to an "
                    "existing server"
                )
            client = await AsyncRemoteClient.open(host or "127.0.0.1", port or 7709)
        else:
            service = RpcServer(PequodServer(**server_kwargs), "127.0.0.1", 0)
            try:
                await service.start()
            except OSError as exc:
                raise TransportError(f"cannot start RPC server: {exc}") from exc
            client = _AsyncEphemeralRemoteClient(service)
            try:
                await client.connect()
            except BaseException:
                await service.stop()
                raise
    else:
        def cluster_server(name: str) -> PequodServer:
            kwargs = dict(server_kwargs)
            # Durable cluster nodes must not share one WAL: give each
            # node its own subdirectory of the requested data_dir.
            if kwargs.get("data_dir") is not None:
                import os

                kwargs["data_dir"] = os.path.join(kwargs["data_dir"], name)
            return PequodServer(name=name, **kwargs)

        cluster = Cluster(
            base_count,
            compute_count,
            tuple(base_tables),
            server_factory=cluster_server,
        )
        client = AsyncClusterClient(cluster)
    if joins is not None:
        try:
            await client.add_join(joins)
        except BaseException:
            await client.aclose()
            raise
    return client


class _EphemeralRemoteClient(RemoteClient):
    """A RemoteClient facade that owns the loopback server it talks
    to — an RPC server on a private event-loop *thread*, so it serves
    this client, and any other connection, between the facade's
    blocking calls."""

    def __init__(
        self, service: ThreadedRpcService, joins: Optional[JoinLike]
    ) -> None:
        self._service = service
        try:
            super().__init__("127.0.0.1", service.port)
            if joins is not None:
                self.add_join(joins)
        except BaseException:
            service.stop()
            raise

    def close(self) -> None:
        try:
            super().close()
        finally:
            self._service.stop()


def make_client(
    backend: str = "local",
    *,
    joins: Optional[JoinLike] = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
    base_count: int = 2,
    compute_count: int = 2,
    base_tables: Sequence[str] = (),
    endpoints: Optional[Sequence[Tuple[str, int]]] = None,
    **server_kwargs,
) -> PequodClient:
    """Build a synchronous :class:`PequodClient` for the named backend.

    The same selection rules as :func:`make_async_client` (which does
    the actual building, on a private loop the returned facade owns) —
    except the self-contained "rpc" server, which runs on its own
    thread here (see module docstring).
    """
    if backend not in BACKENDS:
        raise BadRequestError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "rpc" and host is None and port is None:
        try:
            service = ThreadedRpcService(PequodServer(**server_kwargs))
        except RuntimeError as exc:
            raise TransportError(str(exc)) from exc
        return _EphemeralRemoteClient(service, joins)
    loop = asyncio.new_event_loop()
    try:
        aclient = loop.run_until_complete(
            make_async_client(
                backend,
                joins=joins,
                host=host,
                port=port,
                base_count=base_count,
                compute_count=compute_count,
                base_tables=base_tables,
                endpoints=endpoints,
                **server_kwargs,
            )
        )
    except BaseException:
        loop.close()
        raise
    return _FACADES[backend]._from_async(aclient, loop)
