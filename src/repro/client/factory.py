"""Backend selection: one call builds a client for any deployment.

``make_client("local" | "rpc" | "cluster")`` is how the CLI, the
benchmark harness, and the conformance tests pick a deployment shape
without changing a line of application code.  The "rpc" backend with
no explicit ``port`` is self-contained: it starts a real asyncio RPC
server on a loopback socket in a background thread and connects a
:class:`RemoteClient` to it, so every operation crosses genuine TCP
framing and dispatch; ``close()`` tears both down.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional, Sequence

from ..core.server import PequodServer
from ..distrib.cluster import Cluster
from ..net.rpc_server import RpcServer
from .base import JoinLike, PequodClient
from .cluster import ClusterClient
from .errors import BadRequestError, TransportError
from .local import LocalClient
from .remote import RemoteClient

BACKENDS = ("local", "rpc", "cluster")


class _OwnedRpcService:
    """A Pequod RPC server on a private event-loop thread."""

    def __init__(self, server: PequodServer, host: str = "127.0.0.1") -> None:
        self.rpc = RpcServer(server, host, 0)
        self._loop = asyncio.new_event_loop()
        started = threading.Event()
        failure: list = []

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self.rpc.start())
            except Exception as exc:  # noqa: BLE001 - surfaced to caller
                failure.append(exc)
                self._loop.close()
                started.set()
                return
            started.set()
            self._loop.run_forever()
            self._loop.run_until_complete(self.rpc.stop())
            # One more tick so closed transports detach their sockets
            # before the loop goes away (avoids ResourceWarnings).
            self._loop.run_until_complete(asyncio.sleep(0.02))
            self._loop.close()

        self._thread = threading.Thread(
            target=run, name="pequod-rpc", daemon=True
        )
        self._thread.start()
        started.wait()
        if failure:
            raise TransportError(f"cannot start RPC server: {failure[0]}")

    @property
    def port(self) -> int:
        return self.rpc.port

    def stop(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5)


class _EphemeralRemoteClient(RemoteClient):
    """A RemoteClient that owns the server it talks to."""

    def __init__(self, service: _OwnedRpcService) -> None:
        self._service = service
        try:
            super().__init__("127.0.0.1", service.port)
        except BaseException:
            service.stop()
            raise

    def close(self) -> None:
        try:
            super().close()
        finally:
            self._service.stop()


def make_client(
    backend: str = "local",
    *,
    joins: Optional[JoinLike] = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
    base_count: int = 2,
    compute_count: int = 2,
    base_tables: Sequence[str] = (),
    **server_kwargs,
) -> PequodClient:
    """Build a :class:`PequodClient` for the named backend.

    * ``local`` — in-process server; ``server_kwargs`` reach
      :class:`PequodServer` (``subtable_config``, ``memory_limit``,
      ``store_impl`` to pick the ordered-map backend, …).
    * ``rpc`` — with ``host`` and/or ``port``, connect to an existing
      server there (defaults: ``127.0.0.1``, the protocol's port
      7709); with neither, start an ephemeral loopback server (built
      from ``server_kwargs``) owned by the returned client.
    * ``cluster`` — a simulated deployment of ``base_count`` home and
      ``compute_count`` compute servers; ``base_tables`` names the
      partitioned base tables (e.g. ``("p", "s")`` for Twip).

    ``joins`` (any :data:`~repro.client.base.JoinLike`) are installed
    before the client is returned, on whichever servers execute them.

    The cluster-shape arguments (``base_count`` / ``compute_count`` /
    ``base_tables``) are deliberately accepted and ignored by the
    other backends, so one call site can serve every backend.
    ``host``/``port`` express connect intent and are rejected off-RPC.
    """
    if backend not in BACKENDS:
        raise BadRequestError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend != "rpc" and (host is not None or port is not None):
        raise BadRequestError(
            f"host/port describe a server to connect to; the {backend!r} "
            "backend does not connect anywhere"
        )
    client: PequodClient
    if backend == "local":
        client = LocalClient(**server_kwargs)
    elif backend == "rpc":
        if host is not None or port is not None:
            # Connect intent: an existing server at host:port (the
            # protocol's default port when only a host is given).
            if server_kwargs:
                raise BadRequestError(
                    "server kwargs are meaningless when connecting to an "
                    "existing server"
                )
            client = RemoteClient(host or "127.0.0.1", port or 7709)
        else:
            service = _OwnedRpcService(PequodServer(**server_kwargs))
            client = _EphemeralRemoteClient(service)
    else:
        cluster = Cluster(
            base_count,
            compute_count,
            tuple(base_tables),
            server_factory=lambda name: PequodServer(name=name, **server_kwargs),
        )
        client = ClusterClient(cluster)
    if joins is not None:
        try:
            client.add_join(joins)
        except Exception:
            client.close()
            raise
    return client
