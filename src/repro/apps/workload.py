"""Workload generators reproducing the paper's experiment drivers (§5.1).

**Twip** clients model users who log in (a full timeline scan), then
repeatedly check for new tweets, subscribe to other users, and post.
The §5.1 operation mix — 5% initial timeline scans, 9% new
subscriptions, 85% incremental timeline updates, 1% posts — is the
default, and posting likelihood is proportional to the log of the
poster's follower count, so popular users tweet more.

**Newp** sessions read a random article, vote on it with a configurable
probability (the Figure-9 x-axis), and comment with 1% probability, on
a prepopulated store of articles, comments, and votes.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines.base import TwipBackend
from .social_graph import SocialGraph
from .twip import format_time

OP_LOGIN = "login"
OP_CHECK = "check"
OP_SUBSCRIBE = "subscribe"
OP_POST = "post"

#: The §5.1 Twip operation mix.
DEFAULT_MIX = ((OP_LOGIN, 0.05), (OP_SUBSCRIBE, 0.09), (OP_CHECK, 0.85), (OP_POST, 0.01))


class TwipOp:
    """One generated client action."""

    __slots__ = ("kind", "user", "target")

    def __init__(self, kind: str, user: str, target: Optional[str] = None) -> None:
        self.kind = kind
        self.user = user
        self.target = target

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f" -> {self.target}" if self.target else ""
        return f"<{self.kind} {self.user}{extra}>"


class TwipWorkload:
    """Generates and drives the §5.1 Twip workload."""

    def __init__(
        self,
        graph: SocialGraph,
        total_ops: int,
        active_fraction: float = 0.7,
        mix: Sequence[Tuple[str, float]] = DEFAULT_MIX,
        seed: int = 42,
    ) -> None:
        self.graph = graph
        self.total_ops = total_ops
        self.mix = list(mix)
        self.rng = random.Random(seed)
        active_count = max(1, int(len(graph.users) * active_fraction))
        shuffled = list(graph.users)
        self.rng.shuffle(shuffled)
        self.active_users = shuffled[:active_count]
        # Posting users weighted by log(followers) (§5.1).
        self._post_weights = [graph.post_weight(u) for u in graph.users]

    # ------------------------------------------------------------------
    def generate(self) -> List[TwipOp]:
        """The deterministic operation stream."""
        ops: List[TwipOp] = []
        kinds = [k for k, _ in self.mix]
        weights = [w for _, w in self.mix]
        posters_cache: Optional[List[str]] = None
        for _ in range(self.total_ops):
            kind = self.rng.choices(kinds, weights)[0]
            if kind in (OP_LOGIN, OP_CHECK):
                user = self.rng.choice(self.active_users)
                ops.append(TwipOp(kind, user))
            elif kind == OP_SUBSCRIBE:
                user = self.rng.choice(self.active_users)
                target = self.rng.choice(self.graph.users)
                if target == user:
                    target = self.graph.users[0]
                ops.append(TwipOp(kind, user, target))
            else:  # OP_POST
                if posters_cache is None:
                    posters_cache = self.graph.users
                poster = self.rng.choices(posters_cache, self._post_weights)[0]
                ops.append(TwipOp(OP_POST, poster))
        return ops

    # ------------------------------------------------------------------
    def run(
        self,
        backend: TwipBackend,
        ops: Optional[List[TwipOp]] = None,
        load_graph: bool = True,
    ) -> Dict[str, int]:
        """Drive ``backend`` through the workload; returns op counts.

        Logins scan the whole timeline; checks scan from the user's
        last seen time (incremental updates return many fewer tweets,
        §5.1).  The logical clock ticks once per operation.
        """
        if load_graph:
            backend.load_graph(self.graph.edges)
            backend.reset_meter()
        if ops is None:
            ops = self.generate()
        last_seen: Dict[str, str] = {}
        counts = {OP_LOGIN: 0, OP_CHECK: 0, OP_SUBSCRIBE: 0, OP_POST: 0,
                  "tweets_delivered": 0}
        for tick, op in enumerate(ops):
            now = format_time(tick)
            if op.kind == OP_LOGIN:
                rows = backend.timeline(op.user, format_time(0))
                counts["tweets_delivered"] += len(rows)
                last_seen[op.user] = now
            elif op.kind == OP_CHECK:
                since = last_seen.get(op.user, format_time(0))
                rows = backend.timeline(op.user, since)
                counts["tweets_delivered"] += len(rows)
                last_seen[op.user] = now
            elif op.kind == OP_SUBSCRIBE:
                assert op.target is not None
                backend.subscribe(op.user, op.target)
            else:
                backend.post(op.user, now, f"tweet from {op.user} at {tick}")
            counts[op.kind] += 1
        return counts


def checks_and_posts_workload(
    graph: SocialGraph,
    active_pct: int,
    posts: int,
    checks_per_active_ratio: float = 1.0,
    seed: int = 7,
) -> List[TwipOp]:
    """The Figure-8 workload: timeline checks and posts only.

    The paper distributes 1M posts by log-follower weight and performs
    ``p`` million timeline checks spread uniformly across the active
    ``p``% of users — so the check:post ratio runs from 1:1 at 1%
    active to 100:1 at 100% active.  Here ``posts`` posts yield
    ``posts * active_pct * ratio`` checks, preserving that scaling.
    """
    if not 1 <= active_pct <= 100:
        raise ValueError("active_pct must be in [1, 100]")
    rng = random.Random(seed)
    users = list(graph.users)
    rng.shuffle(users)
    active = users[: max(1, len(users) * active_pct // 100)]
    weights = [graph.post_weight(u) for u in graph.users]
    ops: List[TwipOp] = [
        TwipOp(OP_POST, rng.choices(graph.users, weights)[0])
        for _ in range(posts)
    ]
    n_checks = int(posts * active_pct * checks_per_active_ratio)
    ops.extend(TwipOp(OP_CHECK, rng.choice(active)) for _ in range(n_checks))
    rng.shuffle(ops)
    return ops


class NewpWorkload:
    """The Figure-9 Newp workload, scaled from the paper's populations
    (100K articles / 50K users / 1M comments / 2M votes prepopulated;
    sessions read, vote with probability ``vote_rate``, comment 1%)."""

    def __init__(
        self,
        n_articles: int = 200,
        n_users: int = 100,
        n_comments: int = 2000,
        n_votes: int = 4000,
        n_sessions: int = 2000,
        vote_rate: float = 0.1,
        comment_rate: float = 0.01,
        seed: int = 9,
    ) -> None:
        self.n_articles = n_articles
        self.n_users = n_users
        self.n_comments = n_comments
        self.n_votes = n_votes
        self.n_sessions = n_sessions
        self.vote_rate = vote_rate
        self.comment_rate = comment_rate
        self.seed = seed
        self.users = [f"user{i:05d}" for i in range(n_users)]
        # Article ids are (author, id) pairs.
        rng = random.Random(seed)
        self.articles = [
            (rng.choice(self.users), f"a{i:06d}") for i in range(n_articles)
        ]

    def prepopulate(self, app) -> None:
        """Load the initial dataset (not metered)."""
        rng = random.Random(self.seed + 1)
        for author, aid in self.articles:
            app.author_article(author, aid, f"article {aid} by {author}")
        for i in range(self.n_comments):
            author, aid = rng.choice(self.articles)
            app.comment(author, aid, f"c{i:07d}", rng.choice(self.users),
                        f"comment {i}")
        for i in range(self.n_votes):
            author, aid = rng.choice(self.articles)
            app.vote(author, aid, f"voter{i:07d}")
        app.meter.reset()

    def run(self, app) -> Dict[str, int]:
        """Drive sessions; returns op counts."""
        rng = random.Random(self.seed + 2)
        counts = {"reads": 0, "votes": 0, "comments": 0}
        next_comment = self.n_comments
        next_vote = self.n_votes
        for _ in range(self.n_sessions):
            author, aid = rng.choice(self.articles)
            app.read_article(author, aid)
            counts["reads"] += 1
            if rng.random() < self.vote_rate:
                app.vote(author, aid, f"voter{next_vote:07d}")
                next_vote += 1
                counts["votes"] += 1
            if rng.random() < self.comment_rate:
                app.comment(author, aid, f"c{next_comment:07d}",
                            rng.choice(self.users), "session comment")
                next_comment += 1
                counts["comments"] += 1
        return counts
