"""Twip: the paper's Twitter-like example application (§2.1).

Users post tweets, follow other users, and check timelines.  The cache
join below is the paper's central example; ``TwipApp`` wraps a
:class:`PequodServer` (or a distributed cluster) with the application
operations, and :class:`PequodTwipBackend` adapts it to the Figure-7
comparison interface.

Key schema (times zero-padded so lexicographic order is time order):

* ``p|<poster>|<time>`` — posts (base data)
* ``s|<user>|<poster>`` — subscriptions (base data)
* ``t|<user>|<time>|<poster>`` — timelines (computed)
* ``cp|…`` / ``ct|…`` — celebrity posts and the time-ordered helper
  range (§2.3), enabled with ``celebrity_threshold``
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..client.base import PequodClient
from ..client.local import LocalClient
from ..core.server import PequodServer
from ..store.keys import prefix_upper_bound
from ..baselines.base import Tweet, TwipBackend
from .social_graph import SocialGraph

TIME_WIDTH = 10

TIMELINE_JOIN = (
    "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"
)

CELEBRITY_JOINS = (
    "ct|<time>|<poster> = copy cp|<poster>|<time>;"
    "t|<user>|<time>|<poster> = "
    "pull check s|<user>|<poster> copy ct|<time>|<poster>"
)


def format_time(time: int) -> str:
    return f"{time:0{TIME_WIDTH}d}"


class TwipApp:
    """The Twip application over any Pequod deployment.

    Takes a :class:`PequodClient` — in-process, RPC, or cluster — and
    programs purely against the unified API, so the same application
    code runs on every deployment shape.  A bare
    :class:`PequodServer` (or nothing) is accepted for convenience and
    wrapped in a :class:`LocalClient`.

    With ``celebrity_threshold`` set, users whose follower count
    exceeds the threshold post into the ``cp|`` range served by the
    pull join (§2.3) — saving per-follower timeline copies.
    """

    def __init__(
        self,
        server: Optional[PequodServer] = None,
        celebrity_threshold: Optional[int] = None,
        graph: Optional[SocialGraph] = None,
        subtables: bool = True,
        client: Optional[PequodClient] = None,
        **server_kwargs,
    ) -> None:
        if client is not None and (server is not None or server_kwargs):
            raise ValueError("pass either a client or server(+kwargs), not both")
        if client is None:
            if server is None:
                config = {"t": 2, "p": 2, "s": 2} if subtables else None
                server = PequodServer(subtable_config=config, **server_kwargs)
            client = LocalClient(server)
        self.client = client
        self.client.add_join(TIMELINE_JOIN)
        self.celebrity_threshold = celebrity_threshold
        self.celebrities: Set[str] = set()
        if celebrity_threshold is not None:
            self.client.add_join(CELEBRITY_JOINS)
            if graph is not None:
                self.celebrities = set(graph.celebrities(celebrity_threshold))

    @property
    def server(self) -> PequodServer:
        """The in-process server, when the backend has one (tests and
        benchmarks poke its internals); raises otherwise."""
        if isinstance(self.client, LocalClient):
            return self.client.server
        raise AttributeError(
            f"no in-process server behind backend {self.client.backend!r}"
        )

    # ------------------------------------------------------------------
    def mark_celebrity(self, user: str) -> None:
        self.celebrities.add(user)

    def subscribe(self, user: str, poster: str) -> None:
        self.client.put(f"s|{user}|{poster}", "1")

    def unsubscribe(self, user: str, poster: str) -> None:
        self.client.remove(f"s|{user}|{poster}")

    def post(self, poster: str, time: int, text: str) -> None:
        table = "cp" if poster in self.celebrities else "p"
        self.client.put(f"{table}|{poster}|{format_time(time)}", text)

    def timeline(self, user: str, since: int = 0) -> List[Tweet]:
        """Time-sorted tweets by followed users with time >= since."""
        first = f"t|{user}|{format_time(since)}"
        last = prefix_upper_bound(f"t|{user}|")
        rows = self.client.scan(first, last)
        out: List[Tweet] = []
        for key, text in rows:
            _, _, time, poster = key.split("|", 3)
            out.append((time, poster, text))
        return out

    def load_graph(self, graph: SocialGraph, batched: bool = False) -> None:
        """Install the follow graph; ``batched`` loads it as coalesced
        write batches instead of one put per edge."""
        if batched:
            graph.load_into(self.client)
            return
        for follower, followee in graph.edges:
            self.subscribe(follower, followee)


class PequodTwipBackend(TwipBackend):
    """Adapter: Twip-on-Pequod under the comparison-workload interface.

    Every application operation is exactly one RPC — the server does
    the work (§5.2's "Pequod" row).
    """

    name = "pequod"

    def __init__(self, **app_kwargs) -> None:
        super().__init__()
        if "client" not in app_kwargs:
            app_kwargs.setdefault("stats", self.meter)
        self.app = TwipApp(**app_kwargs)

    def subscribe(self, user: str, poster: str) -> None:
        self.rpc()
        self.app.subscribe(user, poster)

    def post(self, poster: str, time: str, text: str) -> None:
        self.rpc()
        self.app.client.put(f"p|{poster}|{time}", text)

    def timeline(self, user: str, since: str) -> List[Tweet]:
        self.rpc()
        rows = self.app.client.scan(
            f"t|{user}|{since}", prefix_upper_bound(f"t|{user}|")
        )
        out: List[Tweet] = []
        for key, text in rows:
            _, _, time, poster = key.split("|", 3)
            self.moved(len(text))
            out.append((time, poster, text))
        return out
