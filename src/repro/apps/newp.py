"""Newp: the Hacker-News-like example application with karma (§2.3).

Users author articles, comment and vote on articles, and read article
pages.  An article page shows the article text, its vote count, its
comments, and each commenter's karma (votes received across the
articles that commenter authored).

Two configurations reproduce the Figure-9 experiment:

* **interleaved** — the Figure-1 join set colocates article text, vote
  rank, comments, and commenter karma into one ``page|`` range; a page
  render is a single scan.
* **separate** (non-interleaved) — karma and rank are still cache
  joins, but live in their own ranges; a page render issues many gets
  in two round trips (comments first, then each commenter's karma).

Key schema:

* ``article|<author>|<id>`` / ``comment|<author>|<id>|<cid>|<commenter>``
  / ``vote|<author>|<id>|<voter>`` — base data
* ``karma|<author>``, ``rank|<author>|<id>`` — aggregates
* ``page|<author>|<id>|…`` — the interleaved output range
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..client.base import PequodClient
from ..client.local import LocalClient
from ..core.server import PequodServer
from ..store.keys import prefix_upper_bound
from ..store.stats import StoreStats

AGGREGATE_JOINS = (
    "karma|<author> = count vote|<author>|<id>|<voter>;"
    "rank|<author>|<id> = count vote|<author>|<id>|<voter>"
)

INTERLEAVED_JOINS = (
    "page|<author>|<id>|a = copy article|<author>|<id>;"
    "page|<author>|<id>|r = copy rank|<author>|<id>;"
    "page|<author>|<id>|c|<cid>|<commenter> = "
    "copy comment|<author>|<id>|<cid>|<commenter>;"
    "page|<author>|<id>|k|<cid>|<commenter> = "
    "check comment|<author>|<id>|<cid>|<commenter> copy karma|<commenter>"
)


class ArticlePage:
    """A rendered article: what the application shows a reader."""

    __slots__ = ("author", "article_id", "text", "votes", "comments", "karma")

    def __init__(self, author: str, article_id: str) -> None:
        self.author = author
        self.article_id = article_id
        self.text: Optional[str] = None
        self.votes = 0
        #: [(cid, commenter, text)]
        self.comments: List[Tuple[str, str, str]] = []
        #: commenter -> karma
        self.karma: Dict[str, int] = {}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArticlePage):
            return NotImplemented
        return (
            self.author == other.author
            and self.article_id == other.article_id
            and self.text == other.text
            and self.votes == other.votes
            and sorted(self.comments) == sorted(other.comments)
            and self.karma == other.karma
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ArticlePage {self.author}/{self.article_id} votes={self.votes} "
            f"comments={len(self.comments)}>"
        )


class NewpApp:
    """The Newp application over any Pequod deployment.

    Like :class:`~repro.apps.twip.TwipApp`, programs against the
    unified :class:`PequodClient`; pass ``client`` to run over RPC or
    a cluster, or let it build an in-process server.  ``meter``
    accumulates app-side work counters (RPCs issued, bytes moved); on
    a local backend it is the server's own stats object so server-side
    work lands in the same bag, as the Figure-9 cost model expects.
    """

    def __init__(
        self,
        server: Optional[PequodServer] = None,
        interleaved: bool = True,
        client: Optional[PequodClient] = None,
        **server_kwargs,
    ) -> None:
        if client is not None and (server is not None or server_kwargs):
            raise ValueError("pass either a client or server(+kwargs), not both")
        if client is None:
            if server is None:
                server = PequodServer(**server_kwargs)
            client = LocalClient(server)
        self.client = client
        self.interleaved = interleaved
        self.meter: StoreStats = (
            client.server.stats
            if isinstance(client, LocalClient)
            else StoreStats()
        )
        self.client.add_join(AGGREGATE_JOINS)
        if interleaved:
            self.client.add_join(INTERLEAVED_JOINS)

    @property
    def server(self) -> PequodServer:
        """The in-process server when the backend has one (tests poke
        its internals); raises otherwise."""
        if isinstance(self.client, LocalClient):
            return self.client.server
        raise AttributeError(
            f"no in-process server behind backend {self.client.backend!r}"
        )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def author_article(self, author: str, article_id: str, text: str) -> None:
        self.meter.add("rpcs")
        self.client.put(f"article|{author}|{article_id}", text)

    def comment(
        self, author: str, article_id: str, cid: str, commenter: str, text: str
    ) -> None:
        self.meter.add("rpcs")
        self.client.put(f"comment|{author}|{article_id}|{cid}|{commenter}", text)

    def vote(self, author: str, article_id: str, voter: str) -> None:
        self.meter.add("rpcs")
        self.client.put(f"vote|{author}|{article_id}|{voter}", "1")

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read_article(self, author: str, article_id: str) -> ArticlePage:
        if self.interleaved:
            return self._read_interleaved(author, article_id)
        return self._read_separate(author, article_id)

    def _read_interleaved(self, author: str, article_id: str) -> ArticlePage:
        """§2.3: one scan retrieves everything needed to render."""
        page = ArticlePage(author, article_id)
        prefix = f"page|{author}|{article_id}|"
        self.meter.add("rpcs")
        rows = self.client.scan(prefix, prefix_upper_bound(prefix))
        for key, value in rows:
            self.meter.add("bytes_moved", len(value))
            parts = key.split("|")
            tag = parts[3]
            if tag == "a":
                page.text = value
            elif tag == "r":
                page.votes = int(value)
            elif tag == "c":
                page.comments.append((parts[4], parts[5], value))
            elif tag == "k":
                page.karma[parts[5]] = int(value)
        return page

    def _read_separate(self, author: str, article_id: str) -> ArticlePage:
        """Many gets in two round trips (§5.4's non-interleaved mode)."""
        page = ArticlePage(author, article_id)
        # Round trip 1: article text, vote rank, comments (3 RPCs).
        self.meter.add("rpcs")
        page.text = self.client.get(f"article|{author}|{article_id}")
        if page.text is not None:
            self.meter.add("bytes_moved", len(page.text))
        self.meter.add("rpcs")
        rank = self.client.get(f"rank|{author}|{article_id}")
        page.votes = int(rank) if rank is not None else 0
        prefix = f"comment|{author}|{article_id}|"
        self.meter.add("rpcs")
        for key, value in self.client.scan(prefix, prefix_upper_bound(prefix)):
            self.meter.add("bytes_moved", len(value))
            parts = key.split("|")
            page.comments.append((parts[3], parts[4], value))
        # Round trip 2: one karma get per distinct commenter.
        for commenter in sorted({c[1] for c in page.comments}):
            self.meter.add("rpcs")
            karma = self.client.get(f"karma|{commenter}")
            if karma is not None:
                page.karma[commenter] = int(karma)
        return page
