"""Synthetic social graph generation.

The paper's Twip experiments use the 2009 Twitter social graph (40M
users, 1.4B edges; a 1.8M-user / 72M-edge sample for single-machine
runs).  That dataset is not redistributable, so this module generates
graphs with the properties the evaluation actually depends on:

* heavy-tailed in-degree — a few celebrities with enormous follower
  counts (the §2.3 celebrity-join motivation);
* realistic mean out-degree ("Twitter users average more than 100
  subscriptions each"; scaled down with graph size);
* deterministic given a seed, so experiments are reproducible.

Generation uses the preferential-attachment pool trick: each chosen
follow target is appended to a pool, so future picks land on already-
popular users proportionally to their in-degree.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Sequence, Tuple


class SocialGraph:
    """A directed follow graph: ``edges`` are (follower, followee)."""

    def __init__(self, users: List[str], edges: List[Tuple[str, str]]) -> None:
        self.users = users
        self.edges = edges
        self.following: Dict[str, List[str]] = {u: [] for u in users}
        self.followers: Dict[str, List[str]] = {u: [] for u in users}
        for follower, followee in edges:
            self.following[follower].append(followee)
            self.followers[followee].append(follower)

    # ------------------------------------------------------------------
    def follower_count(self, user: str) -> int:
        return len(self.followers.get(user, ()))

    def out_degree(self, user: str) -> int:
        return len(self.following.get(user, ()))

    def celebrities(self, threshold: int) -> List[str]:
        """Users with more followers than ``threshold`` (§2.3)."""
        return [u for u in self.users if self.follower_count(u) > threshold]

    def max_follower_count(self) -> int:
        return max((self.follower_count(u) for u in self.users), default=0)

    def mean_out_degree(self) -> float:
        if not self.users:
            return 0.0
        return len(self.edges) / len(self.users)

    def post_weight(self, user: str) -> float:
        """Posting likelihood ∝ log of follower count (§5.1)."""
        return math.log(self.follower_count(user) + math.e)

    def load_into(
        self,
        client,
        table: str = "s",
        value: str = "1",
        batch_size: int = 256,
    ) -> int:
        """Write the follow edges as ``table|follower|followee`` keys
        through any :class:`~repro.client.base.PequodClient`, in
        coalesced batches; returns the number of changes applied."""
        applied = 0
        for start in range(0, len(self.edges), max(batch_size, 1)):
            chunk = self.edges[start : start + max(batch_size, 1)]
            applied += client.put_many(
                (f"{table}|{follower}|{followee}", value)
                for follower, followee in chunk
            )
        return applied

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SocialGraph users={len(self.users)} edges={len(self.edges)}>"


def generate_graph(
    n_users: int,
    mean_follows: float = 20.0,
    seed: int = 1,
    attachment_bias: float = 0.85,
) -> SocialGraph:
    """Generate a preferential-attachment follow graph.

    ``attachment_bias`` is the probability a new follow targets the
    popularity pool (rich get richer) versus a uniformly random user;
    higher bias yields heavier tails.
    """
    if n_users < 2:
        raise ValueError("need at least two users")
    rng = random.Random(seed)
    users = [f"u{i:06d}" for i in range(n_users)]
    pool: List[str] = []
    edges: List[Tuple[str, str]] = []
    seen: set = set()
    total_edges = int(n_users * mean_follows)
    order = list(users)
    rng.shuffle(order)
    attempts = 0
    while len(edges) < total_edges and attempts < total_edges * 20:
        attempts += 1
        follower = order[rng.randrange(n_users)]
        if pool and rng.random() < attachment_bias:
            followee = pool[rng.randrange(len(pool))]
        else:
            followee = users[rng.randrange(n_users)]
        if followee == follower or (follower, followee) in seen:
            continue
        seen.add((follower, followee))
        edges.append((follower, followee))
        pool.append(followee)
    return SocialGraph(users, edges)


def degree_histogram(graph: SocialGraph, buckets: Sequence[int]) -> Dict[str, int]:
    """Counts of users by follower-count bucket (for sanity checks)."""
    out: Dict[str, int] = {}
    edges = list(buckets) + [None]
    for user in graph.users:
        count = graph.follower_count(user)
        for i, bound in enumerate(edges):
            if bound is None or count < bound:
                lo = 0 if i == 0 else edges[i - 1]
                label = f"{lo}+" if bound is None else f"{lo}-{bound - 1}"
                out[label] = out.get(label, 0) + 1
                break
    return out
