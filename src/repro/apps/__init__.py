"""Example applications: Twip (§2.1) and Newp (§2.3), with workload
generators and the synthetic social graph used by the evaluation."""

from .newp import AGGREGATE_JOINS, INTERLEAVED_JOINS, ArticlePage, NewpApp
from .social_graph import SocialGraph, degree_histogram, generate_graph
from .twip import (
    CELEBRITY_JOINS,
    TIMELINE_JOIN,
    PequodTwipBackend,
    TwipApp,
    format_time,
)
from .workload import (
    DEFAULT_MIX,
    OP_CHECK,
    OP_LOGIN,
    OP_POST,
    OP_SUBSCRIBE,
    NewpWorkload,
    TwipOp,
    TwipWorkload,
    checks_and_posts_workload,
)

__all__ = [
    "AGGREGATE_JOINS",
    "ArticlePage",
    "CELEBRITY_JOINS",
    "DEFAULT_MIX",
    "INTERLEAVED_JOINS",
    "NewpApp",
    "NewpWorkload",
    "OP_CHECK",
    "OP_LOGIN",
    "OP_POST",
    "OP_SUBSCRIBE",
    "PequodTwipBackend",
    "SocialGraph",
    "TIMELINE_JOIN",
    "TwipApp",
    "TwipOp",
    "TwipWorkload",
    "checks_and_posts_workload",
    "degree_histogram",
    "format_time",
    "generate_graph",
]
