"""Clock abstraction for snapshot-join expiry and LRU decisions.

``snapshot T`` joins (paper §3.4) cache results for ``T`` seconds.
Benchmarks and tests need deterministic time, so the server takes an
injectable clock: :class:`SystemClock` for real deployments,
:class:`SimClock` for simulation and tests.
"""

from __future__ import annotations

import time


class Clock:
    """Interface: monotonically non-decreasing seconds."""

    def now(self) -> float:
        raise NotImplementedError


class SystemClock(Clock):
    """Wall time from ``time.monotonic()``."""

    def now(self) -> float:
        return time.monotonic()


class SimClock(Clock):
    """Manually advanced time for tests and the simulated network."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self._now += seconds
        return self._now

    def set(self, t: float) -> None:
        if t < self._now:
            raise ValueError("time cannot move backwards")
        self._now = float(t)
