"""Cache-join source operators: copy, check, min, max, count, sum.

Paper §3 (Figure 2): a join has exactly one *value source* — ``copy``
or an aggregate — and ``check`` sources whose values are uninteresting
(only key existence matters).  ``copy`` installs the source's value
under the output key.  Aggregates combine all source values mapping to
one output key into a single value, like SQL aggregate functions, and
are "kept up to date just like copied data" (§2.3).

Aggregate results are stored as :class:`AggValue` accumulators that
also remember the group size, so incremental removal knows when a
group becomes empty (the output key disappears — a key-value cache has
no NULL row) and when a ``min``/``max`` needs recomputation.  Clients
always see the string form.
"""

from __future__ import annotations

import enum
from typing import Optional, Union

CHECK = "check"
#: Extension (paper §3.2 future work: "more control over maintenance
#: type"): a check source whose inserts are maintained eagerly.
ECHECK = "echeck"
COPY = "copy"
MIN = "min"
MAX = "max"
COUNT = "count"
SUM = "sum"

OPERATORS = (COPY, CHECK, ECHECK, MIN, MAX, COUNT, SUM)
AGGREGATES = (MIN, MAX, COUNT, SUM)
CHECK_OPERATORS = (CHECK, ECHECK)


class ChangeKind(enum.Enum):
    """How a source key changed, as reported to updaters (§3.2)."""

    INSERT = "insert"
    UPDATE = "update"
    REMOVE = "remove"


class UpdateOutcome(enum.Enum):
    """What an incremental aggregate step decided."""

    APPLIED = "applied"  # accumulator adjusted in place
    EMPTIED = "emptied"  # group became empty: remove the output key
    RECOMPUTE = "recompute"  # cannot adjust (min/max lost its extremum)


def parse_number(text: str) -> Union[int, float]:
    """Numeric interpretation of a value; raises ValueError if not numeric."""
    try:
        return int(text)
    except ValueError:
        return float(text)


def format_number(num: Union[int, float]) -> str:
    """Canonical string form: integers without a trailing ``.0``."""
    if isinstance(num, float) and num.is_integer():
        return str(int(num))
    return str(num)


class AggValue:
    """Accumulator stored under an aggregate join's output key.

    ``payload`` is the client-visible string.  ``count`` tracks group
    size.  ``sum`` joins keep a numeric total; ``min``/``max`` keep the
    current extremum (compared numerically when both sides parse as
    numbers, else lexicographically — matching the store's own order).
    """

    __slots__ = ("op", "count", "total", "best")

    def __init__(self, op: str) -> None:
        if op not in AGGREGATES:
            raise ValueError(f"not an aggregate operator: {op!r}")
        self.op = op
        self.count = 0
        self.total: Union[int, float] = 0
        self.best: Optional[str] = None

    # -- store Value protocol -------------------------------------------------
    @property
    def payload(self) -> str:
        if self.op == COUNT:
            return str(self.count)
        if self.op == SUM:
            return format_number(self.total)
        return self.best if self.best is not None else ""

    def memory_size(self) -> int:
        return 24

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AggValue {self.op} {self.payload!r} n={self.count}>"

    # -- accumulation ----------------------------------------------------------
    def include(self, value: str) -> None:
        """Fold one source value in (forward execution / eager insert)."""
        self.count += 1
        if self.op == SUM:
            self.total += parse_number(value)
        elif self.op in (MIN, MAX):
            if self.best is None or self._beats(value, self.best):
                self.best = value

    def exclude(self, value: str) -> UpdateOutcome:
        """Fold one source value out (eager remove)."""
        self.count -= 1
        if self.count <= 0:
            return UpdateOutcome.EMPTIED
        if self.op == SUM:
            self.total -= parse_number(value)
            return UpdateOutcome.APPLIED
        if self.op == COUNT:
            return UpdateOutcome.APPLIED
        if value == self.best:
            # The extremum left the group; only a rescan can replace it.
            return UpdateOutcome.RECOMPUTE
        return UpdateOutcome.APPLIED

    def replace(self, old: str, new: str) -> UpdateOutcome:
        """Fold an in-place value change (eager update)."""
        if self.op == COUNT:
            return UpdateOutcome.APPLIED
        if self.op == SUM:
            self.total += parse_number(new) - parse_number(old)
            return UpdateOutcome.APPLIED
        if self.best is not None and self._beats(new, self.best):
            self.best = new
            return UpdateOutcome.APPLIED
        if old == self.best and new != old:
            return UpdateOutcome.RECOMPUTE
        return UpdateOutcome.APPLIED

    def _beats(self, challenger: str, incumbent: str) -> bool:
        try:
            a, b = parse_number(challenger), parse_number(incumbent)
        except ValueError:
            a, b = challenger, incumbent  # lexicographic fallback
        if self.op == MIN:
            return a < b
        return a > b
