"""Overload policy and admission control.

Pequod's pitch is fresh results under heavy write fan-out, but a cache
that queues unboundedly under overload serves neither fresh nor stale
results — it collapses.  This module gives ``PequodServer`` a small,
configurable degradation ladder instead:

* **shed** — refuse work outright with a typed :class:`OverloadError`
  that every client backend surfaces, so callers can back off or fail
  over instead of piling onto a saturated node.
* **degrade** — keep serving reads, but *stale-with-a-bound*: while
  overloaded the join engine skips re-validation for status ranges
  whose last validation is younger than ``max_staleness`` seconds
  (see ``JoinEngine.staleness_bound``).  Reads stay cheap, staleness
  stays bounded, and writes still shed once the queue signal trips.

The overload *signals* are deliberately cheap: a soft memory ceiling
(O(#tables) to evaluate), the RPC layer's reported per-connection read
queue depth, and an explicit :meth:`AdmissionController.force` override
used by tests and chaos drills.  Expensive global gauges (total pending
log depth, say) belong in scrape-time metrics, not on the admission
fast path.
"""

from __future__ import annotations

from typing import Optional

MODE_SHED = "shed"
MODE_DEGRADE = "degrade"

_MODES = (MODE_SHED, MODE_DEGRADE)


class OverloadError(RuntimeError):
    """The server refused work because it is overloaded.

    Raised by the core server under a ``shed``-mode policy (and for
    writes under ``degrade``).  The client layer re-exports a subclass
    that also inherits from ``ClientError`` so both ``except`` spellings
    work on every backend.
    """

    def __init__(self, message: str = "server overloaded", reason: str = ""):
        super().__init__(message)
        self.reason = reason


class OverloadPolicy:
    """Configuration for admission control.

    * ``mode`` — ``"shed"`` (refuse overloaded work) or ``"degrade"``
      (serve reads stale-with-a-bound, shed only writes).
    * ``max_staleness`` — the staleness bound, in seconds, for degrade
      mode: while overloaded, ranges validated within the last
      ``max_staleness`` seconds are served without re-validation.
      Required when ``mode="degrade"``.
    * ``soft_memory_limit`` — byte ceiling above which the server is
      considered overloaded.  Softer than the eviction ``memory_limit``:
      eviction reclaims, admission control stops digging.
    * ``max_queue_depth`` — pipelined-request depth (per connection
      read chunk, reported by the RPC layer) above which the server is
      considered overloaded.
    """

    __slots__ = ("mode", "max_staleness", "soft_memory_limit", "max_queue_depth")

    def __init__(
        self,
        mode: str = MODE_SHED,
        max_staleness: Optional[float] = None,
        soft_memory_limit: Optional[int] = None,
        max_queue_depth: Optional[int] = None,
    ) -> None:
        if mode not in _MODES:
            raise ValueError(f"unknown overload mode {mode!r}; pick one of {_MODES}")
        if mode == MODE_DEGRADE:
            if max_staleness is None:
                raise ValueError("degrade mode requires max_staleness")
            if max_staleness < 0:
                raise ValueError("max_staleness must be >= 0")
        if soft_memory_limit is not None and soft_memory_limit <= 0:
            raise ValueError("soft_memory_limit must be positive")
        if max_queue_depth is not None and max_queue_depth <= 0:
            raise ValueError("max_queue_depth must be positive")
        self.mode = mode
        self.max_staleness = max_staleness
        self.soft_memory_limit = soft_memory_limit
        self.max_queue_depth = max_queue_depth

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<OverloadPolicy {self.mode} staleness={self.max_staleness} "
            f"mem={self.soft_memory_limit} queue={self.max_queue_depth}>"
        )


class AdmissionController:
    """Evaluates the overload signals and gates each operation.

    Owned by ``PequodServer`` when an :class:`OverloadPolicy` is
    configured; the server calls :meth:`admit_read` / :meth:`admit_write`
    at the top of every data operation.  In degrade mode the controller
    drives ``engine.staleness_bound`` — set while overloaded, cleared
    when pressure lifts — which is all the join engine needs to serve
    bounded-stale reads (see ``JoinEngine._validate_table``).
    """

    __slots__ = ("engine", "policy", "stats", "queue_depth", "_forced")

    def __init__(self, engine, policy: OverloadPolicy) -> None:
        self.engine = engine
        self.policy = policy
        self.stats = engine.stats
        #: Most recent pipelined read-chunk depth, reported by the RPC
        #: layer; stays 0 for in-process servers.
        self.queue_depth = 0
        self._forced: Optional[str] = None

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def report_queue_depth(self, depth: int) -> None:
        self.queue_depth = depth

    def force(self, reason: Optional[str]) -> None:
        """Force the overloaded verdict (tests, chaos drills); pass
        None to release."""
        self._forced = reason

    def overload_reason(self) -> Optional[str]:
        """Why the server is currently overloaded, or None if it isn't."""
        if self._forced is not None:
            return self._forced
        policy = self.policy
        if (
            policy.max_queue_depth is not None
            and self.queue_depth > policy.max_queue_depth
        ):
            return f"queue depth {self.queue_depth} > {policy.max_queue_depth}"
        if policy.soft_memory_limit is not None:
            used = self.engine.memory_bytes()
            if used > policy.soft_memory_limit:
                return f"memory {used}B > {policy.soft_memory_limit}B"
        return None

    @property
    def overloaded(self) -> bool:
        return self.overload_reason() is not None

    # ------------------------------------------------------------------
    # Gates
    # ------------------------------------------------------------------
    def admit_read(self) -> None:
        """Gate a read; raises :class:`OverloadError` in shed mode.

        In degrade mode the read proceeds with the engine's staleness
        bound armed; the bound is cleared again the moment the signals
        recover, so un-overloaded reads always re-validate fully.
        """
        reason = self.overload_reason()
        if reason is None:
            if self.engine.staleness_bound is not None:
                self.engine.staleness_bound = None
            return
        if self.policy.mode == MODE_DEGRADE:
            self.stats.add("overload_degraded_reads")
            self.engine.staleness_bound = self.policy.max_staleness
            return
        self.stats.add("overload_shed_reads")
        raise OverloadError(f"read shed: {reason}", reason=reason)

    def admit_write(self) -> None:
        """Gate a write; writes shed in *both* modes.

        Serving a stale write makes no sense, and under overload the
        write path (maintenance fan-out) is exactly the work to stop
        accepting.
        """
        reason = self.overload_reason()
        if reason is None:
            return
        self.stats.add("overload_shed_writes")
        raise OverloadError(f"write shed: {reason}", reason=reason)
