"""The Pequod server: the public single-node API (paper §2).

``PequodServer`` is an ordered key-value cache with string keys and
values supporting the four basic operations — ``get``, ``put``,
``remove``, ``scan`` — plus ``add_join`` for installing cache joins.
Like the paper's prototype it is single-threaded; the distributed layer
(``repro.distrib``) composes several servers over a network.

Example (the Twip timeline join from §2.2)::

    srv = PequodServer()
    srv.add_join("t|<user>|<time>|<poster> = "
                 "check s|<user>|<poster> copy p|<poster>|<time>")
    srv.put("s|ann|bob", "1")          # ann follows bob
    srv.put("p|bob|0100", "hello!")    # bob tweets at time 0100
    srv.scan("t|ann|", "t|ann}")       # -> [("t|ann|0100|bob", "hello!")]
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..store.batch import WriteBatch, as_ops
from ..store.keys import key_successor, prefix_upper_bound
from ..store.stats import StoreStats
from ..store.store import OrderedStore
from .clock import Clock, SystemClock
from .eviction import EvictionManager
from .executor import ChangeListener, DataResolver, JoinEngine
from .grammar import parse_joins
from .hub import ChangeHub, EventSink, WatchHandle
from .joins import CacheJoin
from .load import AdmissionController, OverloadPolicy


class PequodServer:
    """A single Pequod cache server.

    Parameters mirror the paper's tunables:

    * ``subtable_config`` — developer-marked subtable boundaries per
      table (§4.1), e.g. ``{"t": 2}`` for one subtable per timeline.
    * ``enable_sharing`` / ``enable_hints`` — the §4.2/§4.3
      optimizations, exposed so the ablation benchmarks can toggle them.
    * ``memory_limit`` — optional byte budget; exceeding it evicts
      least-recently-used ranges (§2.5).
    * ``clock`` — injectable time source for snapshot joins.
    * ``store_impl`` — the ordered map backing the data plane
      (``"rbtree"``, ``"sortedarray"``, or ``"disk"`` for the
      value-spilling tier; None picks the default).
    * ``overload_policy`` — optional :class:`OverloadPolicy`; when set,
      every operation passes admission control (shed with
      ``OverloadError``, or degrade to bounded-staleness reads).
    * ``data_dir`` — when set, client writes are journaled to a WAL and
      checkpointed into segment files under this directory, and the
      server recovers prior durable state on startup.  Joins installed
      afterwards recompute from the recovered base data on demand —
      computed output is never persisted.
    * ``wal_fsync`` — the WAL durability policy (``"always"``,
      ``"batch"``, or ``"off"``; see :mod:`repro.persist.wal`).
    * ``mode`` — the deployment shape (§2).  ``"write-through"`` (the
      default) applies client writes to the cache synchronously.
      ``"write-around"`` routes puts/removes to an internal
      :class:`~repro.backing.database.BackingDatabase` instead; a
      change feed + :class:`~repro.cdc.pump.CdcPump` replay them into
      the cache asynchronously, and :meth:`settle_cdc` is the
      convergence barrier.  With a ``data_dir`` the change feed is the
      durable record (journaled under ``data_dir/cdc``) and the cache
      rebuilds by fenced backfill on startup.
    """

    def __init__(
        self,
        subtable_config: Optional[Dict[str, int]] = None,
        clock: Optional[Clock] = None,
        enable_sharing: bool = True,
        enable_hints: bool = True,
        memory_limit: Optional[int] = None,
        eviction_policy: str = "lru",
        stats: Optional[StoreStats] = None,
        name: str = "pequod",
        store_impl=None,
        overload_policy: Optional[OverloadPolicy] = None,
        data_dir: Optional[str] = None,
        wal_fsync: str = "batch",
        mode: str = "write-through",
    ) -> None:
        if mode not in ("write-through", "write-around"):
            raise ValueError(
                f"unknown deployment mode {mode!r}; expected "
                "'write-through' or 'write-around'"
            )
        self.name = name
        self.mode = mode
        self.stats = stats if stats is not None else StoreStats()
        self.clock = clock if clock is not None else SystemClock()
        self.data_dir = data_dir
        if store_impl == "disk":
            # Construct the factory here rather than via resolve_map_impl
            # so the spill tier lands under the data dir (or a temp dir)
            # and shares the server's stats.
            import os

            from ..store.diskmap import DiskMapFactory

            store_impl = DiskMapFactory(
                directory=(
                    os.path.join(data_dir, "spill") if data_dir else None
                ),
                stats=self.stats,
            )
        self.store = OrderedStore(
            subtable_config, stats=self.stats, map_impl=store_impl
        )
        self.engine = JoinEngine(
            self.store,
            clock=self.clock,
            stats=self.stats,
            enable_sharing=enable_sharing,
            enable_hints=enable_hints,
        )
        self.eviction = EvictionManager(
            self.engine,
            memory_limit,
            policy=eviction_policy,
            spill=self.store.supports_spill(),
        )
        self.load: Optional[AdmissionController] = (
            AdmissionController(self.engine, overload_policy)
            if overload_policy is not None
            else None
        )
        if data_dir is not None and mode != "write-around":
            from ..persist import PersistenceManager

            self.persist: Optional[PersistenceManager] = PersistenceManager(
                data_dir, fsync=wal_fsync, stats=self.stats
            )
            # Recovery runs before any join is installed, so only base
            # data is rebuilt; computed ranges start untracked and
            # recompute on first demand.
            self.persist.recover_into(self.store)
        else:
            # Write-around durability lives in the CDC journal, not the
            # cache WAL: the cache is rebuilt by backfill on startup.
            self.persist = None
        self.backing = None
        self.cdc = None
        if mode == "write-around":
            import os as _os

            from ..backing.database import BackingDatabase
            from ..cdc import CdcPump, ChangeFeed

            feed = ChangeFeed(
                _os.path.join(data_dir, "cdc") if data_dir else None,
                fsync=wal_fsync,
                stats=self.stats,
            )
            self.backing = BackingDatabase(store_impl=None, feed=None)
            # Replay the journal (if any) to rebuild the DB a previous
            # process accumulated, then start recording live writes.
            self.backing.attach_feed(feed, replay=True)
            self.cdc = CdcPump(self.backing, feed, self.engine)
            # A cold cache converges via fenced backfill before tailing.
            self.cdc.bootstrap()
            # If writers outrun maintenance, the feed drains through the
            # pump instead of growing without bound.
            feed.backpressure_hook = self.cdc.step
        self._hub: Optional[ChangeHub] = None
        self._metrics = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PequodServer {self.name!r} keys={len(self.store)}>"

    # ------------------------------------------------------------------
    # Cache joins
    # ------------------------------------------------------------------
    def add_join(
        self, join: Union[str, CacheJoin, Sequence[CacheJoin]]
    ) -> List[CacheJoin]:
        """Install one or more cache joins.

        Accepts join text in the Figure-2 grammar (possibly several
        joins separated by ``;``), a :class:`CacheJoin`, a fluent
        :class:`~repro.client.builder.JoinBuilder` (anything with a
        ``build()`` compiling to a join), or a sequence of them.
        Returns the installed joins.
        """
        if isinstance(join, str):
            parsed: List[CacheJoin] = parse_joins(join)
        elif isinstance(join, CacheJoin):
            parsed = [join]
        elif hasattr(join, "build"):
            parsed = [join.build()]
        else:
            parsed = [
                item.build() if hasattr(item, "build") else item
                for item in join
            ]
        # Validate the whole batch before installing any of it, so a
        # failing statement cannot leave a partial install behind.
        accepted: List[CacheJoin] = []
        for item in parsed:
            self.engine.validate_join(item, pending=accepted)
            accepted.append(item)
        for item in parsed:
            self.engine.add_join(item, validate=False)
        return parsed

    @property
    def joins(self) -> List[CacheJoin]:
        return list(self.engine.joins)

    # ------------------------------------------------------------------
    # The four basic operations (§2)
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[str]:
        """The value for ``key``, computing overlapping joins on demand."""
        if self.load is not None:
            self.load.admit_read()
        self.stats.add("op_get")
        return self.engine.get(key)

    def put(self, key: str, value: str) -> None:
        """Write ``key``; incremental maintenance runs before returning
        (write-through) or asynchronously via the CDC pump
        (write-around, where the write goes to the backing DB only)."""
        if not isinstance(value, str):
            raise TypeError("Pequod values are strings")
        if self.load is not None:
            self.load.admit_write()
        self.stats.add("op_put")
        if self.backing is not None:
            self.backing.put(key, value)
            self._maybe_pump()
            return
        if self.persist is not None:
            self.persist.log_put(key, value)
        self.engine.apply_put(key, value)
        self.eviction.maybe_evict()
        if self.persist is not None:
            self.persist.maybe_checkpoint()

    def remove(self, key: str) -> bool:
        """Remove ``key``; returns True if it was present."""
        if self.load is not None:
            self.load.admit_write()
        self.stats.add("op_remove")
        if self.backing is not None:
            present = self.backing.remove(key)
            self._maybe_pump()
            return present
        if self.persist is not None:
            self.persist.log_remove(key)
        return self.engine.apply_remove(key)

    def write_batch(self) -> WriteBatch:
        """A maintenance-aware write batch bound to this server.

        Buffered writes coalesce per key and apply as one batched
        maintenance pass (see ``repro.store.batch``)::

            with srv.write_batch() as batch:
                batch.put("p|bob|0100", "hello")
                batch.put("p|bob|0101", "again")
        """
        return WriteBatch(sink=self)

    def apply_batch(self, batch) -> int:
        """Apply a :class:`WriteBatch` (or operation iterable) at once.

        Incremental maintenance runs once per affected updater range
        instead of once per write; returns the number of net changes.
        """
        if self.load is not None:
            self.load.admit_write()
        self.stats.add("op_batch")
        if self.backing is not None:
            ops = as_ops(batch)
            for op in ops:
                if op.kind == "put":
                    self.backing.put(op.key, op.value)
                else:
                    self.backing.remove(op.key)
            self._maybe_pump()
            return len(ops)
        if self.persist is not None:
            ops = as_ops(batch)
            self.persist.log_ops(ops)
            batch = ops
        applied = self.engine.apply_batch(batch)
        self.eviction.maybe_evict()
        if self.persist is not None:
            self.persist.maybe_checkpoint()
        return applied

    def put_many(self, pairs: Sequence[Tuple[str, str]]) -> int:
        """Batch-write ``(key, value)`` pairs; returns changes applied."""
        return self.apply_batch(WriteBatch().update(pairs))

    def scan(self, first: str, last: str) -> List[Tuple[str, str]]:
        """Ordered pairs with ``first <= key < last`` (§2's scan)."""
        if self.load is not None:
            self.load.admit_read()
        self.stats.add("op_scan")
        results = self.engine.scan(first, last)
        self.eviction.maybe_evict()
        return results

    # ------------------------------------------------------------------
    # Convenience forms used throughout the applications
    # ------------------------------------------------------------------
    def scan_prefix(self, prefix: str) -> List[Tuple[str, str]]:
        """All pairs whose keys start with ``prefix``."""
        return self.scan(prefix, prefix_upper_bound(prefix))

    def count(self, first: str, last: str) -> int:
        return len(self.scan(first, last))

    def exists(self, key: str) -> bool:
        return self.get(key) is not None

    def get_range(self, key: str) -> List[Tuple[str, str]]:
        return self.scan(key, key_successor(key))

    # ------------------------------------------------------------------
    # Integration points
    # ------------------------------------------------------------------
    def add_listener(self, listener: ChangeListener) -> None:
        """Observe every store change (used for subscriptions, §2.4)."""
        self.engine.listeners.append(listener)

    @property
    def hub(self) -> ChangeHub:
        """The server's change hub (§2.4's push model, client-facing).

        Attached to the engine's listener chain on first use, so
        servers nobody watches pay nothing on the write path.
        """
        if self._hub is None:
            self.attach_hub()
        return self._hub

    def attach_hub(self, gate=None) -> ChangeHub:
        """Attach the change hub now, optionally behind ``gate``.

        ``gate(key, old, new, kind) -> bool`` filters which committed
        changes become watch events.  Cluster nodes install one before
        serving: replica and mirror applies re-play changes whose
        events already fired at the range owner, and the gate is what
        keeps a cluster-wide watch exactly-once.  Must be called
        before the first ``watch``; the lazy :attr:`hub` property is
        the ungated default.
        """
        if self._hub is not None:
            raise RuntimeError("change hub is already attached")
        self._hub = ChangeHub()
        if gate is None:
            self.add_listener(self._hub.publish)
        else:
            hub = self._hub

            def publish(key, old, new, kind):
                if gate(key, old, new, kind):
                    hub.publish(key, old, new, kind)

            self.add_listener(publish)
        return self._hub

    def watch(self, lo: str, hi: str, sink: EventSink) -> WatchHandle:
        """Push every future committed change in ``[lo, hi)`` — client
        writes and maintained join outputs alike — to ``sink``, exactly
        once, in commit order (per key: key-version order)."""
        return self.hub.watch(lo, hi, sink)

    def set_resolver(self, resolver: Optional[DataResolver]) -> None:
        """Install the missing-data resolver (§3.3)."""
        self.engine.resolver = resolver

    def memory_bytes(self) -> int:
        return self.engine.memory_bytes()

    def key_count(self) -> int:
        return len(self.store)

    # ------------------------------------------------------------------
    # Write-around / CDC
    # ------------------------------------------------------------------
    def _maybe_pump(self) -> None:
        """Opportunistically apply a pending batch once enough change
        records accumulate — keeps staleness bounded under sustained
        write load without making any single write synchronous."""
        cdc = self.cdc
        if cdc is not None and cdc.lag_records >= cdc.batch_size:
            cdc.step()

    def settle_cdc(self) -> int:
        """Drain the change feed into the cache — the write-around
        convergence barrier (compare: pgcache's ``wait_for_cdc``).
        Blocks until the pump's cursor reaches the feed's high-water
        mark; returns records consumed.  A no-op (0) outside
        write-around mode, so callers need not branch per deployment."""
        if self.cdc is None:
            return 0
        consumed = self.cdc.settle()
        self.eviction.maybe_evict()
        return consumed

    # ------------------------------------------------------------------
    # Durability lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Force all acknowledged writes to durable storage (no-op
        without a ``data_dir``)."""
        if self.persist is not None:
            self.persist.flush()
        if self.cdc is not None:
            self.cdc.feed.flush()

    def checkpoint(self) -> None:
        """Fold the WAL into a checkpoint segment now (no-op without a
        ``data_dir``); startup recovery gets cheaper, the WAL empties."""
        if self.persist is not None:
            self.persist.checkpoint()

    def close(self) -> None:
        """Flush and release durable state — the graceful-shutdown path
        (``repro serve`` calls this on SIGTERM/SIGINT).  Safe to call
        twice; the server must not be written to afterwards."""
        if self.persist is not None:
            self.persist.close()
        if self.cdc is not None:
            self.cdc.feed.close()
        factory = self.store._map_factory
        if getattr(factory, "spill_store", None) is not None:
            factory.close()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def metrics(self):
        """The server's scrape-time metric registry (lazy; a server
        nobody scrapes never builds it)."""
        if self._metrics is None:
            from ..metrics import ServerMetrics

            self._metrics = ServerMetrics(self)
        return self._metrics

    def metrics_snapshot(self) -> Dict[str, float]:
        """Flat stats superset: every raw counter plus the derived
        per-join / per-table / backlog / overload series."""
        return self.metrics.snapshot()

    def metrics_text(self) -> str:
        """The Prometheus exposition rendering of the snapshot."""
        return self.metrics.prometheus()
