"""Pequod's core: cache joins over an ordered key-value cache.

The paper's primary contribution — declaratively defined, incrementally
maintained, dynamic, partially materialized views for a distributed
key-value cache — lives here.
"""

from .clock import Clock, SimClock, SystemClock
from .eviction import Evictable, EvictionManager
from .executor import ChangeListener, DataResolver, JoinEngine
from .grammar import GrammarError, parse_join, parse_joins
from .joins import CacheJoin, JoinError, MaintenanceType, Source
from .operators import (
    AGGREGATES,
    CHECK,
    COPY,
    COUNT,
    MAX,
    MIN,
    OPERATORS,
    SUM,
    AggValue,
    ChangeKind,
    UpdateOutcome,
)
from .hub import ChangeEvent, ChangeHub, WatchHandle
from .pattern import Pattern, PatternError, Segment
from .ranges import SlotConstraints
from .server import PequodServer
from .status import (
    PendingEntry,
    RangeState,
    StatusRange,
    StatusTable,
    compact_pending,
)
from .updaters import Updater, install_updater

__all__ = [
    "AGGREGATES",
    "AggValue",
    "CHECK",
    "COPY",
    "COUNT",
    "CacheJoin",
    "ChangeEvent",
    "ChangeHub",
    "ChangeKind",
    "ChangeListener",
    "Clock",
    "DataResolver",
    "Evictable",
    "EvictionManager",
    "GrammarError",
    "JoinEngine",
    "JoinError",
    "MAX",
    "MIN",
    "MaintenanceType",
    "OPERATORS",
    "Pattern",
    "PatternError",
    "PendingEntry",
    "PequodServer",
    "RangeState",
    "Segment",
    "SimClock",
    "SlotConstraints",
    "Source",
    "StatusRange",
    "StatusTable",
    "SUM",
    "SystemClock",
    "UpdateOutcome",
    "Updater",
    "WatchHandle",
    "compact_pending",
    "install_updater",
    "parse_join",
    "parse_joins",
]
