"""Eviction under memory pressure (paper §2.5).

Pequod evicts least-recently-used *ranges*: computed join outputs,
remote subscribed copies, and cached base data.  Evicting a range
removes its keys and invalidates dependent computed data — dependents
see ordinary REMOVE notifications, so downstream copies retract and
downstream check-ranges invalidate, giving the paper's transitive
effect for free.

The engine tracks join status ranges in its LRU automatically.  Other
layers (the database deployment's cached base ranges, the distributed
layer's remote subscriptions) register :class:`Evictable` payloads on
the same list, so one policy covers all three kinds of data.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .executor import JoinEngine
from .status import StatusRange


class Evictable:
    """Interface for non-status-range LRU payloads."""

    def evict(self, engine: JoinEngine) -> None:
        raise NotImplementedError


#: Eviction policies: plain LRU (the paper's prototype) and the
#: paper's suggested improvement — weigh reload cost against bytes.
POLICY_LRU = "lru"
POLICY_COST = "cost"


class EvictionManager:
    """Range eviction driving a :class:`JoinEngine`'s tracked ranges.

    ``policy="lru"`` evicts the coldest range (§2.5's prototype
    behaviour).  ``policy="cost"`` examines the ``window`` coldest
    candidates and evicts the one freeing the most bytes per unit of
    recorded recomputation cost — "considering the expected costs of
    reloading a range", the improvement §2.5 proposes.
    """

    def __init__(
        self,
        engine: JoinEngine,
        limit_bytes: Optional[int] = None,
        policy: str = POLICY_LRU,
        window: int = 8,
        spill: bool = False,
    ) -> None:
        if policy not in (POLICY_LRU, POLICY_COST):
            raise ValueError(f"unknown eviction policy {policy!r}")
        self.engine = engine
        self.limit_bytes = limit_bytes
        self.policy = policy
        self.window = window
        #: When the store is disk-backed, memory pressure first *spills*
        #: the coldest range's values to segment files (keys, status
        #: ranges, and validity stay intact — reads just fault values
        #: back in) and only falls back to true §2.5 eviction when
        #: spilling frees nothing.  Cold data stops costing RAM without
        #: paying recomputation on the next read.
        self.spill = spill and engine.store.supports_spill()
        if limit_bytes is not None:
            # The whole-table validity fast path skips the per-range
            # validation walk — including its LRU recency touches, which
            # this manager's coldest-first choice depends on.  A
            # memory-limited engine keeps the walk.
            engine.enable_whole_table_fastpath = False
        self.evictions = 0
        self.spills = 0

    def over_limit(self) -> bool:
        return (
            self.limit_bytes is not None
            and self.engine.memory_bytes() > self.limit_bytes
        )

    def maybe_evict(self) -> int:
        """Evict ranges until under the limit; returns count evicted."""
        count = 0
        while self.over_limit():
            if not self.evict_one():
                break
            count += 1
        return count

    def evict_one(self) -> bool:
        """Relieve pressure once: spill a cold range if the store can
        (and the coldest candidate has unspilled values), else evict
        the range chosen by the configured policy."""
        if self.spill and self._spill_one():
            return True
        entry = self._choose()
        if entry is None:
            return self.spill and self.engine.store.spill_all() > 0
        self.engine.lru.remove(entry)
        payload = entry.payload
        if isinstance(payload, Evictable):
            payload.evict(self.engine)
        else:
            tbl_name, sr = payload  # type: Tuple[str, StatusRange]
            self._evict_status_range(tbl_name, sr)
        self.evictions += 1
        self.engine.stats.add("evictions")
        return True

    def _spill_one(self) -> bool:
        """Spill the coldest not-yet-spilled status range; True if any
        bytes moved to disk."""
        for entry in self.engine.lru:
            if entry.pinned:
                continue
            payload = entry.payload
            if isinstance(payload, Evictable):
                continue
            _, sr = payload
            if sr.spilled:
                continue
            sr.spilled = True  # even if nothing moved: don't rescan it
            freed = self.engine.store.spill_range(sr.lo, sr.hi)
            if freed > 0:
                self.spills += 1
                self.engine.stats.add("spill_evictions")
                return True
        return False

    def _choose(self):
        if self.policy == POLICY_LRU:
            return self.engine.lru.coldest()
        best = None
        best_score = -1.0
        examined = 0
        for entry in self.engine.lru:
            if entry.pinned:
                continue
            examined += 1
            score = self._score(entry.payload)
            if score > best_score:
                best, best_score = entry, score
            if examined >= self.window:
                break
        return best

    def _score(self, payload) -> float:
        """Bytes freed per unit of recompute cost (higher = evict first)."""
        if isinstance(payload, Evictable):
            return 1.0  # remote/base ranges: reload cost is one fetch
        _, sr = payload
        freed = 0
        # Scoring is introspection, not a client scan: the non-counting
        # iteration keeps eviction from inflating read counters.
        for node in self.engine.store.iter_nodes(sr.lo, sr.hi):
            freed += len(node.key) + 64
        return freed / (1.0 + sr.compute_cost)

    def _evict_status_range(self, tbl_name: str, sr: StatusRange) -> None:
        # Removing the keys sends REMOVE notifications downstream, which
        # retracts or invalidates dependent computed data transitively.
        self.engine._clear_range(sr.lo, sr.hi)
        stable = self.engine.status.get(tbl_name)
        if stable is not None:
            stable.remove(sr)
        sr.lru_entry = None
        # Evicted ranges must not linger in the validation memo: the
        # hints would miss safely (the range is detached) but would pin
        # the dead range, its pending log, and its hinted store node in
        # memory the eviction was supposed to reclaim.
        self.engine._validation_memo.pop(tbl_name, None)
