"""Key patterns: the schemas of cache-join inputs and outputs.

A pattern like ``t|<user>|<time>|<poster>`` describes a family of keys:
literal segments fix text, slot segments (in angle brackets) capture
values.  Patterns appear as the output and source specifications of
cache joins (paper §3, Figure 2) and drive three operations:

* **match** a concrete key, extracting slot values;
* **expand** a full slot assignment into a concrete key;
* **prefix expansion** of a partial assignment, which underlies
  *containing range* computation (§3.1) — the minimal source range
  worth scanning given what is already known.

The paper writes slots bare (``t|user|time|poster``); real Pequod used
separate slot declarations.  Our textual form marks slots explicitly
with ``<...>`` to keep the grammar unambiguous, and the parser accepts
the paper's bare style through a compatibility rewrite (see
``repro.core.grammar``).

Compilation
-----------

Matching and expansion sit on every hot path: each source key examined
during join execution and each updater fired by a write runs ``match``,
and every installed output runs ``expand``.  Patterns therefore
*compile* at construction time:

* **Fixed-width patterns** (every slot carries a declared width, §3's
  "fixed numbers of bytes") precompute absolute character offsets, so
  ``match`` is a length check plus pure string slicing — no regex, no
  split.
* **Variable-width patterns** compile to one anchored regular
  expression with a named group per slot (repeats become
  backreferences), so ``match`` is a single C-level ``fullmatch``.
* ``expand`` precompiles a ``str.format`` template.
* ``expand_prefix`` and containing-range computation (§3.1) memoize
  recent results per pattern in small LRU maps — the access-path state
  caching that read-heavy workloads repay.

The original segment-walking implementations are kept as the
``*_reference`` methods: they are the executable specification the
compiled paths are property-tested against, and the fallback when
compilation is globally disabled (``set_pattern_compilation(False)``,
used by ``repro bench read_path`` to measure the pre-compilation
baseline).
"""

from __future__ import annotations

import re
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from ..store.keys import SEP, key_successor, prefix_upper_bound

_SLOT_RE = re.compile(r"^<([A-Za-z_][A-Za-z0-9_]*)(?::(\d+))?>$")

#: Global compilation switch.  On by default; the read-path benchmark
#: flips it off to measure the uncompiled baseline.
_COMPILED = True


def set_pattern_compilation(enabled: bool) -> bool:
    """Enable or disable compiled pattern paths globally.

    Returns the previous setting so callers can restore it.  Intended
    for benchmarks and equivalence tests; production leaves it on.
    """
    global _COMPILED
    previous = _COMPILED
    _COMPILED = bool(enabled)
    return previous


def pattern_compilation_enabled() -> bool:
    return _COMPILED


class LRUMemo:
    """A tiny bounded memo (insertion-ordered dict, LRU eviction)."""

    __slots__ = ("cap", "data")

    def __init__(self, cap: int = 512) -> None:
        self.cap = cap
        self.data: OrderedDict = OrderedDict()

    def get(self, key):
        value = self.data.get(key)
        if value is not None:
            self.data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        data = self.data
        data[key] = value
        if len(data) > self.cap:
            data.popitem(last=False)


class Segment:
    """One ``|``-separated piece of a pattern: literal text or a slot.

    Slots may carry a fixed width (``<time:10>``), the paper's §3 slot
    definition "taking fixed numbers of bytes": matching then requires
    exactly that many characters, which makes slot values prefix-free
    and containing ranges exactly minimal.
    """

    __slots__ = ("text", "slot", "width")

    def __init__(self, text: str, slot: Optional[str], width: Optional[int] = None) -> None:
        self.text = text
        self.slot = slot
        self.width = width

    @property
    def is_slot(self) -> bool:
        return self.slot is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.is_slot:
            return self.text
        if self.width is not None:
            return f"<{self.slot}:{self.width}>"
        return f"<{self.slot}>"


class PatternError(ValueError):
    """Raised for malformed patterns or invalid expansions."""


class Pattern:
    """A parsed key pattern.

    ``Pattern("t|<user>|<time>|<poster>")`` has the literal table tag
    ``t`` and three slots.  Patterns compare equal by their source text.
    """

    __slots__ = (
        "text",
        "segments",
        "slots",
        "table",
        "_regex",
        "_fixed",
        "_fmt",
        "_width_checks",
        "_prefix_memo",
        "_range_memo",
        "_tuple_spans",
        "_dup_checks",
        "slot_index",
    )

    def __init__(self, text: str) -> None:
        if not text:
            raise PatternError("empty pattern")
        self.text = text
        self.segments: List[Segment] = []
        seen: Dict[str, int] = {}
        widths: Dict[str, Optional[int]] = {}
        for raw in text.split(SEP):
            m = _SLOT_RE.match(raw)
            if m:
                name = m.group(1)
                width = int(m.group(2)) if m.group(2) else None
                if width == 0:
                    raise PatternError(f"zero-width slot in {text!r}")
                if name in widths and widths[name] != width:
                    raise PatternError(
                        f"slot {name!r} declared with conflicting widths in "
                        f"{text!r}"
                    )
                widths[name] = width
                seen[name] = seen.get(name, 0) + 1
                self.segments.append(Segment(raw, name, width))
            else:
                if "<" in raw or ">" in raw:
                    raise PatternError(f"malformed segment {raw!r} in {text!r}")
                self.segments.append(Segment(raw, None))
        #: Slot names in order of first appearance.
        self.slots: Tuple[str, ...] = tuple(seen)
        first = self.segments[0]
        if first.is_slot:
            raise PatternError(
                f"pattern {text!r} must start with a literal table tag"
            )
        self.table = first.text
        self._compile()

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _compile(self) -> None:
        """Precompute the match/expand plans; see the module docstring."""
        # Anchored regex: one named group per slot, backreferences for
        # repeats (which also enforces repeated-slot agreement in C).
        pieces: List[str] = []
        named: set = set()
        for seg in self.segments:
            if not seg.is_slot:
                pieces.append(re.escape(seg.text))
            elif seg.slot in named:
                pieces.append(f"(?P={seg.slot})")
            else:
                named.add(seg.slot)
                body = f"[^{re.escape(SEP)}]"
                body += f"{{{seg.width}}}" if seg.width is not None else "*"
                pieces.append(f"(?P<{seg.slot}>{body})")
        self._regex = re.compile(re.escape(SEP).join(pieces))

        # Fixed-width slicing plan, when every slot declares a width:
        # literal runs (literals plus separators, merged) are verified
        # with offset startswith, slots extracted by slicing.
        self._fixed = None
        if all(seg.width is not None for seg in self.segments if seg.is_slot):
            runs: List[Tuple[int, str]] = []
            slot_spans: List[Tuple[int, int, str]] = []
            run_start, run_text = 0, []
            pos = 0
            for idx, seg in enumerate(self.segments):
                if idx:
                    if not run_text:
                        run_start = pos
                    run_text.append(SEP)
                    pos += 1
                if seg.is_slot:
                    if run_text:
                        runs.append((run_start, "".join(run_text)))
                        run_text = []
                    slot_spans.append((pos, pos + seg.width, seg.slot))
                    pos += seg.width
                else:
                    if not run_text:
                        run_start = pos
                    run_text.append(seg.text)
                    pos += len(seg.text)
            if run_text:
                runs.append((run_start, "".join(run_text)))
            has_dup = len(self.slots) < sum(
                1 for seg in self.segments if seg.is_slot
            )
            self._fixed = (pos, tuple(runs), tuple(slot_spans), has_dup)

        # Expansion template: literal braces escaped, slots as fields.
        fmt: List[str] = []
        for idx, seg in enumerate(self.segments):
            if idx:
                fmt.append(SEP)
            if seg.is_slot:
                fmt.append("{" + seg.slot + "}")
            else:
                fmt.append(seg.text.replace("{", "{{").replace("}", "}}"))
        self._fmt = "".join(fmt)
        self._width_checks = tuple(
            (name, width) for name, width in (
                (seg.slot, seg.width) for seg in self.segments if seg.is_slot
            ) if width is not None
        )

        # Write-side slot plan (the updater-fire analogue of the fixed
        # slicing plan): for fixed-width patterns, the absolute
        # extraction slice of each slot's *first* occurrence, in
        # ``self.slots`` order, plus equality checks for repeats.
        # ``slot_tuple`` uses it to extract slot values as a tuple —
        # no regex, no dict — which is what compiled execution plans
        # (``repro.core.plan``) consume on every eager updater fire.
        self.slot_index: Dict[str, int] = {
            name: i for i, name in enumerate(self.slots)
        }
        self._tuple_spans: Optional[Tuple[Tuple[int, int], ...]] = None
        self._dup_checks: Tuple[Tuple[int, int, int], ...] = ()
        if self._fixed is not None:
            _, _, slot_spans, _ = self._fixed
            firsts: Dict[str, Tuple[int, int]] = {}
            dups: List[Tuple[int, int, int]] = []
            for start, end, name in slot_spans:
                if name in firsts:
                    dups.append((start, end, self.slot_index[name]))
                else:
                    firsts[name] = (start, end)
            self._tuple_spans = tuple(firsts[name] for name in self.slots)
            self._dup_checks = tuple(dups)

        self._prefix_memo = LRUMemo()
        self._range_memo = LRUMemo()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pattern({self.text!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Pattern) and self.text == other.text

    def __hash__(self) -> int:
        return hash(self.text)

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match(self, key: str) -> Optional[Dict[str, str]]:
        """Slot values if ``key`` fits this pattern, else None.

        A key fits when it has exactly the pattern's segment count,
        every literal matches, and repeated slots agree.  Pequod is
        schema-free, so ranges may contain keys that don't match their
        source patterns; those are skipped during join execution (§3.1).
        """
        if not _COMPILED:
            return self.match_reference(key)
        fixed = self._fixed
        if fixed is not None:
            total, runs, slot_spans, has_dup = fixed
            if len(key) != total:
                return None
            for start, text in runs:
                if not key.startswith(text, start):
                    return None
            out: Dict[str, str] = {}
            if has_dup:
                for start, end, name in slot_spans:
                    value = key[start:end]
                    if SEP in value:
                        return None
                    prior = out.get(name)
                    if prior is None:
                        out[name] = value
                    elif prior != value:
                        return None
            else:
                for start, end, name in slot_spans:
                    value = key[start:end]
                    if SEP in value:
                        return None
                    out[name] = value
            return out
        m = self._regex.fullmatch(key)
        return m.groupdict() if m is not None else None

    def match_reference(self, key: str) -> Optional[Dict[str, str]]:
        """The uncompiled segment-walking matcher — the executable
        specification the compiled paths are property-tested against."""
        parts = key.split(SEP)
        if len(parts) != len(self.segments):
            return None
        out: Dict[str, str] = {}
        for part, seg in zip(parts, self.segments):
            if seg.is_slot:
                if seg.width is not None and len(part) != seg.width:
                    return None
                prior = out.get(seg.slot)
                if prior is None:
                    out[seg.slot] = part
                elif prior != part:
                    return None
            elif part != seg.text:
                return None
        return out

    def matches(self, key: str) -> bool:
        return self.match(key) is not None

    def slot_tuple(self, key: str) -> Optional[Tuple[str, ...]]:
        """Slot values of ``key`` as a tuple in ``self.slots`` order.

        The write-side slot plan: semantically ``match`` without the
        dict — fixed-width patterns extract by absolute slices, variable
        ones by one anchored ``fullmatch`` whose group order *is* the
        first-appearance order of ``self.slots``.  Compiled execution
        plans index the result by precomputed slot offsets, so an eager
        updater fire allocates no dictionaries at all.
        """
        if not _COMPILED:
            return self.slot_tuple_reference(key)
        fixed = self._fixed
        if fixed is not None:
            total, runs, _, _ = fixed
            if len(key) != total:
                return None
            for start, text in runs:
                if not key.startswith(text, start):
                    return None
            values = tuple(key[s:e] for s, e in self._tuple_spans)
            for value in values:
                if SEP in value:
                    return None
            for start, end, slot_idx in self._dup_checks:
                if key[start:end] != values[slot_idx]:
                    return None
            return values
        m = self._regex.fullmatch(key)
        return m.groups() if m is not None else None

    def slot_tuple_reference(self, key: str) -> Optional[Tuple[str, ...]]:
        """Uncompiled ``slot_tuple`` (specification), via the reference
        matcher."""
        match = self.match_reference(key)
        if match is None:
            return None
        return tuple(match[name] for name in self.slots)

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def expand(self, slots: Dict[str, str]) -> str:
        """The concrete key for a full slot assignment."""
        if not _COMPILED:
            return self.expand_reference(slots)
        try:
            key = self._fmt.format_map(slots)
        except KeyError as exc:
            raise PatternError(
                f"missing slot {exc.args[0]!r} expanding {self.text!r}"
            ) from None
        for name, width in self._width_checks:
            if len(slots[name]) != width:
                raise PatternError(
                    f"slot {name!r} value {slots[name]!r} does not have "
                    f"declared width {width} in {self.text!r}"
                )
        return key

    def expand_reference(self, slots: Dict[str, str]) -> str:
        """The uncompiled segment-walking expander (specification)."""
        parts: List[str] = []
        for seg in self.segments:
            if seg.is_slot:
                try:
                    value = slots[seg.slot]
                except KeyError:
                    raise PatternError(
                        f"missing slot {seg.slot!r} expanding {self.text!r}"
                    ) from None
                if seg.width is not None and len(value) != seg.width:
                    raise PatternError(
                        f"slot {seg.slot!r} value {value!r} does not have "
                        f"declared width {seg.width} in {self.text!r}"
                    )
                parts.append(value)
            else:
                parts.append(seg.text)
        return SEP.join(parts)

    def expand_prefix(self, slots: Dict[str, str]) -> Tuple[str, bool]:
        """Expand as far as consecutive known segments allow.

        Returns ``(prefix, complete)``.  When ``complete`` is False the
        prefix ends just before the first unknown slot and includes the
        trailing separator, ready to serve as a scan bound.  Results
        are memoized per assignment (an LRU keyed by the slot items):
        repeated scans of the same join ranges re-derive the same
        prefixes constantly.
        """
        if not _COMPILED:
            return self.expand_prefix_reference(slots)
        memo_key = tuple(sorted(slots.items()))
        hit = self._prefix_memo.get(memo_key)
        if hit is None:
            hit = self.expand_prefix_reference(slots)
            self._prefix_memo.put(memo_key, hit)
        return hit

    def expand_prefix_reference(self, slots: Dict[str, str]) -> Tuple[str, bool]:
        parts: List[str] = []
        for seg in self.segments:
            if seg.is_slot and seg.slot not in slots:
                return SEP.join(parts) + SEP if parts else "", False
            parts.append(slots[seg.slot] if seg.is_slot else seg.text)
        return SEP.join(parts), True

    # ------------------------------------------------------------------
    # Containing ranges (§3.1)
    # ------------------------------------------------------------------
    def containing_range(
        self,
        exact: Dict[str, str],
        bounds: Optional[Dict[str, Tuple[Optional[str], Optional[str]]]] = None,
    ) -> Tuple[str, str]:
        """The minimal source key range consistent with the constraints.

        ``exact`` maps slot names to pinned values; ``bounds`` maps the
        frontier slot to ``(lo, hi)`` string bounds (either may be
        None).  This is the engine of
        :meth:`repro.core.ranges.SlotConstraints.containing_range`,
        hosted here so results memoize per source pattern — the same
        (pattern, constraints) pairs recur on every scan of a join.
        """
        if not _COMPILED:
            return self.containing_range_reference(exact, bounds)
        memo_key = (
            tuple(sorted(exact.items())),
            tuple(sorted(bounds.items())) if bounds else (),
        )
        hit = self._range_memo.get(memo_key)
        if hit is None:
            hit = self.containing_range_reference(exact, bounds)
            self._range_memo.put(memo_key, hit)
        return hit

    def containing_range_reference(
        self,
        exact: Dict[str, str],
        bounds: Optional[Dict[str, Tuple[Optional[str], Optional[str]]]] = None,
    ) -> Tuple[str, str]:
        """Walk the pattern, extending an exact prefix while segments
        are literals or exactly-assigned slots; the first non-exact
        segment closes the range using the slot's bounds (if any)."""
        bounds = bounds or {}
        parts: List[str] = []
        for seg in self.segments:
            if not seg.is_slot:
                parts.append(seg.text)
                continue
            value = exact.get(seg.slot)
            if value is not None:
                parts.append(value)
                continue
            prefix = SEP.join(parts) + SEP if parts else ""
            lo_bound, hi_bound = bounds.get(seg.slot, (None, None))
            lo = prefix + lo_bound if lo_bound else prefix
            if hi_bound:
                hi = prefix + hi_bound
            elif prefix:
                hi = prefix_upper_bound(prefix)
            else:  # pattern begins with an unbound slot (not allowed today)
                raise ValueError(f"unbounded containing range for {self!r}")
            return lo, hi
        key = SEP.join(parts)
        return key, key_successor(key)

    # ------------------------------------------------------------------
    def slot_positions(self, name: str) -> List[int]:
        """Segment indexes where slot ``name`` appears."""
        return [i for i, seg in enumerate(self.segments) if seg.slot == name]

    def shared_slots(self, other: "Pattern") -> List[str]:
        """Slot names appearing in both patterns, in this pattern's order."""
        theirs = set(other.slots)
        return [s for s in self.slots if s in theirs]


def pattern_from(obj: "Pattern | str") -> Pattern:
    """Coerce a string or Pattern into a Pattern."""
    return obj if isinstance(obj, Pattern) else Pattern(obj)


def common_prefix_segments(patterns: Sequence[Pattern]) -> int:
    """How many leading segments all ``patterns`` share literally."""
    if not patterns:
        return 0
    count = 0
    for segs in zip(*(p.segments for p in patterns)):
        first = segs[0]
        if first.is_slot or any(
            s.is_slot or s.text != first.text for s in segs[1:]
        ):
            break
        count += 1
    return count
