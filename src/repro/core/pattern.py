"""Key patterns: the schemas of cache-join inputs and outputs.

A pattern like ``t|<user>|<time>|<poster>`` describes a family of keys:
literal segments fix text, slot segments (in angle brackets) capture
values.  Patterns appear as the output and source specifications of
cache joins (paper §3, Figure 2) and drive three operations:

* **match** a concrete key, extracting slot values;
* **expand** a full slot assignment into a concrete key;
* **prefix expansion** of a partial assignment, which underlies
  *containing range* computation (§3.1) — the minimal source range
  worth scanning given what is already known.

The paper writes slots bare (``t|user|time|poster``); real Pequod used
separate slot declarations.  Our textual form marks slots explicitly
with ``<...>`` to keep the grammar unambiguous, and the parser accepts
the paper's bare style through a compatibility rewrite (see
``repro.core.grammar``).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from ..store.keys import SEP

_SLOT_RE = re.compile(r"^<([A-Za-z_][A-Za-z0-9_]*)(?::(\d+))?>$")


class Segment:
    """One ``|``-separated piece of a pattern: literal text or a slot.

    Slots may carry a fixed width (``<time:10>``), the paper's §3 slot
    definition "taking fixed numbers of bytes": matching then requires
    exactly that many characters, which makes slot values prefix-free
    and containing ranges exactly minimal.
    """

    __slots__ = ("text", "slot", "width")

    def __init__(self, text: str, slot: Optional[str], width: Optional[int] = None) -> None:
        self.text = text
        self.slot = slot
        self.width = width

    @property
    def is_slot(self) -> bool:
        return self.slot is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.is_slot:
            return self.text
        if self.width is not None:
            return f"<{self.slot}:{self.width}>"
        return f"<{self.slot}>"


class PatternError(ValueError):
    """Raised for malformed patterns or invalid expansions."""


class Pattern:
    """A parsed key pattern.

    ``Pattern("t|<user>|<time>|<poster>")`` has the literal table tag
    ``t`` and three slots.  Patterns compare equal by their source text.
    """

    __slots__ = ("text", "segments", "slots", "table")

    def __init__(self, text: str) -> None:
        if not text:
            raise PatternError("empty pattern")
        self.text = text
        self.segments: List[Segment] = []
        seen: Dict[str, int] = {}
        widths: Dict[str, Optional[int]] = {}
        for raw in text.split(SEP):
            m = _SLOT_RE.match(raw)
            if m:
                name = m.group(1)
                width = int(m.group(2)) if m.group(2) else None
                if width == 0:
                    raise PatternError(f"zero-width slot in {text!r}")
                if name in widths and widths[name] != width:
                    raise PatternError(
                        f"slot {name!r} declared with conflicting widths in "
                        f"{text!r}"
                    )
                widths[name] = width
                seen[name] = seen.get(name, 0) + 1
                self.segments.append(Segment(raw, name, width))
            else:
                if "<" in raw or ">" in raw:
                    raise PatternError(f"malformed segment {raw!r} in {text!r}")
                self.segments.append(Segment(raw, None))
        #: Slot names in order of first appearance.
        self.slots: Tuple[str, ...] = tuple(seen)
        first = self.segments[0]
        if first.is_slot:
            raise PatternError(
                f"pattern {text!r} must start with a literal table tag"
            )
        self.table = first.text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pattern({self.text!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Pattern) and self.text == other.text

    def __hash__(self) -> int:
        return hash(self.text)

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match(self, key: str) -> Optional[Dict[str, str]]:
        """Slot values if ``key`` fits this pattern, else None.

        A key fits when it has exactly the pattern's segment count,
        every literal matches, and repeated slots agree.  Pequod is
        schema-free, so ranges may contain keys that don't match their
        source patterns; those are skipped during join execution (§3.1).
        """
        parts = key.split(SEP)
        if len(parts) != len(self.segments):
            return None
        out: Dict[str, str] = {}
        for part, seg in zip(parts, self.segments):
            if seg.is_slot:
                if seg.width is not None and len(part) != seg.width:
                    return None
                prior = out.get(seg.slot)
                if prior is None:
                    out[seg.slot] = part
                elif prior != part:
                    return None
            elif part != seg.text:
                return None
        return out

    def matches(self, key: str) -> bool:
        return self.match(key) is not None

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def expand(self, slots: Dict[str, str]) -> str:
        """The concrete key for a full slot assignment."""
        parts: List[str] = []
        for seg in self.segments:
            if seg.is_slot:
                try:
                    value = slots[seg.slot]
                except KeyError:
                    raise PatternError(
                        f"missing slot {seg.slot!r} expanding {self.text!r}"
                    ) from None
                if seg.width is not None and len(value) != seg.width:
                    raise PatternError(
                        f"slot {seg.slot!r} value {value!r} does not have "
                        f"declared width {seg.width} in {self.text!r}"
                    )
                parts.append(value)
            else:
                parts.append(seg.text)
        return SEP.join(parts)

    def expand_prefix(self, slots: Dict[str, str]) -> Tuple[str, bool]:
        """Expand as far as consecutive known segments allow.

        Returns ``(prefix, complete)``.  When ``complete`` is False the
        prefix ends just before the first unknown slot and includes the
        trailing separator, ready to serve as a scan bound.
        """
        parts: List[str] = []
        for seg in self.segments:
            if seg.is_slot and seg.slot not in slots:
                return SEP.join(parts) + SEP if parts else "", False
            parts.append(slots[seg.slot] if seg.is_slot else seg.text)
        return SEP.join(parts), True

    def slot_positions(self, name: str) -> List[int]:
        """Segment indexes where slot ``name`` appears."""
        return [i for i, seg in enumerate(self.segments) if seg.slot == name]

    def shared_slots(self, other: "Pattern") -> List[str]:
        """Slot names appearing in both patterns, in this pattern's order."""
        theirs = set(other.slots)
        return [s for s in self.slots if s in theirs]


def pattern_from(obj: "Pattern | str") -> Pattern:
    """Coerce a string or Pattern into a Pattern."""
    return obj if isinstance(obj, Pattern) else Pattern(obj)


def common_prefix_segments(patterns: Sequence[Pattern]) -> int:
    """How many leading segments all ``patterns`` share literally."""
    if not patterns:
        return 0
    count = 0
    for segs in zip(*(p.segments for p in patterns)):
        first = segs[0]
        if first.is_slot or any(
            s.is_slot or s.text != first.text for s in segs[1:]
        ):
            break
        count += 1
    return count
