"""Server-push change streams (paper §2.4, applied to clients).

The paper's servers push updates to subscribers instead of being
polled: home servers keep per-range subscriptions in an interval tree
and forward every covered change (§2.4).  ``ChangeHub`` is that
machinery turned toward *application clients*: a range watcher over one
server's committed changes, feeding

* in-process watchers (the async local client's ``watch`` streams),
* RPC connections (the ``subscribe`` protocol method's push frames),
* cluster-routed watches (one hub per node, filtered by key ownership).

Every committed change — client writes and the outputs the join engine
installs or retracts during maintenance — is stamped with a
server-local, strictly increasing sequence number and delivered to
every watcher whose range covers the key.  Delivery is synchronous
with the commit (the engine's listener hook fires before the write
returns), so a single watcher observes changes exactly once, in commit
order; per key that is key-version order.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..store.interval_tree import IntervalTree
from .operators import ChangeKind


class ChangeEvent:
    """One committed change, as delivered to watchers.

    ``seq`` is the publishing server's commit sequence number: strictly
    increasing per server, so two events for the same key order by
    version.  ``old``/``new`` are the values before and after; an
    insert has ``old is None``, a remove has ``new is None``.
    """

    __slots__ = ("seq", "key", "old", "new", "kind")

    def __init__(
        self,
        seq: int,
        key: str,
        old: Optional[str],
        new: Optional[str],
        kind: ChangeKind,
    ) -> None:
        self.seq = seq
        self.key = key
        self.old = old
        self.new = new
        self.kind = kind

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ChangeEvent)
            and self.seq == other.seq
            and self.key == other.key
            and self.old == other.old
            and self.new == other.new
            and self.kind == other.kind
        )

    def __hash__(self) -> int:
        return hash((self.seq, self.key, self.kind))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ChangeEvent #{self.seq} {self.kind.value} {self.key!r} "
            f"{self.old!r}->{self.new!r}>"
        )


#: A watcher's delivery callback: receives each covered ChangeEvent.
EventSink = Callable[[ChangeEvent], None]


class WatchHandle:
    """One registered watch range; ``close()`` stops delivery."""

    __slots__ = ("hub", "lo", "hi", "sink", "active")

    def __init__(self, hub: "ChangeHub", lo: str, hi: str, sink: EventSink):
        self.hub = hub
        self.lo = lo
        self.hi = hi
        self.sink = sink
        self.active = True

    def close(self) -> None:
        if self.active:
            self.active = False
            self.hub._drop(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.active else "closed"
        return f"<WatchHandle [{self.lo!r},{self.hi!r}) {state}>"


class ChangeHub:
    """Range watchers over one server's committed changes."""

    def __init__(self) -> None:
        self._tree = IntervalTree()
        self.next_seq = 1
        self.published = 0
        self.delivered = 0

    def watch(self, lo: str, hi: str, sink: EventSink) -> WatchHandle:
        """Deliver every future committed change in ``[lo, hi)`` to
        ``sink``, exactly once, in commit order."""
        if not lo < hi:
            raise ValueError(f"empty watch range [{lo!r}, {hi!r})")
        handle = WatchHandle(self, lo, hi, sink)
        self._tree.add(lo, hi, handle)
        return handle

    def _drop(self, handle: WatchHandle) -> None:
        self._tree.discard(handle.lo, handle.hi, handle)

    def watcher_count(self) -> int:
        return self._tree.payload_count()

    def overlapping(self, lo: str, hi: str) -> bool:
        """True when any active watcher's range intersects ``[lo, hi)``
        — what a cluster node checks before deciding whether a
        reconfigured computed range must be rebuilt for its watchers."""
        for entry in self._tree.entries():
            if entry.lo < hi and lo < entry.hi:
                if any(handle.active for handle in entry.payloads):
                    return True
        return False

    # ------------------------------------------------------------------
    def publish(
        self,
        key: str,
        old: Optional[str],
        new: Optional[str],
        kind: ChangeKind,
    ) -> int:
        """Stamp one committed change and fan it out; returns the
        number of watchers it reached.  Installed as an engine change
        listener, so it sees client writes and maintained outputs
        alike, in commit order."""
        seq = self.next_seq
        self.next_seq += 1
        self.published += 1
        matched = 0
        event: Optional[ChangeEvent] = None
        for entry in self._tree.stab(key):
            for handle in list(entry.payloads):
                if not handle.active:
                    continue
                if event is None:
                    event = ChangeEvent(seq, key, old, new, kind)
                matched += 1
                self.delivered += 1
                handle.sink(event)
        return matched
