"""Cache-join query execution and incremental maintenance.

This module is the engine room of the reproduction: the key-value
variant of nested-loop join execution from paper §3.1 (Figures 3–4),
the installation of join status ranges and updaters during execution
from §3.2 (Figure 5), eager maintenance and lazy invalidation, pending
log application, snapshot expiry, and missing-data resolution (§3.3).

Execution of a scan over a join's output range proceeds as:

1. Derive slot constraints from the requested range.
2. For each source in order, compute its *containing range*, resolve
   missing data (recursive joins, database, remote servers), install an
   updater for the range, and enumerate matching keys, augmenting the
   constraint set.
3. At the innermost level, expand the output key, re-check it against
   the requested range, and install the value (or fold it into an
   aggregate accumulator).

Writes run the other direction: a store modification stabs the source
table's updater interval tree; eager updaters re-execute the remaining
nested loops (for the common value-source-last join this is a single
O(1) insert), lazy updaters log partial invalidations or mark ranges
for recomputation.

Staleness safety: recomputing a status range bumps its *generation*.
Eager updaters apply only to ranges whose generation matches the one
they were installed under, so updaters derived from since-retracted
check tuples become inert exactly when the paper would have removed
them ("complete invalidation removes installed updaters").

Batched writes (``apply_batch`` / ``notify_batch``) amortize the write
path: a group of writes mutates the store first (in key order, chaining
§4.2 insertion hints), then maintenance runs as ONE pass per affected
table — a single interval-tree query over the batch's key span replaces
one stab per write, and each (interval entry, updater) pair fires once
over the group of covered keys instead of once per key.  Coalescing
preserves the paper's staleness guarantees because every deduplicated
unit is keyed by the same generation machinery that makes sequential
maintenance safe: a grouped eager firing resolves its status targets
once but re-checks ``sr.state`` and ``sr.generation`` against the
updater's installation generation for every applied change, so a range
recomputed (or invalidated) earlier in the same batch retires the rest
of the group exactly as it would retire later sequential firings; a
grouped lazy firing collapses N same-key partial invalidations into one
compacted pending entry, which is safe because pending application
re-executes against current store state (the logged values are never
replayed), and any matching removal still escalates the whole group to
a complete invalidation whose recomputation bumps the generation and
thereby retires every updater installed under the old build.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..store.keys import clamp_range, key_successor, prefix_upper_bound, table_of
from ..store.lru import LRUList
from ..store.stats import StoreStats
from ..store.store import OrderedStore
from ..store.table import Table
from ..store.values import SharedValue, Value, materialize
from .clock import Clock, SystemClock
from .joins import CacheJoin, JoinError
from .operators import COPY, AggValue, ChangeKind, UpdateOutcome
from .plan import ExecPlan, FireTemplate, compile_exec_plan
from . import plan as plan_mod
from .ranges import SlotConstraints
from .status import (
    PendingEntry,
    RangeState,
    StatusRange,
    StatusTable,
    compact_pending,
)
from .updaters import Updater, install_updater

#: A net batch change: ``(key, old_value, new_value, kind)``.
Change = Tuple[str, Optional[str], Optional[str], ChangeKind]


class DataResolver:
    """Hook for loading missing source data (paper §3.3).

    Local deployments leave this unset; database-backed deployments and
    distributed nodes install resolvers that fetch ranges from the
    backing store or from home servers before join execution proceeds.
    """

    def ensure_range(self, engine: "JoinEngine", table: str, lo: str, hi: str) -> None:
        raise NotImplementedError


#: Change callback: (key, old_value, new_value, kind).  Used by the
#: distributed layer for cross-server subscriptions and by tests.
ChangeListener = Callable[[str, Optional[str], Optional[str], ChangeKind], None]


class JoinTableMetrics:
    """Validation-outcome counters for one materialized output table.

    Bumped where validation happens (``_validate_table``), one slotted
    integer add per outcome — cheap enough to stay on even when nobody
    scrapes.  ``ServerMetrics`` turns these into the per-join
    hit/miss/memo series.
    """

    __slots__ = (
        "validations",
        "memo_hits",
        "fresh_hits",
        "computes",
        "recomputes",
        "pending_applies",
        "stale_served",
        "stale_age_max",
    )

    def __init__(self) -> None:
        self.validations = 0      # validate calls touching this table
        self.memo_hits = 0        # satisfied by the validation memo
        self.fresh_hits = 0       # covered by VALID ranges, no work
        self.computes = 0         # never-computed gaps filled
        self.recomputes = 0       # invalid/expired ranges rebuilt
        self.pending_applies = 0  # pending logs drained before a read
        self.stale_served = 0     # served under a staleness bound
        self.stale_age_max = 0.0  # oldest staleness ever served (s)


class JoinEngine:
    """Join execution and maintenance over one server's store."""

    #: Remembered status ranges per output table (see ``validate_range``).
    VALIDATION_MEMO_CAP = 4096

    def __init__(
        self,
        store: OrderedStore,
        clock: Optional[Clock] = None,
        stats: Optional[StoreStats] = None,
        enable_sharing: bool = True,
        enable_hints: bool = True,
        enable_validation_memo: bool = True,
    ) -> None:
        self.store = store
        self.clock = clock if clock is not None else SystemClock()
        self.stats = stats if stats is not None else store.stats
        self.enable_sharing = enable_sharing
        self.enable_hints = enable_hints
        self.enable_validation_memo = enable_validation_memo
        #: Collapse contiguous same-(join, source) pending-log runs to
        #: one re-execution per run (off = the per-key reference path;
        #: the regression suite asserts both produce identical state).
        self.enable_pending_batching = True
        self.joins: List[CacheJoin] = []
        self._output_joins: Dict[str, List[CacheJoin]] = {}
        #: Precomputed views of ``joins``: materialized joins per output
        #: table (what validation must bring up to date) and the pull
        #: joins (what every read must additionally execute).  Scans
        #: consult these on every operation; deriving them per read was
        #: measurable overhead.
        self._materialized_joins: Dict[str, List[CacheJoin]] = {}
        self._pull_joins: List[CacheJoin] = []
        #: ``(table, table_upper_bound, joins, metrics)`` tuples for
        #: every table with materialized joins — the per-read validation
        #: loop walks this instead of re-deriving bounds and filtering
        #: pull joins on every operation.
        self._validate_plan: List[
            Tuple[str, str, List[CacheJoin], "JoinTableMetrics"]
        ] = []
        #: Per-table validation hints (paper §4.2's output-hint idea
        #: applied to validation): the status range that satisfied the
        #: last scan ending at a given ``hi``, so repeated timeline
        #: checks skip the status-tree descent.  Hints are verified
        #: structurally on use (attached + state + bounds + expiry), so
        #: splits, invalidations, and evictions need no eager memo
        #: maintenance — a stale hint simply misses.
        self._validation_memo: Dict[str, Dict[str, StatusRange]] = {}
        self.status: Dict[str, StatusTable] = {}
        #: Per-output-table validation outcome counters (metrics layer).
        self.table_metrics: Dict[str, JoinTableMetrics] = {}
        #: Degrade-mode staleness bound, in seconds.  Set by the
        #: admission controller while the server is overloaded; while
        #: set, ranges validated within the bound are served without
        #: re-validation (stale-with-a-bound, §"load control").
        self.staleness_bound: Optional[float] = None
        #: Chaos hook: called as ``fault_hook(site)`` at maintenance
        #: entry points when installed (``repro.chaos``); None costs one
        #: attribute check per notification.
        self.fault_hook: Optional[Callable[[str], None]] = None
        self.resolver: Optional[DataResolver] = None
        self.lru = LRUList()
        self.listeners: List[ChangeListener] = []
        self.updater_bytes = 0
        #: Compiled write-path plans per (join, fired source), shared by
        #: every updater of that pair.  False marks a pair outside the
        #: compiled subset so it is probed exactly once.
        self._plans: Dict[Tuple[int, int], object] = {}
        #: Whole-table validity fast path (quiescent covers skip
        #: per-range validation).  Disabled by the eviction manager:
        #: skipping the per-range walk also skips LRU recency touches,
        #: which a memory-limited engine relies on.
        self.enable_whole_table_fastpath = True

    # ==================================================================
    # Join installation
    # ==================================================================
    def validate_join(
        self, join: CacheJoin, pending: Sequence[CacheJoin] = ()
    ) -> None:
        """The installation-time checks of "add-join" (§3), without
        installing: rejects circular chains of joins (the paper
        forbids them) and joins that source a pull join's output,
        which is never materialized and therefore unavailable to
        source scans.  ``pending`` holds joins accepted earlier in the
        same installation batch, so a multi-join spec is validated as
        a whole before any of it takes effect.
        """
        installed = list(self.joins) + list(pending)
        deps: Dict[str, set] = {}
        for other in installed:
            deps.setdefault(other.output.table, set()).update(
                other.source_tables()
            )
        deps.setdefault(join.output.table, set()).update(join.source_tables())
        if self._has_cycle(deps):
            raise JoinError(
                f"installing {join.text!r} would create a circular join chain"
            )
        for src in join.sources:
            for other in installed:
                if other.is_pull and other.output.table == src.pattern.table:
                    raise JoinError(
                        f"source table {src.pattern.table!r} is the output of "
                        f"pull join {other.text!r}; pull outputs are never "
                        "materialized and cannot feed other joins"
                    )
        if join.is_pull:
            for other in installed:
                if join.output.table in other.source_tables():
                    raise JoinError(
                        f"pull join {join.text!r} would output into a table "
                        f"sourced by {other.text!r}"
                    )

    def add_join(self, join: CacheJoin, validate: bool = True) -> CacheJoin:
        """Install a cache join ("add-join RPC", §3).  ``validate=False``
        skips re-validation for callers that batch-validated already
        (:meth:`PequodServer.add_join`)."""
        if validate:
            self.validate_join(join)
        self.joins.append(join)
        self._output_joins.setdefault(join.output.table, []).append(join)
        if join.is_pull:
            self._pull_joins.append(join)
        else:
            self._materialized_joins.setdefault(join.output.table, []).append(join)
            self._validate_plan = [
                (
                    tbl,
                    prefix_upper_bound(tbl),
                    joins,
                    self.table_metrics.setdefault(tbl, JoinTableMetrics()),
                )
                for tbl, joins in self._materialized_joins.items()
            ]
        self.status.setdefault(join.output.table, StatusTable())
        self.stats.add("joins_installed")
        return join

    def joins_for_table(self, table: str) -> List[CacheJoin]:
        return self._output_joins.get(table, [])

    @staticmethod
    def _has_cycle(deps: Dict[str, set]) -> bool:
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {node: WHITE for node in deps}

        def visit(node: str) -> bool:
            color[node] = GRAY
            for nxt in deps.get(node, ()):
                state = color.get(nxt, WHITE)
                if state == GRAY:
                    return True
                if state == WHITE and nxt in deps and visit(nxt):
                    return True
            color[node] = BLACK
            return False

        return any(color[n] == WHITE and visit(n) for n in list(deps))

    # ==================================================================
    # Read path
    # ==================================================================
    def scan(self, first: str, last: str) -> List[Tuple[str, str]]:
        """Ordered pairs in ``[first, last)``, computing joins on demand."""
        if not first < last:
            return []
        self.validate_range(first, last)
        stored = self.store.scan(first, last)
        if not self._pull_joins:
            return stored
        pulled = self._pull_results(first, last)
        if not pulled:
            return stored
        return self._merge_results(stored, pulled)

    def get(self, key: str) -> Optional[str]:
        """Single-key read; overlapping joins are computed as needed."""
        hi = key_successor(key)
        self.validate_range(key, hi)
        value = self.store.get(key)
        if value is None and self._pull_joins:
            for k, v in self._pull_results(key, hi):
                if k == key:
                    return v
        return value

    def validate_range(self, first: str, last: str) -> None:
        """Bring every overlapping join output in ``[first, last)`` up
        to date: compute gaps, recompute invalid/expired ranges, apply
        pending partial invalidations (§3.2)."""
        for tbl_name, bound, joins, tm in self._validate_plan:
            t_lo = first if first > tbl_name else tbl_name
            t_hi = last if last < bound else bound
            if t_lo < t_hi:
                self._validate_table(tbl_name, joins, t_lo, t_hi, tm)

    def _memo_usable(self, sr: Optional[StatusRange], lo: str, hi: str, now: float) -> bool:
        """May a remembered status range satisfy ``[lo, hi)`` as-is?

        Every way a hint can go stale is visible structurally: eviction
        detaches it, invalidation flips its state, a split shrinks its
        ``hi``, pending work populates its log, snapshot expiry shows in
        ``expires_at``.
        """
        return (
            sr is not None
            and sr.attached
            and sr.state is RangeState.VALID
            and not sr.pending
            and (sr.expires_at is None or now < sr.expires_at)
            and sr.lo <= lo
            and hi <= sr.hi
        )

    def _validate_table(
        self,
        tbl_name: str,
        joins: List[CacheJoin],
        lo: str,
        hi: str,
        tm: JoinTableMetrics,
    ) -> None:
        tm.validations += 1
        memo = self._validation_memo.get(tbl_name)
        if memo is not None and self.enable_validation_memo:
            # The paper's §4.2 hint idea applied to validation: the
            # range that answered the last scan ending at ``hi`` very
            # likely covers this one too — verify it structurally (see
            # _memo_usable, inlined here with the clock read deferred
            # to the rare expiring-range case) and skip the status-tree
            # walk.  This is the warm timeline check's whole validation.
            sr = memo.get(hi)
            if sr is not None:
                if (
                    sr.attached
                    and sr.state is RangeState.VALID
                    and not sr.pending
                    and sr.lo <= lo
                    and hi <= sr.hi
                    and (sr.expires_at is None
                         or self.clock.now() < sr.expires_at)
                ):
                    self.stats.counters["validation_memo_hits"] += 1
                    tm.memo_hits += 1
                    entry = sr.lru_entry
                    if entry is not None and entry.linked():
                        self.lru.touch(entry)
                    return
                # A stale hint would otherwise pin the dead range (and
                # its hinted node) until the cap clears; drop it now.
                del memo[hi]
        stable = self.status[tbl_name]
        if self.enable_whole_table_fastpath and stable.all_valid_over(lo, hi):
            # Whole-table fast path: the cover is quiescent (every
            # range VALID, no pending logs, no expiries, no gaps) and
            # spans the request, so per-range validation has nothing to
            # do.  The answer is O(1) off the generation-stamped
            # summary; any invalidation, split, eviction, or
            # pending-log growth bumps the stamp and re-opens the walk.
            self.stats.counters["write_whole_table_fastpath_hits"] += 1
            tm.fresh_hits += 1
            return
        now = self.clock.now()
        bound = self.staleness_bound
        # pieces() snapshots the cover; computation below may split it.
        pieces = stable.pieces(lo, hi)
        for piece_lo, piece_hi, sr in pieces:
            if sr is None:
                tm.computes += 1
                self._compute_piece(tbl_name, stable, joins, piece_lo, piece_hi)
            elif (
                bound is not None
                and sr.validated_at is not None
                and now - sr.validated_at <= bound
                and sr.needs_work(now)
            ):
                # Degrade mode: the range needs work, but its last full
                # validation is within the staleness bound — serve the
                # stored content as-is.  Gaps (sr is None) still compute:
                # there is nothing stale to serve for never-computed key
                # space.
                tm.stale_served += 1
                age = now - sr.validated_at
                if age > tm.stale_age_max:
                    tm.stale_age_max = age
                self.stats.counters["stale_reads_served"] += 1
                self._touch(sr)
            elif not sr.is_valid_at(now):
                tm.recomputes += 1
                for part in stable.isolate(piece_lo, piece_hi):
                    self._ensure_tracked(tbl_name, part)
                    self._recompute_range(tbl_name, stable, joins, part)
            elif sr.pending:
                tm.pending_applies += 1
                for part in stable.isolate(piece_lo, piece_hi):
                    self._ensure_tracked(tbl_name, part)
                    self._apply_pending(tbl_name, stable, part)
                    part.validated_at = now
                    self._touch(part)
            else:
                tm.fresh_hits += 1
                sr.validated_at = now
                self._touch(sr)
        if not self.enable_validation_memo or len(pieces) != 1:
            return
        # Remember the single range now covering [lo, hi) for the next
        # scan ending at ``hi`` (incremental checks share their upper
        # bound and only advance ``lo``).
        piece_lo, piece_hi, sr = pieces[0]
        if piece_lo != lo or piece_hi != hi:
            return
        if sr is None or not self._memo_usable(sr, lo, hi, now):
            sr = stable.find(lo)  # freshly computed or rebuilt cover
        if self._memo_usable(sr, lo, hi, now):
            if memo is None:
                memo = self._validation_memo.setdefault(tbl_name, {})
            elif len(memo) >= self.VALIDATION_MEMO_CAP:
                memo.clear()  # crude bound; hints repopulate on demand
            memo[hi] = sr

    def _touch(self, sr: StatusRange) -> None:
        if sr.lru_entry is not None and sr.lru_entry.linked():
            self.lru.touch(sr.lru_entry)

    def _ensure_tracked(self, tbl_name: str, sr: StatusRange) -> None:
        if sr.lru_entry is None or not sr.lru_entry.linked():
            sr.lru_entry = self.lru.add((tbl_name, sr))

    # ------------------------------------------------------------------
    def _compute_piece(
        self,
        tbl_name: str,
        stable: StatusTable,
        joins: List[CacheJoin],
        lo: str,
        hi: str,
    ) -> None:
        """Forward-execute all joins for a never-computed gap."""
        sr = StatusRange(lo, hi, RangeState.VALID)
        stable.add(sr)
        self._ensure_tracked(tbl_name, sr)
        self._fill_range(joins, sr)
        sr.validated_at = self.clock.now()

    def _recompute_range(
        self,
        tbl_name: str,
        stable: StatusTable,
        joins: List[CacheJoin],
        sr: StatusRange,
    ) -> None:
        """Recompute an invalid or expired range from scratch."""
        self.stats.add("recomputations")
        self._clear_range(sr.lo, sr.hi)
        sr.state = RangeState.VALID
        sr.pending.clear()
        sr.hint = None
        sr.expires_at = None
        sr.generation += 1  # retires updaters from the previous build
        self._fill_range(joins, sr)
        sr.validated_at = self.clock.now()
        # The range just turned quiescent; let the whole-table summary
        # notice (validity-improving changes need the stamp bump too,
        # or the cached "not quiescent" answer would stick forever).
        stable.note_mutation()

    def _fill_range(self, joins: List[CacheJoin], sr: StatusRange) -> None:
        expiry: Optional[float] = None
        cost_before = (
            self.stats.get("source_keys_examined")
            + self.stats.get("outputs_installed")
        )
        for join in joins:
            self._execute_join(join, sr.lo, sr.hi, sr=sr, results=None)
            if join.is_snapshot:
                candidate = self.clock.now() + float(join.snapshot_interval or 0)
                expiry = candidate if expiry is None else min(expiry, candidate)
        sr.expires_at = expiry
        sr.compute_cost = (
            self.stats.get("source_keys_examined")
            + self.stats.get("outputs_installed")
            - cost_before
        )

    def _clear_range(self, lo: str, hi: str) -> None:
        """Remove stale outputs, notifying downstream joins of removals."""
        doomed = [
            (node.key, materialize(node.value))
            for node in self.store.scan_nodes(lo, hi)
        ]
        for key, old in doomed:
            tbl = self.store.existing_table_for_key(key)
            if tbl is not None and tbl.remove(key) is not None:
                self.notify_change(key, old, None, ChangeKind.REMOVE)

    # ==================================================================
    # Forward execution (Figures 3 and 5)
    # ==================================================================
    def _execute_join(
        self,
        join: CacheJoin,
        out_lo: str,
        out_hi: str,
        sr: Optional[StatusRange],
        results: Optional[List[Tuple[str, str]]],
    ) -> None:
        """Run ``join`` over output range ``[out_lo, out_hi)``.

        With ``sr`` set, outputs are installed into the store and (for
        push joins) updaters are installed — Figure 5.  With ``results``
        set instead, outputs are appended to the list without touching
        the store — the pull path (§3.4) and Figure 3.
        """
        cs = SlotConstraints.for_output_range(join.output, out_lo, out_hi)
        if not cs.compatible:
            return
        self.stats.add("joins_executed")
        agg: Optional[Dict[str, AggValue]] = {} if join.is_aggregate else None
        self._exec_source(
            join, 0, cs, out_lo, out_hi, None, sr, results, agg,
            mode=ChangeKind.INSERT, skip_source=None,
        )
        if agg is not None:
            for out_key in sorted(agg):
                acc = agg[out_key]
                if acc.count <= 0:
                    continue
                if results is not None:
                    results.append((out_key, acc.payload))
                else:
                    assert sr is not None
                    self._install_output(out_key, acc, sr)

    def _exec_source(
        self,
        join: CacheJoin,
        idx: int,
        cs: SlotConstraints,
        out_lo: str,
        out_hi: str,
        value: Optional[Value],
        sr: Optional[StatusRange],
        results: Optional[List[Tuple[str, str]]],
        agg: Optional[Dict[str, AggValue]],
        mode: ChangeKind,
        skip_source: Optional[int],
        source_window: Optional[Tuple[int, str, str]] = None,
    ) -> None:
        if idx == len(join.sources):
            self._emit(join, cs, out_lo, out_hi, value, sr, results, agg, mode)
            return
        if idx == skip_source:
            # This source's key is pinned (updater fire or pending
            # application); its slots are already merged into ``cs``.
            self._exec_source(
                join, idx + 1, cs, out_lo, out_hi, value, sr, results, agg,
                mode, skip_source, source_window,
            )
            return
        src = join.sources[idx]
        lo, hi = cs.containing_range(src.pattern)
        # A batched pending-log application windows ONE source to the
        # run's key span: scan only that slice, and treat it like a
        # pinned source — no data resolution, no updater install (the
        # original build's broad updater already covers the range).
        windowed = source_window is not None and source_window[0] == idx
        if windowed:
            lo, hi = clamp_range(lo, hi, source_window[1], source_window[2])
        if not lo < hi:
            return
        if not windowed:
            self._ensure_source_data(src.pattern.table, lo, hi)
            if sr is not None and join.is_push and mode is ChangeKind.INSERT:
                self._install_updater_for(
                    join, idx, cs, out_lo, out_hi, lo, hi, sr
                )
        table = self.store.table(src.pattern.table)
        share = (
            src.operator == COPY
            and self.enable_sharing
            and results is None
        )
        for node in list(table.scan_nodes(lo, hi)):
            self.stats.add("source_keys_examined")
            match = src.pattern.match(node.key)
            if match is None:
                continue
            child = cs.child_with(match)
            if child is None:
                continue
            v = value
            if idx == join.value_index:
                if share:
                    v = self._promote_shared(table, node)
                else:
                    v = materialize(node.value)
            self._exec_source(
                join, idx + 1, child, out_lo, out_hi, v, sr, results, agg,
                mode, skip_source, source_window,
            )

    def _promote_shared(self, table: Table, node) -> Value:
        """Promote a copy source's value to a SharedValue (§4.3)."""
        if isinstance(node.value, SharedValue):
            return node.value
        if not isinstance(node.value, str):
            return materialize(node.value)  # aggregate sources stay private
        shared = SharedValue(node.value)
        table.replace_node_value(node, shared)
        return shared

    def _emit(
        self,
        join: CacheJoin,
        cs: SlotConstraints,
        out_lo: str,
        out_hi: str,
        value: Optional[Value],
        sr: Optional[StatusRange],
        results: Optional[List[Tuple[str, str]]],
        agg: Optional[Dict[str, AggValue]],
        mode: ChangeKind,
    ) -> None:
        out_key = join.output.expand(cs.exact)
        if not (out_lo <= out_key < out_hi):
            return  # emission re-check keeps over-approximate ranges exact
        if agg is not None:
            acc = agg.get(out_key)
            if acc is None:
                acc = agg[out_key] = AggValue(join.value_source.operator)
            acc.include(materialize(value) if value is not None else "")
            return
        if mode is ChangeKind.REMOVE:
            self._remove_output(out_key)
            return
        assert value is not None
        if results is not None:
            results.append((out_key, materialize(value)))
            return
        assert sr is not None
        self._install_output(out_key, value, sr)

    def _install_output(self, key: str, value: Value, sr: StatusRange) -> None:
        table = self.store.table_for_key(key)
        hint = sr.hint if self.enable_hints else None
        handle, old = table.put(key, value, hint=hint)
        if self.enable_hints:
            sr.hint = handle
        self.stats.add("outputs_installed")
        kind = ChangeKind.INSERT if old is None else ChangeKind.UPDATE
        self.notify_change(
            key,
            materialize(old) if old is not None else None,
            materialize(value),
            kind,
        )

    def _remove_output(self, key: str) -> None:
        table = self.store.existing_table_for_key(key)
        if table is None:
            return
        old = table.remove(key)
        if old is not None:
            self.stats.add("outputs_removed")
            self.notify_change(key, materialize(old), None, ChangeKind.REMOVE)

    # ------------------------------------------------------------------
    def _install_updater_for(
        self,
        join: CacheJoin,
        idx: int,
        cs: SlotConstraints,
        out_lo: str,
        out_hi: str,
        src_lo: str,
        src_hi: str,
        sr: StatusRange,
    ) -> None:
        src = join.sources[idx]
        updater = Updater(
            join,
            idx,
            context=dict(cs.exact),
            output_lo=out_lo,
            output_hi=out_hi,
            lazy=src.is_check and not src.is_eager_check,
            source_lo=src_lo,
            source_hi=src_hi,
            generation=sr.generation,
        )
        updater.context = updater.compressed_context()
        table = self.store.table(src.pattern.table)
        stored = install_updater(table, updater)
        if stored is updater:
            self.stats.add("updaters_installed")
            self.updater_bytes += updater.memory_size()

    def _ensure_source_data(self, tbl_name: str, lo: str, hi: str) -> None:
        """Resolve missing source data before scanning (§3.3)."""
        if tbl_name in self._output_joins:
            # The source range may be another join's output: recurse.
            self.validate_range(lo, hi)
        if self.resolver is not None:
            self.resolver.ensure_range(self, tbl_name, lo, hi)

    # ==================================================================
    # Pull joins (§3.4)
    # ==================================================================
    def _pull_results(self, first: str, last: str) -> List[Tuple[str, str]]:
        out: List[Tuple[str, str]] = []
        for join in self._pull_joins:
            tbl = join.output.table
            lo, hi = clamp_range(first, last, tbl, prefix_upper_bound(tbl))
            if not lo < hi:
                continue
            self.stats.add("pull_executions")
            self._execute_join(join, lo, hi, sr=None, results=out)
        out.sort()
        return out

    @staticmethod
    def _merge_results(
        stored: List[Tuple[str, str]], pulled: List[Tuple[str, str]]
    ) -> List[Tuple[str, str]]:
        """Merge sorted result lists; stored (maintained) pairs win ties."""
        out: List[Tuple[str, str]] = []
        i = j = 0
        while i < len(stored) and j < len(pulled):
            if stored[i][0] < pulled[j][0]:
                out.append(stored[i])
                i += 1
            elif pulled[j][0] < stored[i][0]:
                out.append(pulled[j])
                j += 1
            else:
                out.append(stored[i])
                i += 1
                j += 1
        out.extend(stored[i:])
        out.extend(pulled[j:])
        return out

    # ==================================================================
    # Write path: notification and maintenance (§3.2)
    # ==================================================================
    def apply_put(self, key: str, value: str) -> None:
        """A client or upstream write: store it and run maintenance."""
        table = self.store.table_for_key(key)
        _, old = table.put(key, value)
        kind = ChangeKind.INSERT if old is None else ChangeKind.UPDATE
        self.notify_change(
            key, materialize(old) if old is not None else None, value, kind
        )

    def apply_remove(self, key: str) -> bool:
        table = self.store.existing_table_for_key(key)
        if table is None:
            return False
        old = table.remove(key)
        if old is None:
            return False
        self.notify_change(key, materialize(old), None, ChangeKind.REMOVE)
        return True

    def apply_batch(self, batch) -> int:
        """Apply a group of writes as one coalesced maintenance pass.

        ``batch`` is a :class:`~repro.store.batch.WriteBatch` or any
        operation iterable the store accepts.  The store mutates first
        (sorted, hint-chained); maintenance then runs once per affected
        table via :meth:`notify_batch`.  Returns the number of net
        changes applied.
        """
        raw = self.store.apply_batch(batch)
        if not raw:
            return 0
        changes: List[Change] = []
        for key, old, new in raw:
            if new is None:
                kind = ChangeKind.REMOVE
            elif old is None:
                kind = ChangeKind.INSERT
            else:
                kind = ChangeKind.UPDATE
            changes.append((key, old, new, kind))
        self.notify_batch(changes)
        return len(changes)

    def notify_batch(self, changes: List[Change]) -> None:
        """Run maintenance for a batch of net changes, then listeners.

        Changes are grouped by table; each table's updater interval
        tree is queried once over the batch's key span instead of
        stabbed once per key, and each (entry, updater) pair fires once
        over the keys it covers.
        """
        if self.fault_hook is not None:
            self.fault_hook("maintenance")
        by_table: Dict[str, List[Change]] = {}
        for change in changes:
            by_table.setdefault(table_of(change[0]), []).append(change)
        for group in by_table.values():
            table = self.store.existing_table_for_key(group[0][0])
            if table is not None and table.updaters:
                group.sort(key=lambda change: change[0])
                self._notify_table_batch(table, group)
        for key, old, new, kind in changes:
            for listener in self.listeners:
                listener(key, old, new, kind)

    def _notify_table_batch(self, table: Table, group: List[Change]) -> None:
        """One maintenance pass over ``table`` for a sorted change group.

        The updater tree is stabbed once per distinct written key (the
        batch already coalesced duplicates) and the hits are regrouped
        per interval entry, so each affected (entry, updater) pair
        fires exactly once over the keys it covers — with its status
        targets resolved once for the whole group instead of twice per
        key (once for the eviction check, once for application) as on
        the per-write path.
        """
        self.stats.add("batch_tree_passes")
        shared: Dict[str, Value] = {}
        groups: Dict[int, List[Change]] = {}
        entries: Dict[int, object] = {}
        order: List[int] = []
        counters = self.stats.counters
        for change in group:
            fanout = 0
            for entry in table.updaters.stab(change[0]):
                fanout += len(entry.payloads)
                ident = id(entry)
                covered = groups.get(ident)
                if covered is None:
                    groups[ident] = [change]
                    entries[ident] = entry
                    order.append(ident)
                else:
                    covered.append(change)
            if fanout > counters["write_fanout_max"]:
                counters["write_fanout_max"] = float(fanout)
        for ident in order:
            entry = entries[ident]
            covered = groups[ident]
            for updater in list(entry.payloads):
                self._fire_updater_group(table, entry, updater, covered, shared)

    def _fire_updater_group(
        self,
        table: Table,
        entry,
        updater: Updater,
        covered: List[Change],
        shared: Dict[str, Value],
    ) -> None:
        """Fire one updater once for the group of changes it covers."""
        stable = self.status.get(updater.join.output.table)
        if stable is None:
            return
        if not stable.overlaps_any(updater.output_lo, updater.output_hi):
            # Entire output range evicted: lazily garbage-collect (§2.5).
            table.updaters.discard(entry.lo, entry.hi, updater)
            self.updater_bytes -= updater.memory_size()
            self.stats.add("updaters_collected")
            return
        self.stats.add("updater_groups_fired")
        # One firing charge per covered change, before matching — the
        # same accounting point as the per-key path, so counters (and
        # modeled runtimes) stay comparable across batch sizes.
        self.stats.add("updaters_fired", len(covered))
        src = updater.join.sources[updater.source_index]
        if updater.lazy:
            overlapping = stable.overlapping(
                updater.output_lo, updater.output_hi
            )
            self._fire_lazy_group(stable, updater, covered, overlapping)
        elif src.is_check or updater.join.is_aggregate:
            # echeck and aggregate updaters can invalidate or split
            # status ranges mid-group; keep exact per-change semantics.
            for key, old, new, kind in covered:
                copy_value: Optional[Value] = None
                if kind is not ChangeKind.REMOVE and not src.is_check:
                    copy_value = self._group_source_value(shared, key, new)
                self._fire_eager(stable, updater, key, old, new, kind, copy_value)
        else:
            if plan_mod._PLAN_COMPILED:
                plan = self._plan_for(updater)
                if plan is not None:
                    template = self._plan_template(updater, plan)
                    if template is not None and template.injective:
                        self._fire_eager_group_plan(
                            stable, plan, template, updater, covered, shared
                        )
                        return
            overlapping = stable.overlapping(
                updater.output_lo, updater.output_hi
            )
            self._fire_eager_group(stable, updater, covered, shared, overlapping)

    def _fire_lazy_group(
        self,
        stable: StatusTable,
        updater: Updater,
        covered: List[Change],
        overlapping: List[StatusRange],
    ) -> None:
        """Grouped lazy maintenance: one invalidation, or one compacted
        pending append per range, for the whole covered group.

        Any matching removal escalates to a complete invalidation that
        covers the group (invalidation clears the pending log, so the
        group's inserts contribute nothing either way — identical to
        the per-key outcome in both orders).
        """
        inserts: List[Change] = []
        for change in covered:
            key, old, new, kind = change
            if kind is ChangeKind.UPDATE:
                continue  # check sources: values are uninteresting
            if not self._lazy_match(updater, key):
                continue
            if kind is ChangeKind.REMOVE:
                self.stats.add("complete_invalidations")
                for sr in overlapping:
                    sr.invalidate()
                return
            inserts.append(change)
        if not inserts:
            return
        ranges = [sr for sr in overlapping if sr.state is RangeState.VALID]
        if not ranges:
            return
        for key, old, new, kind in inserts:
            self.stats.add("partial_invalidations")
            pending = PendingEntry(
                updater.join, updater.source_index, key, old, new, kind
            )
            for sr in ranges:
                if not sr.log_pending(pending):
                    self.stats.add("pending_compacted")

    def _fire_eager_group(
        self,
        stable: StatusTable,
        updater: Updater,
        covered: List[Change],
        shared: Dict[str, Value],
        overlapping: List[StatusRange],
    ) -> None:
        """Grouped eager copy maintenance: resolve the updater's output
        targets once, then apply every covered change to them.

        The copy path never splits this output table's status cover, so
        the target list stays exact across the group; per-change
        ``state``/``generation`` re-checks keep the paper's staleness
        safety — a range invalidated or recomputed earlier in the batch
        retires the remaining group members just as it would retire
        later sequential firings.
        """
        join = updater.join
        targets: Optional[List[Tuple[StatusRange, str, str]]] = None
        for key, old, new, kind in covered:
            child = self._eager_child(updater, key)
            if child is None:
                continue
            if targets is None:
                targets = []
                for sr in overlapping:
                    lo, hi = clamp_range(
                        updater.output_lo, updater.output_hi, sr.lo, sr.hi
                    )
                    if lo < hi:
                        targets.append((sr, lo, hi))
            value: Value
            if kind is ChangeKind.REMOVE:
                value = old or ""
                mode = ChangeKind.REMOVE
            else:
                value = self._group_source_value(shared, key, new)
                mode = ChangeKind.INSERT
            applied = False
            for sr, lo, hi in targets:
                if sr.state is not RangeState.VALID:
                    continue
                if sr.generation != updater.generation:
                    continue  # superseded by a recomputation
                applied = True
                self._exec_source(
                    join, updater.source_index + 1, child, lo, hi, value, sr,
                    None, None, mode=mode, skip_source=updater.source_index,
                )
            if applied:
                self.stats.add("eager_updates")

    def _fire_eager_group_plan(
        self,
        stable: StatusTable,
        plan: ExecPlan,
        template: FireTemplate,
        updater: Updater,
        covered: List[Change],
        shared: Dict[str, Value],
    ) -> None:
        """Grouped eager copy maintenance through the compiled plan.

        All covered changes expand their output keys first (slot tuple
        + bound template, no dict churn); the inserts then install via
        :meth:`Table.install_many` in contiguous per-status-range runs
        — one tree descent per run, hint-chained — instead of one
        ``_install_output`` per key.  Requires an *injective* template
        (distinct source keys → distinct output keys) so regrouping
        the covered order can never change which write wins a key; the
        per-key order of equal keys is moot because there are none.
        Per-run ``state``/``generation`` re-checks keep the paper's
        staleness safety exactly as the interpreted group path does.
        """
        inserts: List[Tuple[str, Value]] = []
        removes: List[str] = []
        for key, old, new, kind in covered:
            values = plan.extract(key)
            if values is None:
                continue
            out_key = template.out_key(values)
            if out_key is None:
                continue
            if not (updater.output_lo <= out_key < updater.output_hi):
                continue
            if kind is ChangeKind.REMOVE:
                removes.append(out_key)
            else:
                inserts.append(
                    (out_key, self._group_source_value(shared, key, new))
                )
        if not inserts and not removes:
            return
        counters = self.stats.counters
        counters["write_plan_fires"] += len(inserts) + len(removes)
        applied = False
        if inserts:
            inserts.sort(key=lambda pair: pair[0])
            i, n = 0, len(inserts)
            while i < n:
                sr = stable.find(inserts[i][0])
                if (
                    sr is None
                    or sr.state is not RangeState.VALID
                    or sr.generation != updater.generation
                ):
                    i += 1
                    continue
                # Extend the run to every insert landing in this range:
                # contiguous in the sorted order by the disjoint cover.
                j = i + 1
                while j < n and inserts[j][0] < sr.hi:
                    j += 1
                run = inserts[i:j]
                i = j
                applied = True
                hint = sr.hint if self.enable_hints else None
                results, handle = plan.table.install_many(run, hint=hint)
                if self.enable_hints:
                    sr.hint = handle
                counters["write_batched_installs"] += 1
                self.stats.add("outputs_installed", len(run))
                for (out_key, old), (_, value) in zip(results, run):
                    out_kind = (
                        ChangeKind.INSERT if old is None else ChangeKind.UPDATE
                    )
                    self.notify_change(
                        out_key,
                        materialize(old) if old is not None else None,
                        materialize(value),
                        out_kind,
                    )
        for out_key in removes:
            sr = stable.find(out_key)
            if (
                sr is None
                or sr.state is not RangeState.VALID
                or sr.generation != updater.generation
            ):
                continue
            applied = True
            self._remove_output(out_key)
        if applied:
            self.stats.add("eager_updates")

    @staticmethod
    def _lazy_match(updater: Updater, key: str) -> bool:
        """Does ``key`` concern this lazy updater's context?

        Shared by the per-key and batched lazy paths so their matching
        can never drift apart.
        """
        src = updater.join.sources[updater.source_index]
        match = src.pattern.match(key)
        if match is None:
            return False
        merged = dict(updater.context)
        return all(merged.setdefault(n, v) == v for n, v in match.items())

    @staticmethod
    def _eager_child(updater: Updater, key: str) -> Optional[SlotConstraints]:
        """The constraint set for ``key`` pinned into this updater's
        context, or None when the key doesn't concern it.

        Shared by the per-key and batched eager paths so their matching
        can never drift apart.
        """
        src = updater.join.sources[updater.source_index]
        match = src.pattern.match(key)
        if match is None:
            return None
        return SlotConstraints(exact=dict(updater.context)).child_with(match)

    def _group_source_value(
        self, shared: Dict[str, Value], key: str, new_value: Optional[str]
    ) -> Value:
        """The batch-wide shared source value for ``key`` (§4.3).

        Promoted at most once per batch per key, however many updaters
        copy it — the batched analogue of ``notify_change``'s
        once-per-notification promotion.
        """
        value = shared.get(key)
        if value is None:
            if self.enable_sharing:
                value = self._shared_source_value(key, new_value or "")
            else:
                value = new_value or ""
            shared[key] = value
        return value

    # ------------------------------------------------------------------
    # Compiled write-path plans (the write-side analogue of PR 3's
    # compiled patterns; see ``core.plan``).
    # ------------------------------------------------------------------
    def _plan_for(self, updater: Updater) -> Optional[ExecPlan]:
        """The compiled plan for this updater's (join, source) pair, or
        None when the pair is outside the compiled subset.  Probed once
        per pair; the result (or a negative marker) is cached."""
        key = (id(updater.join), updater.source_index)
        plan = self._plans.get(key)
        if plan is None:
            plan = compile_exec_plan(
                updater.join, updater.source_index, self.store
            )
            if plan is not None:
                self.stats.counters["write_plan_compiles"] += 1
            self._plans[key] = plan if plan is not None else False
        return plan if isinstance(plan, ExecPlan) else None

    @staticmethod
    def _plan_template(
        updater: Updater, plan: ExecPlan
    ) -> Optional[FireTemplate]:
        """This updater's bound output-key template, cached on the
        updater (None = not yet bound, False = binding failed)."""
        template = updater.template
        if template is None:
            template = plan.bind(updater.context)
            updater.template = template if template is not None else False
        return template if isinstance(template, FireTemplate) else None

    def notify_change(
        self,
        key: str,
        old_value: Optional[str],
        new_value: Optional[str],
        kind: ChangeKind,
    ) -> None:
        """Run every updater covering ``key`` (§3.2), then listeners."""
        if self.fault_hook is not None:
            self.fault_hook("maintenance")
        table = self.store.existing_table_for_key(key)
        if table is not None and table.updaters:
            entries = table.updaters.stab(key)
            copy_value: Optional[Value] = None
            if entries and kind is not ChangeKind.REMOVE:
                # Promote the source value once per notification, not
                # once per updater — a post fanning out to hundreds of
                # timelines shares one buffer (§4.3).
                if self.enable_sharing:
                    copy_value = self._shared_source_value(key, new_value or "")
                else:
                    copy_value = new_value or ""
            fanout = 0
            for entry in entries:
                fanout += len(entry.payloads)
                for updater in list(entry.payloads):
                    self._fire_updater(
                        table, entry, updater, key, old_value, new_value,
                        kind, copy_value,
                    )
            counters = self.stats.counters
            if fanout > counters["write_fanout_max"]:
                counters["write_fanout_max"] = float(fanout)
        for listener in self.listeners:
            listener(key, old_value, new_value, kind)

    def _fire_updater(
        self,
        table: Table,
        entry,
        updater: Updater,
        key: str,
        old_value: Optional[str],
        new_value: Optional[str],
        kind: ChangeKind,
        copy_value: Optional[Value],
    ) -> None:
        stable = self.status.get(updater.join.output.table)
        if stable is None:
            return
        if not stable.overlaps_any(updater.output_lo, updater.output_hi):
            # Entire output range evicted: lazily garbage-collect (§2.5).
            table.updaters.discard(entry.lo, entry.hi, updater)
            self.updater_bytes -= updater.memory_size()
            self.stats.add("updaters_collected")
            return
        self.stats.add("updaters_fired")
        if updater.lazy:
            self._fire_lazy(stable, updater, key, old_value, new_value, kind)
        else:
            self._fire_eager(
                stable, updater, key, old_value, new_value, kind, copy_value
            )

    # ------------------------------------------------------------------
    def _fire_lazy(
        self,
        stable: StatusTable,
        updater: Updater,
        key: str,
        old_value: Optional[str],
        new_value: Optional[str],
        kind: ChangeKind,
    ) -> None:
        """Invalidate: partial (logged) for inserts, complete for removes.

        A removed check tuple invalidates completely because eager
        updaters derived from it must be retired; recomputation from
        scratch rebuilds exactly the surviving updaters (§3.2).
        """
        if kind is ChangeKind.UPDATE:
            return  # check sources: values are uninteresting
        if not self._lazy_match(updater, key):
            return
        if kind is ChangeKind.INSERT:
            self.stats.add("partial_invalidations")
            pending = PendingEntry(
                updater.join, updater.source_index, key, old_value, new_value,
                kind,
            )
            for sr in stable.overlapping(updater.output_lo, updater.output_hi):
                if sr.state is RangeState.VALID:
                    if not sr.log_pending(pending):
                        self.stats.add("pending_compacted")
        else:
            self.stats.add("complete_invalidations")
            for sr in stable.overlapping(updater.output_lo, updater.output_hi):
                sr.invalidate()

    def _apply_pending(
        self, tbl_name: str, stable: StatusTable, sr: StatusRange
    ) -> None:
        """Apply this range's pending log before serving a read (§3.2).

        The log is compacted first — entries superseded by a later
        write of the same source key collapse to one.  Surviving
        entries apply in log order, but a *run* of entries for the
        same (join, source) whose keys are contiguous in the source
        table — the shape a burst of subscribes leaves behind —
        collapses to ONE join re-execution over the run's key span
        instead of one per logged key (the remaining sources are
        scanned once per run, not once per entry).  Entries the span
        test rejects fall back to per-key application: re-execute the
        join with the changed source key pinned, restricted to this
        (already isolated) output range.
        """
        pending, sr.pending = compact_pending(sr.pending), []
        stable.note_mutation()  # drained log may re-open the fast path
        i = 0
        n = len(pending)
        while i < n:
            entry = pending[i]
            # Extend the run: consecutive log entries for the same
            # join, source, and change kind.
            j = i + 1
            while (
                j < n
                and pending[j].join is entry.join
                and pending[j].source_index == entry.source_index
                and pending[j].kind is entry.kind
            ):
                j += 1
            if (
                j - i > 1
                and self.enable_pending_batching
                and self._apply_pending_run(sr, pending[i:j])
            ):
                i = j
                continue
            if self._apply_pending_entry(tbl_name, stable, sr, entry):
                return  # recomputed wholesale; the rest is superseded
            i += 1

    def _apply_pending_entry(
        self, tbl_name: str, stable: StatusTable, sr: StatusRange,
        entry: PendingEntry,
    ) -> bool:
        """Apply ONE pending entry (the per-key reference path).

        Returns True when the entry forced a wholesale recomputation
        of the range, which supersedes any remaining log entries.
        """
        self.stats.add("pending_applied")
        cs = SlotConstraints.for_output_range(entry.join.output, sr.lo, sr.hi)
        if not cs.compatible:
            return False
        src = entry.join.sources[entry.source_index]
        match = src.pattern.match(entry.key)
        if match is None:
            return False
        child = cs.child_with(match)
        if child is None:
            return False  # irrelevant to this output range
        if entry.join.is_aggregate:
            # Aggregates cannot be patched tuple-by-tuple without
            # group context; recompute this range instead.
            tm = self.table_metrics.get(tbl_name)
            if tm is not None:
                tm.recomputes += 1
            joins = self._materialized_joins.get(tbl_name, [])
            self._recompute_range(tbl_name, stable, joins, sr)
            return True
        self._exec_source(
            entry.join, 0, child, sr.lo, sr.hi, None, sr, None, None,
            mode=ChangeKind.INSERT, skip_source=entry.source_index,
        )
        return False

    def _apply_pending_run(
        self, sr: StatusRange, entries: List[PendingEntry]
    ) -> bool:
        """Apply a same-(join, source) run of pending entries as ONE
        re-execution windowed to the run's source-key span.

        Safe only when the span ``[min_key, succ(max_key))`` holds
        exactly the logged keys — every logged key still stored, no
        foreign key interleaved — so the windowed scan visits the very
        keys the per-key path would pin, and nothing else.  Returns
        False (caller falls back to per-key application) otherwise.
        """
        join = entries[0].join
        if join.is_aggregate or entries[0].kind is not ChangeKind.INSERT:
            return False
        source_index = entries[0].source_index
        keys = sorted({e.key for e in entries})
        table = self.store.existing_table_for_key(keys[0])
        if table is None:
            return False
        lo, hi = keys[0], key_successor(keys[-1])
        if table.count_range(lo, hi) != len(keys) or any(
            table.count_range(k, key_successor(k)) != 1 for k in keys
        ):
            return False  # interleaved or vanished keys: not contiguous
        cs = SlotConstraints.for_output_range(join.output, sr.lo, sr.hi)
        self.stats.add("pending_applied", len(entries))
        if not cs.compatible:
            return True  # nothing in this output range to patch
        self.stats.add("pending_range_batches")
        self._exec_source(
            join, 0, cs, sr.lo, sr.hi, None, sr, None, None,
            mode=ChangeKind.INSERT, skip_source=None,
            source_window=(source_index, lo, hi),
        )
        return True

    # ------------------------------------------------------------------
    def _fire_eager(
        self,
        stable: StatusTable,
        updater: Updater,
        key: str,
        old_value: Optional[str],
        new_value: Optional[str],
        kind: ChangeKind,
        copy_value: Optional[Value],
    ) -> None:
        """Apply a value-source change to the output immediately."""
        join = updater.join
        src = join.sources[updater.source_index]
        if not src.is_check and plan_mod._PLAN_COMPILED:
            plan = self._plan_for(updater)
            if plan is not None:
                template = self._plan_template(updater, plan)
                if template is not None:
                    self._fire_plan(
                        stable, plan, template, updater, key,
                        old_value, new_value, kind, copy_value,
                    )
                    return
        child = self._eager_child(updater, key)
        if child is None:
            return
        if src.is_check:
            # The echeck extension: eager maintenance of a check source.
            self._fire_eager_check(stable, updater, child, kind)
            return
        if join.is_aggregate:
            self._eager_aggregate(
                stable, updater, child, old_value, new_value, kind
            )
            return
        # Copy join: re-execute the remaining sources with this key
        # pinned.  For the common value-source-last join this recursion
        # bottoms out immediately in a single insert or remove.
        value: Value
        if kind is ChangeKind.REMOVE:
            value = old_value or ""
            mode = ChangeKind.REMOVE
        else:
            value = copy_value if copy_value is not None else (new_value or "")
            mode = ChangeKind.INSERT
        applied = False
        for sr in stable.overlapping(updater.output_lo, updater.output_hi):
            if sr.state is not RangeState.VALID:
                continue
            if sr.generation != updater.generation:
                continue  # superseded by a recomputation
            lo, hi = clamp_range(updater.output_lo, updater.output_hi, sr.lo, sr.hi)
            if not lo < hi:
                continue
            applied = True
            self._exec_source(
                join, updater.source_index + 1, child, lo, hi, value, sr,
                None, None, mode=mode, skip_source=updater.source_index,
            )
        if applied:
            self.stats.add("eager_updates")

    def _fire_plan(
        self,
        stable: StatusTable,
        plan: ExecPlan,
        template: FireTemplate,
        updater: Updater,
        key: str,
        old_value: Optional[str],
        new_value: Optional[str],
        kind: ChangeKind,
        copy_value: Optional[Value],
    ) -> None:
        """One eager fire through the compiled plan.

        State-equivalent to :meth:`_fire_eager`'s interpreted walk for
        the compiled subset (value-source-last push joins): the slot
        tuple replaces the regex match + ``child_with`` dict merge, the
        bound template replaces ``expand``, and the containing status
        range is found directly instead of re-checking the output key
        against every overlapping range (only the containing range's
        emission re-check can pass).
        """
        values = plan.extract(key)
        if values is None:
            return
        out_key = template.out_key(values)
        if out_key is None:
            return  # context/source slot conflict: key not ours
        if not (updater.output_lo <= out_key < updater.output_hi):
            return
        self.stats.counters["write_plan_fires"] += 1
        if not plan.is_copy:
            self._eager_aggregate_at(
                stable, updater, out_key, old_value, new_value, kind
            )
            return
        sr = stable.find(out_key)
        if sr is None or sr.state is not RangeState.VALID:
            return
        if sr.generation != updater.generation:
            return  # superseded by a recomputation
        self.stats.add("eager_updates")
        if kind is ChangeKind.REMOVE:
            self._remove_output(out_key)
            return
        value: Value = (
            copy_value if copy_value is not None else (new_value or "")
        )
        hint = sr.hint if self.enable_hints else None
        handle, old = plan.table.put(out_key, value, hint=hint)
        if self.enable_hints:
            sr.hint = handle
        self.stats.add("outputs_installed")
        out_kind = ChangeKind.INSERT if old is None else ChangeKind.UPDATE
        self.notify_change(
            out_key,
            materialize(old) if old is not None else None,
            materialize(value),
            out_kind,
        )

    def _fire_eager_check(
        self,
        stable: StatusTable,
        updater: Updater,
        cs: SlotConstraints,
        kind: ChangeKind,
    ) -> None:
        """Eagerly maintain an ``echeck`` source (extension, §3.2).

        Inserted check tuples re-execute the join with the new key
        pinned, flowing matching outputs in immediately — a new
        subscription's backfill happens at write time instead of on the
        next read.  Removals still invalidate completely: retiring the
        eager updaters derived from the dead tuple requires a
        generation bump.  Aggregates likewise fall back to
        invalidation, since group membership cannot be patched without
        a rescan.
        """
        join = updater.join
        if kind is ChangeKind.UPDATE:
            return  # check values are uninteresting
        if kind is ChangeKind.REMOVE or join.is_aggregate:
            self.stats.add("complete_invalidations")
            for sr in stable.overlapping(updater.output_lo, updater.output_hi):
                sr.invalidate()
            return
        self.stats.add("eager_check_inserts")
        for sr in stable.overlapping(updater.output_lo, updater.output_hi):
            if sr.state is not RangeState.VALID:
                continue
            if sr.generation != updater.generation:
                continue
            lo, hi = clamp_range(updater.output_lo, updater.output_hi, sr.lo, sr.hi)
            if not lo < hi:
                continue
            self._exec_source(
                join, 0, cs, lo, hi, None, sr, None, None,
                mode=ChangeKind.INSERT, skip_source=updater.source_index,
            )

    def _shared_source_value(self, key: str, fallback: str) -> Value:
        """The source's stored value, promoted to a SharedValue (§4.3)."""
        table = self.store.existing_table_for_key(key)
        if table is None:
            return fallback
        node = table.get_node(key)
        if node is None:
            return fallback
        return self._promote_shared(table, node)

    def _eager_aggregate(
        self,
        stable: StatusTable,
        updater: Updater,
        cs: SlotConstraints,
        old_value: Optional[str],
        new_value: Optional[str],
        kind: ChangeKind,
    ) -> None:
        """Incrementally adjust an aggregate output (§2.3).

        count/sum adjust in both directions; min/max recompute their
        group when the extremum departs (the paper likewise constrains
        aggregates to simple cases).
        """
        join = updater.join
        if updater.source_index != len(join.sources) - 1:
            # Deeper check sources would require a rescan to know how
            # many tuples this key participates in; fall back to
            # invalidation of the affected ranges.
            for sr in stable.overlapping(updater.output_lo, updater.output_hi):
                sr.invalidate()
            self.stats.add("complete_invalidations")
            return
        try:
            out_key = join.output.expand(cs.exact)
        except Exception:
            return
        if not (updater.output_lo <= out_key < updater.output_hi):
            return
        self._eager_aggregate_at(
            stable, updater, out_key, old_value, new_value, kind
        )

    def _eager_aggregate_at(
        self,
        stable: StatusTable,
        updater: Updater,
        out_key: str,
        old_value: Optional[str],
        new_value: Optional[str],
        kind: ChangeKind,
    ) -> None:
        """Adjust the aggregate accumulator at ``out_key``.

        The tail of :meth:`_eager_aggregate`, split out so the compiled
        plan path can enter with its precomputed output key.
        """
        join = updater.join
        sr = stable.find(out_key)
        if sr is None or sr.state is not RangeState.VALID:
            return
        if sr.generation != updater.generation:
            return
        self.stats.add("eager_updates")
        table = self.store.table_for_key(out_key)
        node = table.get_node(out_key)
        acc = node.value if node is not None else None
        if not isinstance(acc, AggValue):
            if node is not None:
                # An aggregate output was overwritten by something else;
                # recompute rather than guess.
                self._invalidate_group(stable, sr, out_key)
                return
            if kind is ChangeKind.REMOVE:
                return  # group already absent
            acc = AggValue(join.value_source.operator)
            acc.include(new_value or "")
            self._install_output(out_key, acc, sr)
            return
        old_payload = acc.payload
        if kind is ChangeKind.INSERT:
            acc.include(new_value or "")
            outcome = UpdateOutcome.APPLIED
        elif kind is ChangeKind.REMOVE:
            outcome = acc.exclude(old_value or "")
        else:
            outcome = acc.replace(old_value or "", new_value or "")
        if outcome is UpdateOutcome.EMPTIED:
            self._remove_output(out_key)
        elif outcome is UpdateOutcome.RECOMPUTE:
            self._invalidate_group(stable, sr, out_key)
        elif acc.payload != old_payload:
            self.stats.add("aggregate_adjustments")
            self.notify_change(out_key, old_payload, acc.payload, ChangeKind.UPDATE)

    def _invalidate_group(
        self, stable: StatusTable, sr: StatusRange, out_key: str
    ) -> None:
        """Isolate and invalidate just the group's key (min/max retreat)."""
        succ = key_successor(out_key)
        tbl_name = updater_tbl = out_key.split("|", 1)[0]
        if sr.lo < out_key:
            sr = stable.split(sr, out_key)
            self._ensure_tracked(tbl_name, sr)
        if succ < sr.hi:
            right = stable.split(sr, succ)
            self._ensure_tracked(updater_tbl, right)
        sr.invalidate()
        self.stats.add("group_invalidations")

    # ==================================================================
    # Introspection
    # ==================================================================
    def status_for(self, tbl_name: str) -> StatusTable:
        return self.status.setdefault(tbl_name, StatusTable())

    def memory_bytes(self) -> int:
        return self.store.memory_bytes() + self.updater_bytes
