"""Slot constraints and containing ranges (paper §3.1).

Join execution pushes selection as early as possible.  Two concepts
from the paper drive this:

* A **slot set** is a set of slot assignments derived from a cache join
  and a key or key range.  Execution begins by deriving constraints
  from the requested output range — e.g. ``scan(t|ann|0100, t|ann})``
  yields ``user = ann`` exactly and ``time >= 0100`` — and augments
  them with exact assignments as source keys are matched.

* A **containing range** is "effectively the inverse of a slot set":
  given constraints and a source pattern, the minimal range of source
  keys that might affect the scan's results.  With ``user = ann`` and
  ``poster = bob``, the ``p|<poster>|<time>`` source's containing range
  is ``[p|bob|0100, p|bob})``.

``SlotConstraints`` stores exact assignments plus per-slot string
bounds for the frontier slot of the requested range.  Containing ranges
may over-approximate on adversarial ranges (e.g. scans crossing many
timelines); execution re-checks each emitted output key against the
requested range, so results stay exact.

Like real Pequod (which used fixed-width slots), minimal lower bounds
assume slot values at one position are prefix-free — zero-padded
numbers, fixed-length ids.  Applications that violate this still get
correct results for prefix-closed scans, but bounded scans may use
looser source ranges.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..store.keys import SEP, prefix_upper_bound
from .pattern import Pattern

#: Bounds on one slot's value: inclusive lo, exclusive hi (either None).
Bounds = Tuple[Optional[str], Optional[str]]


class SlotConstraints:
    """Exact slot assignments plus range bounds for frontier slots.

    ``compatible`` is False when the requested output range provably
    cannot contain any key of the join's output pattern (e.g. the range
    selects the ``|c|`` tag of an interleaved join but this join emits
    ``|a`` keys); execution skips the join entirely.
    """

    __slots__ = ("exact", "bounds", "compatible")

    def __init__(
        self,
        exact: Optional[Dict[str, str]] = None,
        bounds: Optional[Dict[str, Bounds]] = None,
        compatible: bool = True,
    ) -> None:
        self.exact: Dict[str, str] = dict(exact or {})
        self.bounds: Dict[str, Bounds] = dict(bounds or {})
        self.compatible = compatible

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SlotConstraints(exact={self.exact!r}, bounds={self.bounds!r}, "
            f"compatible={self.compatible})"
        )

    # ------------------------------------------------------------------
    # Derivation from an output range
    # ------------------------------------------------------------------
    @classmethod
    def for_output_range(
        cls, output: Pattern, first: str, last: str
    ) -> "SlotConstraints":
        """Constraints implied by scanning ``[first, last)`` of ``output``.

        Walks the output pattern's segments against the range bounds.
        A segment is *determined* when every key in the range must have
        exactly that segment value; the first undetermined segment (the
        frontier) gets string bounds; deeper segments are unconstrained.
        """
        cs = cls()
        fparts = first.split(SEP)
        lparts = last.split(SEP)
        nseg = len(output.segments)
        for i in range(nseg):
            # Case A: both bounds continue past segment i with the same
            # value: every key in range shares it exactly.
            if (
                i < len(fparts) - 1
                and i < len(lparts) - 1
                and fparts[i] == lparts[i]
            ):
                if not cs._bind_exact(output, i, fparts[i]):
                    return cs
                continue
            # Case B: the range is [first, successor-of-prefix): the
            # paper's t|ann| ... t|ann} form.  Segment i is determined
            # and the next segment gains a lower bound from `first`.
            if i < len(fparts):
                prefix = SEP.join(fparts[: i + 1]) + SEP
                if last == prefix_upper_bound(prefix):
                    if not cs._bind_exact(output, i, fparts[i]):
                        return cs
                    j = i + 1
                    if j < nseg and j < len(fparts) and fparts[j]:
                        cs._bind_bounds(output, j, fparts[j], None)
                    return cs
            # Case C: generic frontier — the segment gets string bounds
            # and deeper segments are unconstrained.
            lo = fparts[i] if i < len(fparts) and fparts[i] else None
            hi: Optional[str] = None
            if i < len(lparts) and lparts[i]:
                if i == len(lparts) - 1:
                    hi = lparts[i]
                else:
                    hi = prefix_upper_bound(lparts[i])
            if lo is not None and hi == lo + "\x00":
                # get()-style range [key, key + "\x00"): the final
                # segment is determined exactly.
                cs._bind_exact(output, i, lo)
                return cs
            cs._bind_bounds(output, i, lo, hi)
            return cs
        return cs

    def _bind_exact(self, pattern: Pattern, index: int, value: str) -> bool:
        """Bind segment ``index`` to ``value``; False ends derivation."""
        seg = pattern.segments[index]
        if not seg.is_slot:
            if seg.text != value:
                self.compatible = False
            return self.compatible
        prior = self.exact.get(seg.slot)
        if prior is not None and prior != value:
            self.compatible = False
            return False
        self.exact[seg.slot] = value
        return True

    def _bind_bounds(
        self, pattern: Pattern, index: int, lo: Optional[str], hi: Optional[str]
    ) -> None:
        seg = pattern.segments[index]
        if not seg.is_slot:
            # A literal at the frontier: the join can only contribute
            # keys inside the bounds.  The lower check must tolerate
            # ``lo`` extending the literal (segment "c" vs bound "ca"):
            # deeper segments may still lift such keys above ``first``.
            if lo is not None and seg.text < lo and not lo.startswith(seg.text):
                self.compatible = False
            if hi is not None and not (seg.text < hi):
                self.compatible = False
            return
        if seg.slot in self.exact:
            return
        self.bounds[seg.slot] = (lo, hi)

    # ------------------------------------------------------------------
    # Augmentation during execution
    # ------------------------------------------------------------------
    def child_with(self, assignments: Dict[str, str]) -> Optional["SlotConstraints"]:
        """A new constraint set with ``assignments`` added.

        Returns None when an assignment conflicts with an existing
        exact value or falls outside a slot's bounds — the candidate
        source key does not participate in the join (§3.1's selection
        step).
        """
        exact = dict(self.exact)
        for name, value in assignments.items():
            prior = exact.get(name)
            if prior is not None:
                if prior != value:
                    return None
                continue
            bound = self.bounds.get(name)
            if bound is not None:
                lo, hi = bound
                if lo is not None and value < lo and not lo.startswith(value):
                    return None
                if hi is not None and not (value < hi):
                    return None
            exact[name] = value
        bounds = {n: b for n, b in self.bounds.items() if n not in exact}
        return SlotConstraints(exact, bounds, self.compatible)

    # ------------------------------------------------------------------
    # Containing ranges
    # ------------------------------------------------------------------
    def containing_range(self, source: Pattern) -> Tuple[str, str]:
        """The minimal source key range consistent with these constraints.

        Walks the source pattern, extending an exact prefix while
        segments are literals or exactly-assigned slots.  The first
        non-exact segment closes the range using the slot's bounds (if
        any); deeper constraints cannot tighten a string range and are
        ignored.  The walk (and its per-pattern LRU memo) lives on
        :meth:`Pattern.containing_range`.
        """
        return source.containing_range(self.exact, self.bounds)
