"""Updaters: the write-side half of incremental maintenance (§3.2).

An updater links a range of *source* keys with a context — a cache
join, a slot set, and the output range it maintains.  Updaters live in
each table's interval tree; every store modification stabs the tree and
runs the updaters covering the modified key.

Two flavours, as in the paper:

* **Eager** updaters (installed for value sources — ``copy`` and
  aggregates) apply the change to the output immediately: copy the new
  value to its output key, bump a count, and so on.
* **Lazy** updaters (installed for ``check`` sources) only mark output
  state: inserts become *partial invalidations* (a pending-log entry
  applied when the output is next read), removals become *complete
  invalidations* (recompute from scratch) because a removed check tuple
  also retires eager updaters derived from it.  This is the policy the
  paper describes: "our prototype uses lazy maintenance (invalidations)
  for check sources and eager maintenance for all other sources."

The paper's two big optimizations are implemented here and in the
interval tree: *updater combining* (same-range updaters share one
interval entry; identical updaters are deduplicated) and *context
compression* (an updater stores only slot assignments that the source
key itself cannot supply).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .joins import CacheJoin


class Updater:
    """Maintenance record attached to a source key range.

    ``context`` holds the slot assignments fixed at installation time —
    exactly those the source key cannot re-derive (context compression,
    §3.2).  ``output_lo``/``output_hi`` delimit the join status range
    this updater maintains; validity is re-checked at fire time so
    splits and invalidations of status ranges never dangle.
    """

    __slots__ = (
        "join",
        "source_index",
        "context",
        "output_lo",
        "output_hi",
        "lazy",
        "source_lo",
        "source_hi",
        "generation",
        "template",
    )

    def __init__(
        self,
        join: "CacheJoin",
        source_index: int,
        context: Dict[str, str],
        output_lo: str,
        output_hi: str,
        lazy: bool,
        source_lo: str,
        source_hi: str,
        generation: int = 0,
    ) -> None:
        self.join = join
        self.source_index = source_index
        self.context = context
        self.output_lo = output_lo
        self.output_hi = output_hi
        self.lazy = lazy
        self.source_lo = source_lo
        self.source_hi = source_hi
        #: Status-range generation this updater was installed under; an
        #: eager updater only applies to ranges still in this
        #: generation (see ``StatusRange.generation``).
        self.generation = generation
        #: Cached compiled fire template (``core.plan.FireTemplate``),
        #: bound lazily on first fire.  None = not yet bound; False =
        #: binding failed, use the interpreted path.
        self.template = None

    # Identity: two updaters are interchangeable when they would perform
    # identical maintenance.  Used to deduplicate on (re)installation.
    def same_as(self, other: "Updater") -> bool:
        return (
            self.join is other.join
            and self.source_index == other.source_index
            and self.lazy == other.lazy
            and self.output_lo == other.output_lo
            and self.output_hi == other.output_hi
            and self.context == other.context
        )

    def compressed_context(self) -> Dict[str, str]:
        """Drop context slots the source key re-derives on its own.

        The paper compresses or eliminates context "since in many cases
        Pequod can derive an output key completely from the source key
        and the relevant join status range."
        """
        own = set(self.join.sources[self.source_index].pattern.slots)
        return {k: v for k, v in self.context.items() if k not in own}

    def memory_size(self) -> int:
        """Approximate bytes for accounting/ablation purposes."""
        return (
            48
            + sum(len(k) + len(v) for k, v in self.context.items())
            + len(self.source_lo)
            + len(self.source_hi)
            + len(self.output_lo)
            + len(self.output_hi)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "lazy" if self.lazy else "eager"
        return (
            f"<Updater {kind} src={self.source_index} "
            f"[{self.source_lo!r},{self.source_hi!r}) ctx={self.context!r}>"
        )


def _identity_key(updater: Updater):
    """Hashable form of the ``same_as`` equivalence — one dict probe
    replaces the O(payloads) dedup scan when thousands of combined
    updaters share an interval entry (celebrity fan-out)."""
    return (
        id(updater.join),
        updater.source_index,
        updater.lazy,
        updater.output_lo,
        updater.output_hi,
        frozenset(updater.context.items()),
    )


def install_updater(table, updater: Updater) -> Optional[Updater]:
    """Add ``updater`` to ``table``'s interval tree with deduplication.

    Returns the updater actually stored (an existing equivalent one if
    present).  Same-range updaters share one interval entry — the
    paper's combining optimization.  Reinstallation after a
    recomputation refreshes the surviving updater's generation instead
    of accumulating a duplicate.

    Dedup is O(1) via an identity index kept on the interval entry and
    rebuilt lazily after removals (``IntervalEntry.payload_index``).
    """
    key = _identity_key(updater)
    entry = table.updaters.find_entry(updater.source_lo, updater.source_hi)
    if entry is not None:
        index = entry.payload_index
        if index is None:
            index = entry.payload_index = {
                _identity_key(existing): existing
                for existing in entry.payloads
            }
        existing = index.get(key)
        if existing is not None:
            if updater.generation > existing.generation:
                existing.generation = updater.generation
            return existing
        entry.payloads.append(updater)
        index[key] = updater
        return updater
    entry = table.updaters.add(
        updater.source_lo, updater.source_hi, updater
    )
    entry.payload_index = {key: updater}
    return updater
