"""The cache join: Pequod's central abstraction (paper §3).

A :class:`CacheJoin` declares how output key-value pairs are calculated
from source key-value pairs.  It has four parts (§3): an output
pattern, one or more source patterns with operators, performance
annotations (maintenance type and source order), and slot definitions
(our patterns carry slots inline).

Joins are validated at installation time ("add-join", §3): exactly one
source is a value source (``copy`` or an aggregate) and the rest are
``check``; every output slot must be recoverable from some source; and
a join's output table may not feed its own sources (no recursion).
Ambiguity — output keys that drop distinguishing slots — is permitted,
as the paper discusses: the application may know collisions cannot
happen, so Pequod leaves it responsible.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple

from .operators import AGGREGATES, CHECK, CHECK_OPERATORS, ECHECK, OPERATORS
from .pattern import Pattern, pattern_from


class JoinError(ValueError):
    """Raised when a cache join fails installation-time validation."""


class MaintenanceType(enum.Enum):
    """Paper §3.4 performance annotations."""

    PUSH = "push"  # eager incremental maintenance (default)
    PULL = "pull"  # recompute on every query; never cached
    SNAPSHOT = "snapshot"  # compute, cache unmaintained for T seconds


class Source:
    """One source pattern and its operator."""

    __slots__ = ("operator", "pattern")

    def __init__(self, operator: str, pattern: "Pattern | str") -> None:
        if operator not in OPERATORS:
            raise JoinError(f"unknown operator {operator!r}")
        self.operator = operator
        self.pattern = pattern_from(pattern)

    @property
    def is_check(self) -> bool:
        return self.operator in CHECK_OPERATORS

    @property
    def is_eager_check(self) -> bool:
        """The ``echeck`` extension: check semantics, eager inserts."""
        return self.operator == ECHECK

    @property
    def is_aggregate(self) -> bool:
        return self.operator in AGGREGATES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.operator} {self.pattern.text}"


class CacheJoin:
    """A declarative view definition over key ranges.

    ``CacheJoin("t|<user>|<time>|<poster>",
                [("check", "s|<user>|<poster>"),
                 ("copy", "p|<poster>|<time>")])``
    is the paper's Twip timeline join.  Source order is a performance
    annotation (§3.4): sources are scanned in the given order.
    """

    __slots__ = (
        "output",
        "sources",
        "maintenance",
        "snapshot_interval",
        "value_index",
        "text",
    )

    def __init__(
        self,
        output: "Pattern | str",
        sources: Sequence["Source | Tuple[str, str]"],
        maintenance: MaintenanceType = MaintenanceType.PUSH,
        snapshot_interval: Optional[float] = None,
    ) -> None:
        self.output = pattern_from(output)
        self.sources: List[Source] = [
            s if isinstance(s, Source) else Source(s[0], s[1]) for s in sources
        ]
        self.maintenance = maintenance
        self.snapshot_interval = snapshot_interval
        self.value_index = self._validate()
        ann = {
            MaintenanceType.PUSH: "",
            MaintenanceType.PULL: "pull ",
            MaintenanceType.SNAPSHOT: f"snapshot {snapshot_interval} ",
        }[maintenance]
        self.text = (
            f"{self.output.text} = {ann}"
            + " ".join(f"{s.operator} {s.pattern.text}" for s in self.sources)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CacheJoin({self.text!r})"

    # ------------------------------------------------------------------
    @property
    def value_source(self) -> Source:
        """The single non-check source, whose values feed the output."""
        return self.sources[self.value_index]

    @property
    def is_aggregate(self) -> bool:
        return self.value_source.is_aggregate

    @property
    def is_pull(self) -> bool:
        return self.maintenance is MaintenanceType.PULL

    @property
    def is_push(self) -> bool:
        return self.maintenance is MaintenanceType.PUSH

    @property
    def is_snapshot(self) -> bool:
        return self.maintenance is MaintenanceType.SNAPSHOT

    def source_tables(self) -> List[str]:
        return [s.pattern.table for s in self.sources]

    # ------------------------------------------------------------------
    def _validate(self) -> int:
        if not self.sources:
            raise JoinError("a cache join needs at least one source")
        value_indexes = [
            i for i, s in enumerate(self.sources) if not s.is_check
        ]
        if len(value_indexes) != 1:
            raise JoinError(
                f"a join with {len(self.sources)} sources must have exactly "
                f"{len(self.sources) - 1} check operators "
                f"(found {len(self.sources) - len(value_indexes)})"
            )
        source_slots = set()
        for src in self.sources:
            source_slots.update(src.pattern.slots)
        missing = [s for s in self.output.slots if s not in source_slots]
        if missing:
            raise JoinError(
                f"output slots {missing} do not appear in any source"
            )
        out_table = self.output.table
        for src in self.sources:
            if src.pattern.table == out_table:
                raise JoinError(
                    f"recursive join: source table {out_table!r} is the "
                    "join's own output table"
                )
        if self.maintenance is MaintenanceType.SNAPSHOT:
            if self.snapshot_interval is None or self.snapshot_interval <= 0:
                raise JoinError("snapshot joins need a positive interval")
        elif self.snapshot_interval is not None:
            raise JoinError("only snapshot joins take an interval")
        return value_indexes[0]
