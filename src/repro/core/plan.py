"""Compiled per-join execution plans for the write path.

PR 3 compiled the *read* path: patterns became slicing plans, and the
interpreted segment walks survive only as the reference specification
behind ``set_pattern_compilation``.  This module does the same for the
*write* path's hot loop — eager updater fires.  The interpreted fire
walks ``CacheJoin``/``_exec_source`` per follower per write: build a
``SlotConstraints``, match the source key into a dict, merge dicts,
``expand`` through ``format_map``, resolve the output table by string
split.  At production fan-out (the celebrity problem) that per-fire
interpretation dominates the write side.

An :class:`ExecPlan` compiles one (join, fired source) pair into flat
precomputed state:

* the **write-side slot plan** — ``Pattern.slot_tuple``'s absolute
  extraction offsets, shared across every updater of the pattern, so a
  fanned-out post extracts its slots once per change, not once per
  follower;
* the **preresolved output table handle** — the join's output table is
  fixed, so the per-install ``table_for_key`` split+lookup goes away;
* the **fused operator step** — ``copy`` installs directly; the
  aggregate chain (``count``/``min``/``max``/``sum``) routes the
  precomputed output key into the accumulator adjustment;
* the **output-key expand template** — per updater, the output pattern
  with literals *and* that updater's context values inlined into one
  format string, leaving only positional fields indexed into the
  extracted slot tuple.  Repeated/conflicting slots compile to equality
  checks, mirroring ``SlotConstraints.child_with``.

Plans only compile for the shape eager maintenance makes hot — a push
join whose fired source is its value source *and* its last source (the
paper's common value-source-last join).  Everything else (check and
echeck sources, deep value sources, pull joins) falls back to the
interpreted walk, which also remains the reference implementation
behind :func:`set_plan_compilation`, toggled exactly like PR 3's
``set_pattern_compilation``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from ..store.keys import SEP

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..store.store import OrderedStore
    from ..store.table import Table
    from .joins import CacheJoin

#: Global plan-compilation switch.  On by default; ``repro bench
#: write_path`` flips it off to measure the interpreted baseline.
_PLAN_COMPILED = True


def set_plan_compilation(enabled: bool) -> bool:
    """Enable or disable compiled write-path plans globally.

    Returns the previous setting so callers can restore it.  Intended
    for benchmarks and equivalence tests; production leaves it on.
    """
    global _PLAN_COMPILED
    previous = _PLAN_COMPILED
    _PLAN_COMPILED = bool(enabled)
    return previous


def plan_compilation_enabled() -> bool:
    return _PLAN_COMPILED


class FireTemplate:
    """One updater's bound output-key template.

    ``fmt`` is the output pattern with literals and the updater's
    context values inlined; ``indexes`` are positions into the fired
    source's slot tuple, in field order; ``checks`` are (tuple index,
    expected value) pairs for slots pinned by both the context and the
    source key — the compiled form of ``child_with``'s conflict test.
    ``injective`` records whether distinct source keys always produce
    distinct output keys (every free source slot appears in the
    output); the batched install path requires it so reordering a
    group can never change which write wins an output key.
    """

    __slots__ = ("fmt", "indexes", "checks", "injective")

    def __init__(
        self,
        fmt: str,
        indexes: Tuple[int, ...],
        checks: Tuple[Tuple[int, str], ...],
        injective: bool,
    ) -> None:
        self.fmt = fmt
        self.indexes = indexes
        self.checks = checks
        self.injective = injective

    def out_key(self, values: Tuple[str, ...]) -> Optional[str]:
        """The output key for one extracted slot tuple, or None when a
        pinned-slot equality check rejects the key."""
        for idx, expected in self.checks:
            if values[idx] != expected:
                return None
        indexes = self.indexes
        if not indexes:
            return self.fmt
        return self.fmt.format(*[values[i] for i in indexes])


def _escape_literal(text: str) -> str:
    return text.replace("{", "{{").replace("}", "}}")


class ExecPlan:
    """Compiled execution state for one (join, fired source) pair.

    Shared by every updater installed for that pair; per-updater state
    (the bound :class:`FireTemplate`) is derived via :meth:`bind` and
    cached on the updater itself.
    """

    __slots__ = ("join", "source_index", "pattern", "operator", "table")

    def __init__(
        self,
        join: "CacheJoin",
        source_index: int,
        table: "Table",
    ) -> None:
        self.join = join
        self.source_index = source_index
        src = join.sources[source_index]
        self.pattern = src.pattern
        #: The fused operator step: ``copy`` means install-directly,
        #: anything else is the aggregate accumulator chain.
        self.operator = src.operator
        #: Preresolved output table handle — table objects are stable
        #: for the store's lifetime, so the per-install name split and
        #: dict lookup compile away.
        self.table = table

    @property
    def is_copy(self) -> bool:
        from .operators import COPY

        return self.operator == COPY

    def extract(self, key: str) -> Optional[Tuple[str, ...]]:
        """The fired source's slot tuple for ``key`` (write-side slot
        plan), or None when the key doesn't fit the source pattern."""
        return self.pattern.slot_tuple(key)

    def bind(self, context: Dict[str, str]) -> Optional[FireTemplate]:
        """Compile one updater's context into a :class:`FireTemplate`.

        Returns None when the context plus the source slots cannot
        produce the output key (the fire would fail slot resolution);
        the caller then falls back to the interpreted path.
        """
        slot_index = self.pattern.slot_index
        parts = []
        indexes = []
        for i, seg in enumerate(self.join.output.segments):
            if i:
                parts.append(SEP)
            if not seg.is_slot:
                parts.append(_escape_literal(seg.text))
                continue
            src_idx = slot_index.get(seg.slot)
            ctx_value = context.get(seg.slot)
            if src_idx is not None and ctx_value is None:
                parts.append("{}")
                indexes.append(src_idx)
            elif ctx_value is not None:
                parts.append(_escape_literal(ctx_value))
            else:
                return None  # slot unavailable: interpreted path decides
        checks = tuple(
            (idx, value)
            for name, idx in slot_index.items()
            if (value := context.get(name)) is not None
        )
        free = {
            idx
            for name, idx in slot_index.items()
            if context.get(name) is None
        }
        return FireTemplate(
            "".join(parts), tuple(indexes), checks, free <= set(indexes)
        )


def compile_exec_plan(
    join: "CacheJoin", source_index: int, store: "OrderedStore"
) -> Optional[ExecPlan]:
    """Compile the plan for one (join, source) pair, or None when the
    shape is outside the compiled subset (the interpreted walk remains
    the implementation for it)."""
    if not join.is_push:
        return None
    if source_index != join.value_index:
        return None  # check/echeck sources: lazy or invalidation paths
    if source_index != len(join.sources) - 1:
        # A deeper value source still scans trailing sources per fire;
        # the interpreted recursion handles that shape.
        return None
    return ExecPlan(join, source_index, store.table(join.output.table))
