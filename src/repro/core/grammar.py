"""Textual cache-join grammar (paper Figure 2).

::

    <cachejoin> ::= <key> "=" ["push" | "pull" | "snapshot <T>"] <sources> [";"]
    <sources>   ::= <source> | <sources> <source>
    <source>    ::= <operator> <key>
    <operator>  ::= "copy" | "min" | "max" | "count" | "sum" | "check"
                  | "echeck"          (extension: eagerly maintained check)

Keys are whitespace-free patterns.  Slots are written ``<name>``; the
paper's bare style (``t|user|time|poster``) is accepted when no key in
the join uses angle brackets, in which case every segment after the
leading table tag is treated as a slot.  Joins that need literal key
tags (the ``|a`` / ``|r`` markers of interleaved joins, Figure 1) must
use the explicit ``<...>`` style so tags stay literal.

Multiple joins may appear in one string, separated by ``;``.  Line
comments start with ``//`` or ``#``.  Users install parsed joins with
the server's ``add_join`` ("add-join RPC", §3).
"""

from __future__ import annotations

import re
from typing import List

from ..store.keys import SEP
from .joins import CacheJoin, JoinError, MaintenanceType, Source
from .operators import OPERATORS

_COMMENT_RE = re.compile(r"//[^\n]*|#[^\n]*")
_NUMBER_RE = re.compile(r"^\d+(\.\d+)?$")
_BARE_SEGMENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class GrammarError(JoinError):
    """Raised when a join specification cannot be parsed."""


def parse_joins(text: str) -> List[CacheJoin]:
    """Parse every cache join in ``text``."""
    stripped = _COMMENT_RE.sub(" ", text)
    statements = [s.strip() for s in stripped.split(";")]
    return [_parse_one(s) for s in statements if s]


def parse_join(text: str) -> CacheJoin:
    """Parse exactly one cache join."""
    joins = parse_joins(text)
    if len(joins) != 1:
        raise GrammarError(
            f"expected exactly one join, found {len(joins)}: {text!r}"
        )
    return joins[0]


def _parse_one(statement: str) -> CacheJoin:
    if "=" not in statement:
        raise GrammarError(f"missing '=' in join: {statement!r}")
    left, right = statement.split("=", 1)
    output_text = left.strip()
    if not output_text or " " in output_text:
        raise GrammarError(f"malformed output pattern: {output_text!r}")
    tokens = right.split()
    if not tokens:
        raise GrammarError(f"join has no sources: {statement!r}")

    maintenance = MaintenanceType.PUSH
    interval = None
    if tokens[0] == "pull":
        maintenance = MaintenanceType.PULL
        tokens = tokens[1:]
    elif tokens[0] == "push":
        tokens = tokens[1:]
    elif tokens[0] == "snapshot":
        if len(tokens) < 2 or not _NUMBER_RE.match(tokens[1]):
            raise GrammarError(
                f"snapshot needs a numeric interval: {statement!r}"
            )
        maintenance = MaintenanceType.SNAPSHOT
        interval = float(tokens[1])
        tokens = tokens[2:]

    if len(tokens) % 2 != 0 or not tokens:
        raise GrammarError(f"sources must be operator/key pairs: {statement!r}")
    raw_sources = []
    for op, key in zip(tokens[::2], tokens[1::2]):
        if op not in OPERATORS:
            raise GrammarError(f"unknown operator {op!r} in {statement!r}")
        raw_sources.append((op, key))

    all_keys = [output_text] + [key for _, key in raw_sources]
    if not any("<" in key for key in all_keys):
        output_text = _bare_to_slots(output_text)
        raw_sources = [(op, _bare_to_slots(key)) for op, key in raw_sources]

    return CacheJoin(
        output_text,
        [Source(op, key) for op, key in raw_sources],
        maintenance=maintenance,
        snapshot_interval=interval,
    )


def _bare_to_slots(key: str) -> str:
    """Rewrite the paper's bare style: segments after the table tag
    become slots (``t|user|time`` -> ``t|<user>|<time>``)."""
    parts = key.split(SEP)
    out = [parts[0]]
    for seg in parts[1:]:
        if not _BARE_SEGMENT_RE.match(seg):
            raise GrammarError(
                f"bare-style segment {seg!r} is not a valid slot name in "
                f"{key!r}; use explicit <slot> syntax"
            )
        out.append(f"<{seg}>")
    return SEP.join(out)
