"""Join status ranges (paper §3.2).

A *join status range* records whether a range of output keys is up to
date with respect to the cache joins whose outputs overlap it.  Status
ranges are attached to output ranges and form a disjoint cover of the
tracked key space: every tracked key belongs to exactly one range.

Each range carries:

* its validity state (``VALID`` / ``INVALID``) and, for snapshot
  joins, an expiry time;
* a *pending log* of partially-invalidating source modifications that
  will be applied lazily when the range is next read (§3.2's partial
  invalidation, after [29]);
* the *output hint* — a handle to the last key this range updated,
  giving O(1) appends and in-place updates (§4.2);
* an LRU entry so eviction can drop cold computed ranges (§2.5).

Ranges split when a query or invalidation touches part of them; the
paper's "disjoint cover" is preserved by construction.
"""

from __future__ import annotations

import enum
from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..store.table import PutHandle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..store.lru import LRUEntry
    from .joins import CacheJoin
    from .operators import ChangeKind


class RangeState(enum.Enum):
    VALID = "valid"
    INVALID = "invalid"


class PendingEntry:
    """A logged source modification awaiting lazy application.

    Records enough to re-derive the affected output tuples: the join,
    which source changed, the source key, and the change kind.
    """

    __slots__ = ("join", "source_index", "key", "old_value", "new_value", "kind")

    def __init__(
        self,
        join: "CacheJoin",
        source_index: int,
        key: str,
        old_value: Optional[str],
        new_value: Optional[str],
        kind: "ChangeKind",
    ) -> None:
        self.join = join
        self.source_index = source_index
        self.key = key
        self.old_value = old_value
        self.new_value = new_value
        self.kind = kind

    def identity(self) -> tuple:
        """The compaction key: entries sharing it repeat identical work.

        Application re-executes the join with ``key`` pinned against
        the *current* store state, so two entries for the same (join,
        source, key, kind) are interchangeable — the values logged at
        write time do not feed the re-execution (aggregates recompute
        wholesale instead).  This is what makes pending-log compaction
        safe.
        """
        return (id(self.join), self.source_index, self.key, self.kind)

    def same_as(self, other: "PendingEntry") -> bool:
        """True when applying both entries would repeat identical work."""
        return self.identity() == other.identity()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Pending {self.kind.value} {self.key!r}>"


def compact_pending(entries: List["PendingEntry"]) -> List["PendingEntry"]:
    """Drop superseded pending entries, keeping the latest of each kind.

    Entries that would re-derive the same output tuples (see
    :meth:`PendingEntry.same_as`) collapse to one, at the position of
    the first occurrence with the payload of the last — a hot source
    key written N times between reads costs one re-execution, not N.
    """
    out: List[PendingEntry] = []
    slots: dict = {}
    for entry in entries:
        slot = slots.get(entry.identity())
        if slot is None:
            slots[entry.identity()] = len(out)
            out.append(entry)
        else:
            out[slot] = entry
    return out


class StatusRange:
    """One piece of the disjoint cover; see module docstring."""

    __slots__ = (
        "lo",
        "hi",
        "state",
        "expires_at",
        "pending",
        "hint",
        "lru_entry",
        "generation",
        "compute_cost",
        "attached",
        "validated_at",
        "spilled",
        "owner",
        "_pending_index",
    )

    def __init__(self, lo: str, hi: str, state: RangeState = RangeState.VALID) -> None:
        if not lo < hi:
            raise ValueError(f"empty status range [{lo!r}, {hi!r})")
        self.lo = lo
        self.hi = hi
        self.state = state
        self.expires_at: Optional[float] = None
        self.pending: List[PendingEntry] = []
        #: Identity -> position index over ``pending``, maintained by
        #: :meth:`log_pending` for O(1) supersede-in-place.  Rebuilt
        #: whenever its size disagrees with the log (every other
        #: mutation path — invalidate, split, apply — empties or
        #: replaces the list, so the sizes diverge).
        self._pending_index: dict = {}
        self.hint: Optional[PutHandle] = None
        self.lru_entry: Optional["LRUEntry"] = None
        #: Bumped on every recomputation.  Eager updaters capture the
        #: generation they were installed under and only apply when it
        #: still matches — this is how "complete invalidation removes
        #: installed updaters" (§3.2) is realized without eagerly
        #: walking interval trees: superseded updaters become inert and
        #: are collected or refreshed on their next firing.
        self.generation = 0
        #: Work units spent computing this range (source keys examined
        #: + outputs installed), recorded by the engine.  Cost-aware
        #: eviction (§2.5's suggested improvement) uses it to prefer
        #: evicting ranges that are cheap to recompute.
        self.compute_cost = 0.0
        #: Is this range currently part of a :class:`StatusTable`'s
        #: cover?  Maintained by the table on add/split/remove.  The
        #: engine's validation memo (§4.2's hint idea applied to
        #: validation) trusts a remembered range only while attached —
        #: eviction flips this off, so stale hints structurally miss
        #: instead of requiring eager memo invalidation.
        self.attached = False
        #: Engine-clock time this range last served a fully validated
        #: read (stamped on compute, recompute, pending application, and
        #: valid touch).  Degrade-mode admission control serves ranges
        #: younger than the staleness bound without re-validation; None
        #: (never validated) always re-validates.
        self.validated_at: Optional[float] = None
        #: Were this range's values moved to the disk spill tier?  Set
        #: by spill-before-evict (the disk store's gentler first stage
        #: of §2.5) so memory pressure does not re-spill the same cold
        #: range; cleared when the range is recomputed from scratch.
        self.spilled = False
        #: The :class:`StatusTable` this range is attached to, if any.
        #: Lets validity mutations (invalidate, pending-log growth)
        #: bump the table's whole-table generation stamp without the
        #: caller knowing which table the range lives in.
        self.owner: Optional["StatusTable"] = None

    def is_valid_at(self, now: float) -> bool:
        if self.state is not RangeState.VALID:
            return False
        return self.expires_at is None or now < self.expires_at

    def needs_work(self, now: float) -> bool:
        return not self.is_valid_at(now) or bool(self.pending)

    def log_pending(self, entry: PendingEntry) -> bool:
        """Append ``entry`` to the pending log, compacting on arrival.

        An equivalent entry already logged (same join, source, key, and
        kind — see :meth:`PendingEntry.same_as`) is superseded in place
        instead of duplicated, in O(1) via the identity index, so a hot
        source key written N times between reads holds one log slot.
        Returns True when the log grew.
        """
        index = self._pending_index
        if len(index) != len(self.pending):
            index = self._pending_index = {
                e.identity(): i for i, e in enumerate(self.pending)
            }
        slot = index.get(entry.identity())
        if slot is None:
            index[entry.identity()] = len(self.pending)
            self.pending.append(entry)
            if self.owner is not None:
                self.owner.note_mutation()
            return True
        self.pending[slot] = entry
        return False

    def invalidate(self) -> None:
        """Complete invalidation: recompute from scratch on next read."""
        self.state = RangeState.INVALID
        self.pending.clear()
        self.hint = None
        self.expires_at = None
        self.spilled = False
        if self.owner is not None:
            self.owner.note_mutation()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = self.state.value
        if self.pending:
            tag += f"+{len(self.pending)}pending"
        return f"<StatusRange [{self.lo!r},{self.hi!r}) {tag}>"


class StatusTable:
    """The disjoint cover of one output table's tracked key space.

    Backed by parallel sorted arrays — range starts in ``_los``, the
    ranges themselves in ``_ranges`` — so the hot-path lookups
    (``find``, ``pieces``, ``overlaps_any``) are one ``bisect`` plus a
    contiguous array walk instead of a pointer-chasing tree descent.
    Gaps between ranges mean "never computed".

    The table also keeps a *generation stamp*, bumped on every mutation
    that could change whole-table validity (add/remove/split here,
    invalidation and pending-log growth via ``StatusRange.owner``, and
    engine-side recompute/expiry/drain via :meth:`note_mutation`).  The
    stamp keys a cached whole-table summary behind
    :meth:`all_valid_over`: when the cover is quiescent — every range
    VALID, no pending work, no expiries, no gaps — cross-timeline scans
    and updater validity checks skip per-range validation entirely.
    """

    __slots__ = ("_los", "_ranges", "_stamp", "_summary")

    def __init__(self) -> None:
        self._los: List[str] = []
        self._ranges: List[StatusRange] = []
        self._stamp = 0
        #: Cached (stamp, all_quiescent, cover_lo, cover_hi); rebuilt
        #: lazily whenever the stamp has moved past it.
        self._summary: Optional[Tuple[int, bool, str, str]] = None

    def __len__(self) -> int:
        return len(self._ranges)

    def ranges(self) -> List[StatusRange]:
        return list(self._ranges)

    def note_mutation(self) -> None:
        """Record a validity-affecting mutation (bumps the stamp)."""
        self._stamp += 1

    @property
    def stamp(self) -> int:
        return self._stamp

    # ------------------------------------------------------------------
    def find(self, key: str) -> Optional[StatusRange]:
        """The status range containing ``key``, if any."""
        i = bisect_right(self._los, key) - 1
        if i < 0:
            return None
        sr = self._ranges[i]
        return sr if key < sr.hi else None

    def pieces(
        self, lo: str, hi: str
    ) -> List[Tuple[str, str, Optional[StatusRange]]]:
        """Decompose ``[lo, hi)`` into covered and uncovered pieces.

        Returns ``(piece_lo, piece_hi, status_or_None)`` triples in key
        order; None marks a gap (never-computed key space).
        """
        out: List[Tuple[str, str, Optional[StatusRange]]] = []
        if not lo < hi:
            return out
        los, ranges = self._los, self._ranges
        cursor = lo
        i = bisect_right(los, lo) - 1
        if i < 0 or ranges[i].hi <= lo:
            i += 1
        n = len(ranges)
        while cursor < hi and i < n:
            sr = ranges[i]
            if sr.lo >= hi:
                break
            if cursor < sr.lo:
                out.append((cursor, sr.lo, None))
                cursor = sr.lo
            piece_hi = sr.hi if sr.hi < hi else hi
            out.append((cursor, piece_hi, sr))
            cursor = piece_hi
            i += 1
        if cursor < hi:
            out.append((cursor, hi, None))
        return out

    def overlapping(self, lo: str, hi: str) -> List[StatusRange]:
        return [sr for _, _, sr in self.pieces(lo, hi) if sr is not None]

    def overlaps_any(self, lo: str, hi: str) -> bool:
        """Does any range intersect ``[lo, hi)``?  One bisect, no list
        materialization — the updater liveness check in a fan-out fire
        loop runs this once per follower."""
        if not lo < hi:
            return False
        los = self._los
        i = bisect_right(los, lo) - 1
        if i >= 0 and lo < self._ranges[i].hi:
            return True
        j = i + 1
        return j < len(los) and los[j] < hi

    # ------------------------------------------------------------------
    def all_valid_over(self, lo: str, hi: str) -> bool:
        """Whole-table fast path: is ``[lo, hi)`` covered by a fully
        quiescent cover (every range VALID, no pending logs, no
        expiries, no gaps)?

        The answer is derived from a summary cached against the
        generation stamp, so quiescent steady-state scans answer in
        O(1) without walking pieces.  Any invalidation, split,
        eviction, expiry, or pending-log growth bumps the stamp and
        forces a re-summary on the next call.
        """
        summary = self._summary
        if summary is None or summary[0] != self._stamp:
            summary = self._summary = self._compute_summary()
        _, quiescent, cover_lo, cover_hi = summary
        return quiescent and cover_lo <= lo and hi <= cover_hi

    def _compute_summary(self) -> Tuple[int, bool, str, str]:
        ranges = self._ranges
        if not ranges:
            return (self._stamp, False, "", "")
        prev_hi: Optional[str] = None
        for sr in ranges:
            if (
                sr.state is not RangeState.VALID
                or sr.pending
                or sr.expires_at is not None
                or (prev_hi is not None and prev_hi != sr.lo)
            ):
                return (self._stamp, False, "", "")
            prev_hi = sr.hi
        return (self._stamp, True, ranges[0].lo, prev_hi)

    # ------------------------------------------------------------------
    def add(self, sr: StatusRange) -> StatusRange:
        """Insert a new range; it must not overlap existing ranges."""
        for piece_lo, piece_hi, existing in self.pieces(sr.lo, sr.hi):
            if existing is not None:
                raise ValueError(
                    f"status range [{sr.lo!r},{sr.hi!r}) overlaps "
                    f"[{existing.lo!r},{existing.hi!r})"
                )
        i = bisect_right(self._los, sr.lo)
        self._los.insert(i, sr.lo)
        self._ranges.insert(i, sr)
        sr.attached = True
        sr.owner = self
        self._stamp += 1
        return sr

    def remove(self, sr: StatusRange) -> None:
        i = bisect_left(self._los, sr.lo)
        if i < len(self._ranges) and self._ranges[i] is sr:
            del self._los[i]
            del self._ranges[i]
            sr.attached = False
            sr.owner = None
            self._stamp += 1

    def split(self, sr: StatusRange, at: str) -> StatusRange:
        """Split ``sr`` at ``at``; returns the new right-hand range.

        Both halves keep the state, expiry, and a copy of the pending
        log (each half will apply or drop entries independently).  The
        output hint stays with the half that contains the hinted key.
        """
        if not (sr.lo < at < sr.hi):
            raise ValueError(f"split point {at!r} outside ({sr.lo!r},{sr.hi!r})")
        right = StatusRange(at, sr.hi, sr.state)
        right.expires_at = sr.expires_at
        right.pending = list(sr.pending)
        right.generation = sr.generation
        right.validated_at = sr.validated_at
        right.compute_cost = sr.compute_cost / 2
        sr.compute_cost /= 2
        sr.hi = at
        if sr.hint is not None and sr.hint.is_valid():
            if not (sr.hint.key() < at):
                right.hint, sr.hint = sr.hint, None
        else:
            sr.hint = None
        i = bisect_right(self._los, right.lo)
        self._los.insert(i, right.lo)
        self._ranges.insert(i, right)
        right.attached = True
        right.owner = self
        self._stamp += 1
        return right

    def isolate(self, lo: str, hi: str) -> List[StatusRange]:
        """Split covering ranges so ``[lo, hi)`` is exactly tiled.

        After this call every status range overlapping ``[lo, hi)``
        lies fully inside it; the (possibly split) ranges are returned.
        """
        out: List[StatusRange] = []
        for sr in self.overlapping(lo, hi):
            if sr.lo < lo:
                sr = self.split(sr, lo)
            if hi < sr.hi:
                self.split(sr, hi)
            out.append(sr)
        return out

    def check_disjoint_cover(self) -> None:
        """Test hook: verify ranges are ordered and non-overlapping."""
        prev_hi: Optional[str] = None
        for key, sr in zip(self._los, self._ranges):
            assert key == sr.lo, "array key out of sync"
            assert sr.lo < sr.hi, "empty status range"
            if prev_hi is not None:
                assert prev_hi <= sr.lo, "overlapping status ranges"
            prev_hi = sr.hi
