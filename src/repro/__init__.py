"""repro: a reproduction of Pequod (NSDI '14), "Easy Freshness with
Pequod Cache Joins".

Pequod is a distributed application-level key-value cache supporting
*cache joins*: declaratively defined, incrementally maintained,
dynamic, partially materialized views.  This package implements the
paper's system and every substrate it depends on, in pure Python:

* ``repro.client`` — the unified client API: one ``PequodClient``
  interface with local, RPC, and cluster backends plus a fluent join
  builder;
* ``repro.core`` — cache joins, query execution, incremental
  maintenance, the single-node :class:`PequodServer`;
* ``repro.store`` — the ordered store (red-black trees, interval
  trees, tables/subtables, value sharing);
* ``repro.backing`` — a backing database with change notifications and
  cache deployments (write-around / write-through / lookaside);
* ``repro.net`` — a binary RPC protocol over asyncio TCP and a
  deterministic simulated network;
* ``repro.distrib`` — distributed Pequod: partitioning, cross-server
  subscriptions, clusters;
* ``repro.baselines`` — the comparison systems of the paper's
  evaluation (client-managed Pequod, Redis-like, memcached-like,
  PostgreSQL-like);
* ``repro.apps`` — the example applications Twip and Newp with
  workload generators;
* ``repro.bench`` — the experiment harness and cost model used to
  regenerate the paper's figures.

Quickstart::

    from repro import PequodServer

    srv = PequodServer()
    srv.add_join("t|<user>|<time>|<poster> = "
                 "check s|<user>|<poster> copy p|<poster>|<time>")
    srv.put("s|ann|bob", "1")
    srv.put("p|bob|0100", "hello, world!")
    print(srv.scan_prefix("t|ann|"))
"""

from .core import (
    AggValue,
    CacheJoin,
    ChangeKind,
    GrammarError,
    JoinError,
    MaintenanceType,
    Pattern,
    PatternError,
    PequodServer,
    SimClock,
    Source,
    SystemClock,
    parse_join,
    parse_joins,
)
from .store import (
    OrderedStore,
    SharedValue,
    StoreStats,
    WriteBatch,
    prefix_upper_bound,
)
from .client import (
    ClientError,
    ClusterClient,
    JoinBuilder,
    JoinSpecError,
    LocalClient,
    PequodClient,
    RemoteClient,
    join,
    make_client,
)

__version__ = "1.1.0"

__all__ = [
    "AggValue",
    "CacheJoin",
    "ChangeKind",
    "ClientError",
    "ClusterClient",
    "JoinBuilder",
    "JoinSpecError",
    "LocalClient",
    "PequodClient",
    "RemoteClient",
    "join",
    "make_client",
    "GrammarError",
    "JoinError",
    "MaintenanceType",
    "OrderedStore",
    "Pattern",
    "PatternError",
    "PequodServer",
    "SharedValue",
    "SimClock",
    "Source",
    "StoreStats",
    "SystemClock",
    "WriteBatch",
    "parse_join",
    "parse_joins",
    "prefix_upper_bound",
    "__version__",
]
