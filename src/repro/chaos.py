"""Fault injection hooks (`repro.chaos`).

The observability layer's claim is that the system *degrades instead of
collapsing*; these hooks are how the chaos tests (and the CI chaos
lane) make it prove that:

* :class:`RpcChaos` — delay or drop RPC response frames on a live
  ``RpcServer`` (install as ``rpc.chaos``).  A dropped response leaves
  exactly one pipelined request hanging — the shape of a lost frame —
  while earlier and later requests on the window complete.
* :class:`SlowMaintenance` — stall the join engine's maintenance entry
  points (install as ``engine.fault_hook``), the "one hot write fans
  out forever" failure.
* :func:`kill_compute` — kill a cluster compute node mid-workload (the
  node vanishes from the network, in-flight messages and all; routing
  rehashes onto survivors, which demand-recompute from base data).
* :func:`net_latency` / :func:`net_drop_filter` — degrade the simulated
  network under a workload.

Every injector counts what it injected, so tests can assert the fault
actually fired and wasn't silently bypassed.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, List, Optional


class RpcChaos:
    """Delay and/or drop encoded RPC response frames.

    Installed as ``RpcServer.chaos``; the server passes each pipelined
    chunk's responses through :meth:`apply` before writing them.

    * ``delay_s`` — sleep this long (wall clock, on the event loop)
      before releasing each chunk's responses.
    * ``drop_every`` — drop every Nth response frame (1-indexed over
      the injector's lifetime); 0 disables dropping.  The dropped
      request's client future simply never resolves — the client-side
      symptom of a lost frame.
    """

    def __init__(self, delay_s: float = 0.0, drop_every: int = 0) -> None:
        if delay_s < 0:
            raise ValueError("delay_s must be >= 0")
        if drop_every < 0:
            raise ValueError("drop_every must be >= 0")
        self.delay_s = delay_s
        self.drop_every = drop_every
        self.frames_seen = 0
        self.frames_dropped = 0
        self.chunks_delayed = 0

    async def apply(self, responses: List[bytes]) -> List[bytes]:
        if self.delay_s and responses:
            self.chunks_delayed += 1
            await asyncio.sleep(self.delay_s)
        if not self.drop_every:
            self.frames_seen += len(responses)
            return responses
        kept: List[bytes] = []
        for frame in responses:
            self.frames_seen += 1
            if self.frames_seen % self.drop_every == 0:
                self.frames_dropped += 1
                continue
            kept.append(frame)
        return kept


class SlowMaintenance:
    """Stall every maintenance pass by ``seconds`` (wall clock).

    Installed as ``JoinEngine.fault_hook``; the engine calls it at each
    notification entry point (per-write and batched).  ``limit`` bounds
    how many stalls fire, so a test can inject a burst of slowness and
    then let the system recover.
    """

    def __init__(self, seconds: float, limit: Optional[int] = None) -> None:
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        self.seconds = seconds
        self.limit = limit
        self.stalls = 0

    def __call__(self, site: str) -> None:
        if self.limit is not None and self.stalls >= self.limit:
            return
        self.stalls += 1
        if self.seconds:
            time.sleep(self.seconds)

    def install(self, engine) -> "SlowMaintenance":
        engine.fault_hook = self
        return self

    @staticmethod
    def uninstall(engine) -> None:
        engine.fault_hook = None


def kill_compute(cluster, affinity: Optional[str] = None, name: Optional[str] = None):
    """Kill one compute node mid-workload; returns the killed node.

    Pick the victim by ``affinity`` (the node currently serving that
    user — the worst case for that user's timeline), by ``name``, or
    let the injector take the first live compute node.
    """
    if name is not None:
        return cluster.kill_node(name)
    if affinity is not None:
        return cluster.kill_node(cluster.compute_node_for(affinity))
    live = cluster.live_compute_nodes
    if not live:
        raise RuntimeError("no live compute nodes to kill")
    return cluster.kill_node(live[0])


def net_latency(net, extra_seconds: float) -> None:
    """Add ``extra_seconds`` to every subsequent simulated delivery."""
    if extra_seconds < 0:
        raise ValueError("extra_seconds must be >= 0")
    net.extra_latency = extra_seconds


def net_drop_filter(
    net, should_drop: Callable[[str, str, str, object], bool]
) -> None:
    """Install a message drop predicate ``(src, dst, kind, body)`` on a
    :class:`~repro.net.simnet.SimNetwork` (None clears)."""
    net.loss_filter = should_drop
