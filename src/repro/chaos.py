"""Fault injection hooks (`repro.chaos`).

The observability layer's claim is that the system *degrades instead of
collapsing*; these hooks are how the chaos tests (and the CI chaos
lane) make it prove that:

* :class:`RpcChaos` — delay or drop RPC response frames on a live
  ``RpcServer`` (install as ``rpc.chaos``).  A dropped response leaves
  exactly one pipelined request hanging — the shape of a lost frame —
  while earlier and later requests on the window complete.
* :class:`SlowMaintenance` — stall the join engine's maintenance entry
  points (install as ``engine.fault_hook``), the "one hot write fans
  out forever" failure.
* :func:`kill_compute` — kill a cluster compute node mid-workload (the
  node vanishes from the network, in-flight messages and all; routing
  rehashes onto survivors, which demand-recompute from base data).
* :func:`kill_node_process` — the real-process variant: ``kill -9``
  one node of a :class:`~repro.distrib.procs.ProcCluster`; failover
  promotes a replica without losing acknowledged base writes.
* :func:`net_latency` / :func:`net_drop_filter` — degrade the simulated
  network under a workload.
* :func:`crash_server` — hard-kill a durable server: drop everything
  after the WAL's last fsync, exactly the power-loss contract of the
  configured fsync policy.
* :func:`torn_wal_tail` — tear the WAL mid-record (a crash inside a
  ``write()``): recovery must truncate to the last intact record, not
  refuse to start.
* :class:`CdcLag` (alias ``cdc_lag``) — delay or defer change-feed
  batches on a write-around pump (install as ``pump.chaos``): deferred
  batches redeliver, so the test asserts the at-least-once feed still
  converges to the fault-free oracle's digest.

Every injector counts what it injected, so tests can assert the fault
actually fired and wasn't silently bypassed.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, List, Optional


class RpcChaos:
    """Delay and/or drop encoded RPC response frames.

    Installed as ``RpcServer.chaos``; the server passes each pipelined
    chunk's responses through :meth:`apply` before writing them.

    * ``delay_s`` — sleep this long (wall clock, on the event loop)
      before releasing each chunk's responses.
    * ``drop_every`` — drop every Nth response frame (1-indexed over
      the injector's lifetime); 0 disables dropping.  The dropped
      request's client future simply never resolves — the client-side
      symptom of a lost frame.
    """

    def __init__(self, delay_s: float = 0.0, drop_every: int = 0) -> None:
        if delay_s < 0:
            raise ValueError("delay_s must be >= 0")
        if drop_every < 0:
            raise ValueError("drop_every must be >= 0")
        self.delay_s = delay_s
        self.drop_every = drop_every
        self.frames_seen = 0
        self.frames_dropped = 0
        self.chunks_delayed = 0

    async def apply(self, responses: List[bytes]) -> List[bytes]:
        if self.delay_s and responses:
            self.chunks_delayed += 1
            await asyncio.sleep(self.delay_s)
        if not self.drop_every:
            self.frames_seen += len(responses)
            return responses
        kept: List[bytes] = []
        for frame in responses:
            self.frames_seen += 1
            if self.frames_seen % self.drop_every == 0:
                self.frames_dropped += 1
                continue
            kept.append(frame)
        return kept


class SlowMaintenance:
    """Stall every maintenance pass by ``seconds`` (wall clock).

    Installed as ``JoinEngine.fault_hook``; the engine calls it at each
    notification entry point (per-write and batched).  ``limit`` bounds
    how many stalls fire, so a test can inject a burst of slowness and
    then let the system recover.
    """

    def __init__(self, seconds: float, limit: Optional[int] = None) -> None:
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        self.seconds = seconds
        self.limit = limit
        self.stalls = 0

    def __call__(self, site: str) -> None:
        if self.limit is not None and self.stalls >= self.limit:
            return
        self.stalls += 1
        if self.seconds:
            time.sleep(self.seconds)

    def install(self, engine) -> "SlowMaintenance":
        engine.fault_hook = self
        return self

    @staticmethod
    def uninstall(engine) -> None:
        engine.fault_hook = None


class CdcLag:
    """Delay and defer change-feed batches on a live CDC pump.

    Installed as ``CdcPump.chaos``; the pump passes each fetched batch
    through the injector before applying it.

    * ``defer_every`` — defer every Nth batch (1-indexed over the
      injector's lifetime); the pump does not ack a deferred batch, so
      the feed *redelivers the same records* on the next step — the
      shape of a lost-then-retried feed delivery.  0 disables.
    * ``delay_s`` — sleep this long (wall clock) before releasing each
      non-deferred batch, inflating measured propagation lag.
    * ``limit`` — stop injecting after this many faults, so a workload
      can suffer a burst and then converge.

    Because the pump's apply path is idempotent (it derives the actual
    old/new from the cache's own store), redelivery converges to the
    same state a fault-free run produces — the chaos convergence test
    asserts exactly that, by digest.
    """

    def __init__(
        self,
        defer_every: int = 0,
        delay_s: float = 0.0,
        limit: Optional[int] = None,
    ) -> None:
        if defer_every < 0:
            raise ValueError("defer_every must be >= 0")
        if delay_s < 0:
            raise ValueError("delay_s must be >= 0")
        self.defer_every = defer_every
        self.delay_s = delay_s
        self.limit = limit
        self.batches_seen = 0
        self.batches_deferred = 0
        self.delays = 0

    def __call__(self, records: List) -> Optional[List]:
        self.batches_seen = seen = self.batches_seen + 1
        faults = self.batches_deferred + self.delays
        if self.limit is not None and faults >= self.limit:
            return records
        if self.defer_every and seen % self.defer_every == 0:
            self.batches_deferred += 1
            return None
        if self.delay_s:
            self.delays += 1
            time.sleep(self.delay_s)
        return records

    def install(self, pump) -> "CdcLag":
        pump.chaos = self
        return self

    @staticmethod
    def uninstall(pump) -> None:
        pump.chaos = None


#: Importable alias matching the injector registry naming used by the
#: chaos tests (``chaos.cdc_lag``).
cdc_lag = CdcLag


def kill_compute(cluster, affinity: Optional[str] = None, name: Optional[str] = None):
    """Kill one compute node mid-workload; returns the killed node.

    Pick the victim by ``affinity`` (the node currently serving that
    user — the worst case for that user's timeline), by ``name``, or
    let the injector take the first live compute node.
    """
    if name is not None:
        return cluster.kill_node(name)
    if affinity is not None:
        return cluster.kill_node(cluster.compute_node_for(affinity))
    live = cluster.live_compute_nodes
    if not live:
        raise RuntimeError("no live compute nodes to kill")
    return cluster.kill_node(live[0])


def kill_node_process(proc_cluster, name: Optional[str] = None) -> str:
    """``kill -9`` one node of a real multi-process cluster.

    The process (or, in-process, its endpoints) dies with no WAL
    flush and no goodbye: peers see connections drop mid-flight and
    clients get transport errors until :meth:`ProcCluster.fail_over`
    promotes a replica.  Returns the victim's name.
    """
    live = proc_cluster.live_names()
    if name is None:
        if not live:
            raise RuntimeError("no live nodes to kill")
        name = live[0]
    elif name not in live:
        raise RuntimeError(f"node {name!r} is not alive")
    proc_cluster.kill(name, hard=True)
    return name


def crash_server(server) -> int:
    """Hard-kill a durable server (``kill -9`` + power loss).

    Unsynced WAL bytes are discarded — pessimistically assuming they
    never reached the platter — and the server object is left unusable,
    like the process it models.  Returns the number of WAL bytes lost
    (0 under ``fsync="always"``); recovery is opening a fresh server on
    the same ``data_dir``.
    """
    if server.persist is None:
        raise ValueError("crash_server needs a server with a data_dir")
    lost = server.persist.wal.simulate_crash()
    server.persist.segments.close()
    factory = server.store._map_factory
    if getattr(factory, "spill_store", None) is not None:
        factory.close()
    return lost


def torn_wal_tail(data_dir: str, rng) -> int:
    """Truncate the WAL inside its last record (a crash mid-``write``).

    Cuts at a random byte strictly inside the final record, so the tail
    fails the length or CRC check on replay.  Returns bytes torn off;
    0 means the WAL had no records to tear (no fault injected — callers
    should assert against this).
    """
    import os

    from .persist.wal import WAL_HEADER_SIZE, scan_wal

    path = os.path.join(data_dir, "pequod.wal")
    records, good_offset, _ = scan_wal(path)
    if not records:
        return 0
    size = os.path.getsize(path)
    # Find the offset of the last record by re-scanning all but it.
    prev_end = good_offset
    with open(path, "rb") as fh:
        data = fh.read(good_offset)
    # Walk record frames to the start of the final one.
    import struct as _struct

    offset = 0
    last_start = 0
    while offset < len(data):
        (length,) = _struct.unpack_from(">I", data, offset)
        last_start = offset
        offset += WAL_HEADER_SIZE + length
    cut = rng.randrange(last_start + 1, size)
    with open(path, "r+b") as fh:
        fh.truncate(cut)
    return size - cut


def net_latency(net, extra_seconds: float) -> None:
    """Add ``extra_seconds`` to every subsequent simulated delivery."""
    if extra_seconds < 0:
        raise ValueError("extra_seconds must be >= 0")
    net.extra_latency = extra_seconds


def net_drop_filter(
    net, should_drop: Callable[[str, str, str, object], bool]
) -> None:
    """Install a message drop predicate ``(src, dst, kind, body)`` on a
    :class:`~repro.net.simnet.SimNetwork` (None clears)."""
    net.loss_filter = should_drop
