"""Ordered key-value store substrate (paper §4).

Red-black trees, interval trees, table/subtable layering with a hash
index, value sharing, and LRU tracking — the data structures the Pequod
join engine is built on.
"""

from .batch import BatchOp, WriteBatch, as_ops
from .interval_tree import IntervalEntry, IntervalTree
from .keys import (
    SEP,
    SEP_SUCCESSOR,
    clamp_range,
    join_key,
    key_successor,
    prefix_upper_bound,
    range_contains,
    ranges_overlap,
    split_key,
    subtable_prefix,
    table_of,
    table_range,
)
from .lru import LRUEntry, LRUList
from .omap import DEFAULT_MAP_IMPL, MAP_IMPLS, resolve_map_impl
from .rbtree import Node, RBTree
from .sortedarray import SortedArrayMap
from .stats import StoreStats
from .store import OrderedStore
from .table import SUBTABLE_OVERHEAD, PutHandle, Table
from .values import (
    NODE_OVERHEAD,
    POINTER_SIZE,
    SharedValue,
    Value,
    acquire_value,
    materialize,
    release_value,
)

__all__ = [
    "SEP",
    "SEP_SUCCESSOR",
    "SUBTABLE_OVERHEAD",
    "NODE_OVERHEAD",
    "POINTER_SIZE",
    "DEFAULT_MAP_IMPL",
    "MAP_IMPLS",
    "BatchOp",
    "IntervalEntry",
    "IntervalTree",
    "LRUEntry",
    "LRUList",
    "Node",
    "OrderedStore",
    "PutHandle",
    "RBTree",
    "SharedValue",
    "SortedArrayMap",
    "StoreStats",
    "Table",
    "Value",
    "WriteBatch",
    "acquire_value",
    "as_ops",
    "clamp_range",
    "join_key",
    "key_successor",
    "materialize",
    "prefix_upper_bound",
    "range_contains",
    "ranges_overlap",
    "release_value",
    "resolve_map_impl",
    "split_key",
    "subtable_prefix",
    "table_of",
    "table_range",
]
