"""Interval tree over half-open key ranges.

Pequod stores *updaters* — incremental-maintenance records attached to
source key ranges — in an interval tree so that every store modification
can find the updaters covering the modified key (paper §3.2: "Many
updaters can apply to a given key, so we store updaters in an interval
tree").

This implementation augments the red-black tree of ``rbtree.py``:
entries are keyed by ``(lo, hi)`` and each node carries the maximum
``hi`` in its subtree, giving O(log n + k) stabbing queries.

Intervals are half-open ``[lo, hi)``.  Multiple payloads may share one
interval; they are kept in a list on a single node, which is exactly the
paper's *updater combining* optimization (§3.2) — a new updater for the
same source range appends to the existing record instead of growing the
tree.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from .rbtree import Node, RBTree


class IntervalEntry:
    """One interval and its payloads.

    ``lo``/``hi`` delimit the half-open range; ``payloads`` is the list
    of attached records (updaters, in Pequod's usage).
    """

    __slots__ = ("lo", "hi", "payloads", "payload_index")

    def __init__(self, lo: str, hi: str) -> None:
        self.lo = lo
        self.hi = hi
        self.payloads: List[Any] = []
        #: Optional identity-key → payload map maintained by callers
        #: that need duplicate detection (updater combining installs a
        #: dict here so dedup is O(1) instead of a payload scan).
        #: Cleared on removal; owners rebuild lazily.
        self.payload_index: Optional[dict] = None

    def contains(self, point: str) -> bool:
        return self.lo <= point < self.hi

    def overlaps(self, lo: str, hi: str) -> bool:
        return self.lo < hi and lo < self.hi

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<IntervalEntry [{self.lo!r}, {self.hi!r}) x{len(self.payloads)}>"


def _augment_max_hi(node: Node) -> None:
    entry: IntervalEntry = node.value
    best = entry.hi
    left_aug = node.left.aug
    if left_aug is not None and left_aug > best:
        best = left_aug
    right_aug = node.right.aug
    if right_aug is not None and right_aug > best:
        best = right_aug
    node.aug = best


class IntervalTree:
    """Interval tree mapping half-open ranges ``[lo, hi)`` to payloads."""

    __slots__ = ("_tree",)

    def __init__(self) -> None:
        self._tree = RBTree(augment=_augment_max_hi)

    def __len__(self) -> int:
        """Number of distinct intervals (not payloads)."""
        return len(self._tree)

    def __bool__(self) -> bool:
        return bool(self._tree)

    def payload_count(self) -> int:
        return sum(len(node.value.payloads) for node in self._tree.nodes())

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, lo: str, hi: str, payload: Any) -> IntervalEntry:
        """Attach ``payload`` to the interval ``[lo, hi)``.

        Raises ValueError on empty intervals.  If the interval is
        already present the payload is combined onto the existing entry.
        """
        if not lo < hi:
            raise ValueError(f"empty interval [{lo!r}, {hi!r})")
        node = self._tree.find_node((lo, hi))
        if node is None:
            entry = IntervalEntry(lo, hi)
            node = self._tree.insert((lo, hi), entry)
            self._tree.augment_path(node)
        else:
            entry = node.value
        entry.payloads.append(payload)
        return entry

    def discard(self, lo: str, hi: str, payload: Any) -> bool:
        """Remove one occurrence of ``payload`` from ``[lo, hi)``.

        Returns True if found.  Empty entries are pruned from the tree.
        """
        node = self._tree.find_node((lo, hi))
        if node is None:
            return False
        entry: IntervalEntry = node.value
        try:
            entry.payloads.remove(payload)
        except ValueError:
            return False
        entry.payload_index = None  # stale; owner rebuilds lazily
        if not entry.payloads:
            self._tree.remove_node(node)
        return True

    def remove_interval(self, lo: str, hi: str) -> Optional[IntervalEntry]:
        """Remove the whole entry for ``[lo, hi)`` and return it."""
        node = self._tree.find_node((lo, hi))
        if node is None:
            return None
        entry = node.value
        self._tree.remove_node(node)
        return entry

    def clear(self) -> None:
        self._tree.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def find_entry(self, lo: str, hi: str) -> Optional[IntervalEntry]:
        node = self._tree.find_node((lo, hi))
        return node.value if node is not None else None

    def stab(self, point: str) -> List[IntervalEntry]:
        """All entries whose interval contains ``point``, in key order."""
        out: List[IntervalEntry] = []
        self._stab(self._tree.root, point, out)
        return out

    def overlapping(self, lo: str, hi: str) -> List[IntervalEntry]:
        """All entries overlapping the half-open range ``[lo, hi)``."""
        out: List[IntervalEntry] = []
        if lo < hi:
            self._overlap(self._tree.root, lo, hi, out)
        return out

    def entries(self) -> Iterator[IntervalEntry]:
        """All entries in (lo, hi) order."""
        for node in self._tree.nodes():
            yield node.value

    def intervals(self) -> Iterator[Tuple[str, str]]:
        for node in self._tree.nodes():
            yield node.key

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _stab(self, node: Node, point: str, out: List[IntervalEntry]) -> None:
        nil = self._tree.nil
        if node is nil or node.aug is None or node.aug <= point:
            # No interval below this node extends past ``point``.
            return
        self._stab(node.left, point, out)
        entry: IntervalEntry = node.value
        if entry.lo <= point:
            if point < entry.hi:
                out.append(entry)
            self._stab(node.right, point, out)
        # else: right subtree keys all have lo >= entry.lo > point.

    def _overlap(self, node: Node, lo: str, hi: str, out: List[IntervalEntry]) -> None:
        nil = self._tree.nil
        if node is nil or node.aug is None or node.aug <= lo:
            return
        self._overlap(node.left, lo, hi, out)
        entry: IntervalEntry = node.value
        if entry.lo < hi:
            if lo < entry.hi:
                out.append(entry)
            self._overlap(node.right, lo, hi, out)
        # else: right subtree keys all have lo >= entry.lo >= hi.

    def check_invariants(self) -> None:
        """Verify red-black and max-hi augmentation invariants."""
        self._tree.check_invariants()

        def walk(node: Node) -> Optional[str]:
            if node is self._tree.nil:
                return None
            best = node.value.hi
            for child_best in (walk(node.left), walk(node.right)):
                if child_best is not None and child_best > best:
                    best = child_best
            assert node.aug == best, f"augmentation stale at {node!r}"
            return best

        walk(self._tree.root)
