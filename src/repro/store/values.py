"""Value representation and the value-sharing optimization.

Pequod's ``copy`` operator often installs the same value under many
output keys — a popular user's tweet is copied into every follower's
timeline.  Paper §4.3 describes *value sharing*: output ranges share one
underlying value buffer, reducing memory by ~1.14x on the Twip
benchmark.

In Python all strings are references already, so sharing is about
*accounting*, and about keeping the semantics honest: a
:class:`SharedValue` is charged its payload size once, and each
additional holder is charged only a pointer.  The store acquires and
releases shared values as pairs are inserted and removed so the memory
model tracks live references exactly.
"""

from __future__ import annotations

from typing import Union

#: Bytes charged per stored key-value node (tree node, pointers, color).
NODE_OVERHEAD = 64
#: Bytes charged for one extra reference to a shared value.
POINTER_SIZE = 8


class SharedValue:
    """A reference-counted value buffer shared by many output keys."""

    __slots__ = ("payload", "refs")

    def __init__(self, payload: str) -> None:
        self.payload = payload
        self.refs = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SharedValue {self.payload!r} refs={self.refs}>"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SharedValue):
            return self.payload == other.payload
        if isinstance(other, str):
            return self.payload == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.payload)


#: A stored value: a plain string, a SharedValue, or any object exposing
#: ``payload`` (client-visible string) and ``memory_size()`` — aggregate
#: accumulators in ``repro.core.operators`` use the latter form.
Value = Union[str, SharedValue, object]


def materialize(value: Value) -> str:
    """The client-visible string for a stored value."""
    if isinstance(value, str):
        return value
    return value.payload  # type: ignore[union-attr]


def acquire_value(value: Value) -> int:
    """Account for storing one reference to ``value``; returns bytes charged."""
    if isinstance(value, str):
        return len(value)
    if isinstance(value, SharedValue):
        value.refs += 1
        if value.refs == 1:
            return len(value.payload) + POINTER_SIZE
        return POINTER_SIZE
    return value.memory_size()  # type: ignore[union-attr]


def release_value(value: Value) -> int:
    """Account for dropping one reference to ``value``; returns bytes freed."""
    if isinstance(value, str):
        return len(value)
    if isinstance(value, SharedValue):
        value.refs -= 1
        if value.refs == 0:
            return len(value.payload) + POINTER_SIZE
        return POINTER_SIZE
    return value.memory_size()  # type: ignore[union-attr]
