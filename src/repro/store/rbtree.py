"""Red-black binary search tree.

Pequod stores key-value pairs and bookkeeping structures (updaters, join
status ranges) in red-black trees (paper §4).  This module implements a
classical red-black tree with parent pointers and a NIL sentinel, plus an
optional *augmentation* hook so the interval tree (``interval_tree.py``)
can maintain subtree metadata through rotations.

The tree maps ordered keys to values.  Keys may be any totally ordered
Python values; Pequod uses strings.  Supported operations:

* ``insert(key, value)`` / ``remove(key)`` / ``get(key)``
* ordered iteration over ``[lo, hi)`` ranges
* ``ceiling`` / ``floor`` / ``higher`` / ``lower`` navigation
* O(1) access to a node's successor via ``next_node`` (used by Pequod's
  output hints, §4.2)

All mutating operations run in O(log n).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

RED = True
BLACK = False


class Node:
    """A tree node.  Application code treats nodes as opaque handles
    except for reading ``key`` and ``value``."""

    __slots__ = ("key", "value", "left", "right", "parent", "color", "aug")

    def __init__(self, key: Any, value: Any) -> None:
        self.key = key
        self.value = value
        self.left: "Node" = None  # type: ignore[assignment]
        self.right: "Node" = None  # type: ignore[assignment]
        self.parent: "Node" = None  # type: ignore[assignment]
        self.color: bool = RED
        self.aug: Any = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        color = "R" if self.color == RED else "B"
        return f"<Node {self.key!r}={self.value!r} {color}>"


class RBTree:
    """A red-black tree mapping ordered keys to values.

    ``augment`` is an optional callable invoked as ``augment(node)``
    whenever ``node``'s subtree may have changed; it should recompute
    ``node.aug`` from ``node`` and its children.  ``node.left`` and
    ``node.right`` may be the NIL sentinel, which is exposed as
    ``tree.nil`` and always has ``aug is None``.
    """

    __slots__ = ("nil", "root", "_size", "_augment")

    def __init__(self, augment: Optional[Callable[["Node"], None]] = None) -> None:
        self.nil = Node(None, None)
        self.nil.color = BLACK
        self.nil.left = self.nil.right = self.nil.parent = self.nil
        self.root = self.nil
        self._size = 0
        self._augment = augment

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, key: Any) -> bool:
        return self.find_node(key) is not None

    def node_valid(self, node: Node) -> bool:
        """Is this handle still attached?  Removed nodes are detached by
        self-linking (see :meth:`remove_node`), so validity is a pure
        structural check — no reference counting."""
        return node.parent is not node and node.left is not node

    def find_node(self, key: Any) -> Optional[Node]:
        """Return the node with exactly ``key``, or None."""
        node = self.root
        while node is not self.nil:
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                return node
        return None

    def get(self, key: Any, default: Any = None) -> Any:
        node = self.find_node(key)
        return node.value if node is not None else default

    def min_node(self) -> Optional[Node]:
        if self.root is self.nil:
            return None
        return self._subtree_min(self.root)

    def max_node(self) -> Optional[Node]:
        if self.root is self.nil:
            return None
        node = self.root
        while node.right is not self.nil:
            node = node.right
        return node

    def ceiling_node(self, key: Any) -> Optional[Node]:
        """Smallest node with ``node.key >= key``."""
        node, best = self.root, None
        while node is not self.nil:
            if node.key < key:
                node = node.right
            else:
                best = node
                node = node.left
        return best

    def higher_node(self, key: Any) -> Optional[Node]:
        """Smallest node with ``node.key > key``."""
        node, best = self.root, None
        while node is not self.nil:
            if key < node.key:
                best = node
                node = node.left
            else:
                node = node.right
        return best

    def floor_node(self, key: Any) -> Optional[Node]:
        """Largest node with ``node.key <= key``."""
        node, best = self.root, None
        while node is not self.nil:
            if key < node.key:
                node = node.left
            else:
                best = node
                node = node.right
        return best

    def lower_node(self, key: Any) -> Optional[Node]:
        """Largest node with ``node.key < key``."""
        node, best = self.root, None
        while node is not self.nil:
            if node.key < key:
                best = node
                node = node.right
            else:
                node = node.left
        return best

    def next_node(self, node: Node) -> Optional[Node]:
        """In-order successor of ``node`` (O(1) amortized)."""
        if node.right is not self.nil:
            return self._subtree_min(node.right)
        parent = node.parent
        while parent is not self.nil and node is parent.right:
            node, parent = parent, parent.parent
        return parent if parent is not self.nil else None

    def prev_node(self, node: Node) -> Optional[Node]:
        """In-order predecessor of ``node``."""
        if node.left is not self.nil:
            child = node.left
            while child.right is not self.nil:
                child = child.right
            return child
        parent = node.parent
        while parent is not self.nil and node is parent.left:
            node, parent = parent, parent.parent
        return parent if parent is not self.nil else None

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def nodes(self, lo: Any = None, hi: Any = None) -> Iterator[Node]:
        """Yield nodes with ``lo <= key < hi`` in key order.

        ``lo`` of None means the minimum; ``hi`` of None means unbounded.
        The tree must not be structurally modified while iterating.
        """
        node = self.min_node() if lo is None else self.ceiling_node(lo)
        while node is not None and (hi is None or node.key < hi):
            yield node
            node = self.next_node(node)

    def items(self, lo: Any = None, hi: Any = None) -> Iterator[tuple]:
        for node in self.nodes(lo, hi):
            yield node.key, node.value

    def keys(self, lo: Any = None, hi: Any = None) -> Iterator[Any]:
        for node in self.nodes(lo, hi):
            yield node.key

    def __iter__(self) -> Iterator[Any]:
        return self.keys()

    def count_range(self, lo: Any, hi: Any) -> int:
        """Number of keys in ``[lo, hi)`` (O(k + log n))."""
        return sum(1 for _ in self.nodes(lo, hi))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> Node:
        """Insert ``key`` -> ``value``; overwrite the value if present.

        Returns the node holding the pair.
        """
        parent, node = self.nil, self.root
        while node is not self.nil:
            parent = node
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                node.value = value
                return node
        fresh = Node(key, value)
        fresh.left = fresh.right = self.nil
        fresh.parent = parent
        if parent is self.nil:
            self.root = fresh
        elif key < parent.key:
            parent.left = fresh
        else:
            parent.right = fresh
        self._size += 1
        self._augment_path(fresh)
        self._insert_fixup(fresh)
        return fresh

    def insert_node_after(self, node: Node, key: Any, value: Any) -> Node:
        """Insert ``key`` knowing it belongs immediately after ``node``.

        This is the O(1)-search path backing Pequod's *output hints*
        (§4.2): when a join repeatedly appends just past its previous
        output we can skip the root-to-leaf descent.  The caller must
        guarantee ``node.key < key`` and that no existing key lies
        between them; this is verified cheaply against the successor.
        """
        succ = self.next_node(node)
        if not (node.key < key) or (succ is not None and not (key < succ.key)):
            if succ is not None and not (key < succ.key) and not (succ.key < key):
                succ.value = value
                return succ
            return self.insert(key, value)  # hint was stale; fall back
        fresh = Node(key, value)
        fresh.left = fresh.right = self.nil
        if node.right is self.nil:
            node.right = fresh
            fresh.parent = node
        else:
            # successor is the leftmost node of node.right and has no left child
            assert succ is not None and succ.left is self.nil
            succ.left = fresh
            fresh.parent = succ
        self._size += 1
        self._augment_path(fresh)
        self._insert_fixup(fresh)
        return fresh

    def remove(self, key: Any) -> bool:
        """Remove ``key``.  Returns True if it was present."""
        node = self.find_node(key)
        if node is None:
            return False
        self.remove_node(node)
        return True

    def remove_node(self, z: Node) -> None:
        """Remove a node previously obtained from this tree."""
        nil = self.nil
        y = z
        y_original_color = y.color
        if z.left is nil:
            x = z.right
            self._transplant(z, z.right)
            fix_from = x.parent
        elif z.right is nil:
            x = z.left
            self._transplant(z, z.left)
            fix_from = x.parent
        else:
            y = self._subtree_min(z.right)
            y_original_color = y.color
            x = y.right
            if y.parent is z:
                x.parent = y
                fix_from = y
            else:
                fix_from = y.parent
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        self._size -= 1
        self._augment_path(fix_from)
        if y_original_color == BLACK:
            self._remove_fixup(x)
        z.left = z.right = z.parent = z  # detach; makes reuse bugs loud

    def clear(self) -> None:
        self.root = self.nil
        self._size = 0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _subtree_min(self, node: Node) -> Node:
        while node.left is not self.nil:
            node = node.left
        return node

    def _transplant(self, u: Node, v: Node) -> None:
        if u.parent is self.nil:
            self.root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        v.parent = u.parent

    def _rotate_left(self, x: Node) -> None:
        y = x.right
        x.right = y.left
        if y.left is not self.nil:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is self.nil:
            self.root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y
        if self._augment is not None:
            self._augment(x)
            self._augment(y)

    def _rotate_right(self, x: Node) -> None:
        y = x.left
        x.left = y.right
        if y.right is not self.nil:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is self.nil:
            self.root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y
        if self._augment is not None:
            self._augment(x)
            self._augment(y)

    def _augment_path(self, node: Node) -> None:
        if self._augment is None:
            return
        while node is not self.nil:
            self._augment(node)
            node = node.parent

    def augment_path(self, node: Node) -> None:
        """Public hook: recompute augmentation from ``node`` to the root.

        Used when a node's own augmentation inputs change in place (for
        example, an interval tree widening an interval's endpoint).
        """
        self._augment_path(node)

    def _insert_fixup(self, z: Node) -> None:
        while z.parent.color == RED:
            if z.parent is z.parent.parent.left:
                y = z.parent.parent.right
                if y.color == RED:
                    z.parent.color = BLACK
                    y.color = BLACK
                    z.parent.parent.color = RED
                    z = z.parent.parent
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_right(z.parent.parent)
            else:
                y = z.parent.parent.left
                if y.color == RED:
                    z.parent.color = BLACK
                    y.color = BLACK
                    z.parent.parent.color = RED
                    z = z.parent.parent
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_left(z.parent.parent)
        self.root.color = BLACK

    def _remove_fixup(self, x: Node) -> None:
        while x is not self.root and x.color == BLACK:
            if x is x.parent.left:
                w = x.parent.right
                if w.color == RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_left(x.parent)
                    w = x.parent.right
                if w.left.color == BLACK and w.right.color == BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.right.color == BLACK:
                        w.left.color = BLACK
                        w.color = RED
                        self._rotate_right(w)
                        w = x.parent.right
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.right.color = BLACK
                    self._rotate_left(x.parent)
                    x = self.root
            else:
                w = x.parent.left
                if w.color == RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_right(x.parent)
                    w = x.parent.left
                if w.right.color == BLACK and w.left.color == BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.left.color == BLACK:
                        w.right.color = BLACK
                        w.color = RED
                        self._rotate_left(w)
                        w = x.parent.left
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.left.color = BLACK
                    self._rotate_right(x.parent)
                    x = self.root
        x.color = BLACK

    # ------------------------------------------------------------------
    # Validation (tests only)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError if red-black invariants are violated."""
        assert self.root.color == BLACK, "root must be black"
        assert self.nil.color == BLACK, "sentinel must be black"

        def walk(node: Node, lo: Any, hi: Any) -> int:
            if node is self.nil:
                return 1
            assert lo is None or lo < node.key, "BST order violated (lo)"
            assert hi is None or node.key < hi, "BST order violated (hi)"
            if node.color == RED:
                assert node.left.color == BLACK and node.right.color == BLACK, (
                    "red node with red child"
                )
            lb = walk(node.left, lo, node.key)
            rb = walk(node.right, node.key, hi)
            assert lb == rb, "black-height mismatch"
            return lb + (1 if node.color == BLACK else 0)

        walk(self.root, None, None)
        assert sum(1 for _ in self.nodes()) == self._size, "size mismatch"
