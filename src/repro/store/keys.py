"""Key-space helpers for Pequod's ordered string keys.

Pequod keys are strings composed of ``|``-separated segments, for
example ``t|ann|0100|bob``.  Lexicographic byte order over such keys is
what gives range scans their meaning (paper §2.1): the segment order in
a key is semantically significant, and the upper bound of the range of
keys beginning with ``t|ann|`` is written ``t|ann}`` — ``}`` is the
character after ``|`` (the paper's "unsightly string", footnote 1).
"""

from __future__ import annotations

from typing import List, Tuple

SEP = "|"
#: The character immediately after the separator; closes prefix ranges.
SEP_SUCCESSOR = chr(ord(SEP) + 1)  # "}"

_MAX_CODEPOINT = 0x10FFFF


def split_key(key: str) -> List[str]:
    """Split a key into its ``|``-separated segments."""
    return key.split(SEP)


def join_key(segments: List[str]) -> str:
    """Join segments back into a key."""
    return SEP.join(segments)


def key_successor(key: str) -> str:
    """The smallest string strictly greater than ``key``.

    Used to convert an inclusive bound into an exclusive one.
    """
    return key + "\x00"


def prefix_upper_bound(prefix: str) -> str:
    """The smallest string greater than every string starting with ``prefix``.

    ``[prefix, prefix_upper_bound(prefix))`` contains exactly the keys
    that begin with ``prefix``.  For a prefix ending in the separator
    this produces the paper's ``}`` form: ``t|ann|`` -> ``t|ann}``.
    """
    if not prefix:
        raise ValueError("cannot bound the empty prefix")
    chars = list(prefix)
    for i in range(len(chars) - 1, -1, -1):
        cp = ord(chars[i])
        if cp < _MAX_CODEPOINT:
            return "".join(chars[:i]) + chr(cp + 1)
    raise ValueError(f"prefix {prefix!r} has no upper bound")


def table_range(table: str) -> Tuple[str, str]:
    """The half-open key range owned by table ``table`` (e.g. ``"t"``).

    Includes the bare table key itself and everything under ``table|``.
    """
    return table, prefix_upper_bound(table + SEP)


def table_of(key: str) -> str:
    """The table name of ``key`` — its first segment."""
    idx = key.find(SEP)
    return key if idx < 0 else key[:idx]


def subtable_prefix(key: str, depth: int) -> str:
    """The first ``depth`` segments of ``key``, joined.

    This identifies a key's subtable when a table is configured with a
    subtable boundary at ``depth`` segments (paper §4.1).  Keys with
    fewer than ``depth`` segments map to their full value.
    """
    if depth <= 0:
        raise ValueError("subtable depth must be positive")
    pos = -1
    for _ in range(depth):
        pos = key.find(SEP, pos + 1)
        if pos < 0:
            return key
    return key[:pos]


def ranges_overlap(a_lo: str, a_hi: str, b_lo: str, b_hi: str) -> bool:
    """Do half-open ranges ``[a_lo, a_hi)`` and ``[b_lo, b_hi)`` intersect?"""
    return a_lo < b_hi and b_lo < a_hi


def range_contains(outer_lo: str, outer_hi: str, inner_lo: str, inner_hi: str) -> bool:
    """Is ``[inner_lo, inner_hi)`` fully inside ``[outer_lo, outer_hi)``?"""
    return outer_lo <= inner_lo and inner_hi <= outer_hi


def clamp_range(lo: str, hi: str, bound_lo: str, bound_hi: str) -> Tuple[str, str]:
    """Intersect ``[lo, hi)`` with ``[bound_lo, bound_hi)``.

    Returns an empty range (``lo >= hi``) when they do not overlap.
    """
    return max(lo, bound_lo), min(hi, bound_hi)
