"""The ordered key-value store: Pequod's client-visible data plane.

``OrderedStore`` presents one lexicographically ordered key space with
``get`` / ``put`` / ``remove`` / ``scan`` (paper §2) while internally
routing keys to per-table trees and subtables (§4.1).  The join engine
in ``repro.core`` layers cache-join execution and incremental
maintenance on top of this store; baselines and the backing database
reuse it as well.

Values handed to clients are always plain strings; internally the store
may hold :class:`~repro.store.values.SharedValue` buffers installed by
the value-sharing optimization (§4.3).
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Tuple

from .batch import PUT, WriteBatch, as_ops
from .keys import SEP, SEP_SUCCESSOR, prefix_upper_bound, subtable_prefix, table_of
from .omap import resolve_map_impl
from .rbtree import Node
from .stats import StoreStats
from .table import PutHandle, Table
from .values import Value, materialize

#: A net store change: ``(key, old_value, new_value)``; a None old
#: value means the key was absent before, a None new value means it was
#: removed.  Kind classification is left to callers (the engine derives
#: insert/update/remove from the None-ness of the two values).
Change = Tuple[str, Optional[str], Optional[str]]


class OrderedStore:
    """A single ordered string key space backed by tables and subtables.

    ``subtable_config`` maps table names to subtable depths; it may also
    be amended later with :meth:`configure_subtables` (before the table
    first receives data).  All tables share one :class:`StoreStats`.

    ``map_impl`` picks the ordered map backing every data tree: an
    :data:`~repro.store.omap.MAP_IMPLS` name, a factory callable, or
    None for the default (see ``omap.DEFAULT_MAP_IMPL``).

    ``legacy_read_path`` routes :meth:`scan` through the pre-overhaul
    per-item loop; it exists so ``repro bench read_path`` can measure
    the overhaul against a faithful baseline, not for production use.
    """

    __slots__ = (
        "stats",
        "tables",
        "map_impl",
        "legacy_read_path",
        "_map_factory",
        "_subtable_config",
    )

    def __init__(
        self,
        subtable_config: Optional[Dict[str, int]] = None,
        stats: Optional[StoreStats] = None,
        map_impl=None,
    ) -> None:
        self.stats = stats if stats is not None else StoreStats()
        self.tables: Dict[str, Table] = {}
        self.map_impl = map_impl
        self.legacy_read_path = False
        self._map_factory = resolve_map_impl(map_impl)
        self._subtable_config: Dict[str, int] = dict(subtable_config or {})

    # ------------------------------------------------------------------
    # Table management
    # ------------------------------------------------------------------
    def configure_subtables(self, table_name: str, depth: int) -> None:
        """Mark a subtable boundary ``depth`` segments into ``table_name``.

        This is the developer marking natural key boundaries (§4.1).
        Must be configured before the table holds data.
        """
        existing = self.tables.get(table_name)
        if existing is not None:
            if len(existing) > 0 and existing.subtable_depth != depth:
                raise ValueError(
                    f"table {table_name!r} already holds data; cannot change "
                    "its subtable boundary"
                )
            if existing.subtable_depth != depth:
                del self.tables[table_name]
        self._subtable_config[table_name] = depth

    def table(self, name: str) -> Table:
        """The table called ``name``, created on first use."""
        tbl = self.tables.get(name)
        if tbl is None:
            depth = self._subtable_config.get(name, 0)
            tbl = Table(
                name,
                subtable_depth=depth,
                stats=self.stats,
                map_factory=self._map_factory,
            )
            self.tables[name] = tbl
        return tbl

    def table_for_key(self, key: str) -> Table:
        return self.table(table_of(key))

    def existing_table_for_key(self, key: str) -> Optional[Table]:
        return self.tables.get(table_of(key))

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def put(
        self, key: str, value: Value, hint: Optional[PutHandle] = None
    ) -> Tuple[PutHandle, Optional[Value]]:
        """Insert or overwrite; returns ``(handle, old_value_or_None)``."""
        if not key:
            raise ValueError("keys must be non-empty")
        return self.table_for_key(key).put(key, value, hint=hint)

    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        """The client-visible value for ``key`` (a string), or ``default``."""
        tbl = self.existing_table_for_key(key)
        if tbl is None:
            return default
        node = tbl.get_node(key)
        if node is None:
            return default
        return materialize(node.value)

    def get_raw(self, key: str) -> Optional[Value]:
        """The stored value object (possibly shared), or None."""
        tbl = self.existing_table_for_key(key)
        if tbl is None:
            return None
        node = tbl.get_node(key)
        return node.value if node is not None else None

    def remove(self, key: str) -> bool:
        tbl = self.existing_table_for_key(key)
        if tbl is None:
            return False
        return tbl.remove(key) is not None

    def write_batch(self) -> WriteBatch:
        """A :class:`WriteBatch` bound to this store (raw application)."""
        return WriteBatch(sink=self)

    def apply_batch(self, batch) -> List[Change]:
        """Apply a coalesced batch of writes; returns the net changes.

        ``batch`` is a :class:`WriteBatch` or anything ``as_ops``
        accepts.  Operations apply in key order so consecutive keys in
        the same table chain insertion hints (§4.2's O(1) appends work
        batch-wide, not just per join range).  Removes of absent keys
        produce no change entry, matching :meth:`remove`'s behavior.
        """
        ops = as_ops(batch)
        if not ops:
            return []
        self.stats.add("batch_applies")
        self.stats.add("batched_ops", len(ops))
        changes: List[Change] = []
        hints: Dict[str, PutHandle] = {}
        for op in ops:
            if op.kind == PUT:
                table = self.table_for_key(op.key)
                value = op.value if op.value is not None else ""
                # Chain hints per subtable: sorted keys land adjacent
                # runs in one subtable tree, so each run after the
                # first insert is O(1) (§4.2).  Keys in other subtables
                # get no hint — a cross-subtable hint can never hit.
                if table.subtable_depth:
                    hint_id = subtable_prefix(op.key, table.subtable_depth)
                else:
                    hint_id = table.name
                handle, old = table.put(op.key, value, hint=hints.get(hint_id))
                hints[hint_id] = handle
                changes.append(
                    (op.key, materialize(old) if old is not None else None, value)
                )
            else:
                table = self.existing_table_for_key(op.key)
                old = table.remove(op.key) if table is not None else None
                if old is not None:
                    changes.append((op.key, materialize(old), None))
        return changes

    def _single_table_span(self, lo: str, hi: str) -> Optional[str]:
        """The one table name whose span contains ``[lo, hi)``, or None.

        ``[lo, hi)`` lies inside a single table exactly when it sits
        inside ``[name|, name})`` — tables sharing a character prefix
        (``tx`` vs ``t``) sort strictly outside that window, so common
        prefix scans and gets skip the all-tables sweep entirely.
        """
        name = table_of(lo)
        if lo >= name + SEP and hi <= name + SEP_SUCCESSOR:
            return name
        return None

    def _relevant_tables(self, lo: str, hi: str) -> List[Table]:
        """Tables whose spans intersect ``[lo, hi)``, in name order."""
        name = self._single_table_span(lo, hi)
        if name is not None:
            tbl = self.tables.get(name)
            return [tbl] if tbl is not None else []
        return [
            self.tables[name]
            for name in sorted(self.tables)
            if name < hi and prefix_upper_bound(name) > lo
        ]

    def scan_nodes(self, lo: str, hi: str) -> Iterator[Node]:
        """Stored nodes with ``lo <= key < hi``, across table boundaries."""
        if not lo < hi:
            return iter(())
        # Inlined single-table fast path (see _single_table_span): the
        # common prefix scan never sweeps the table dictionary.
        sep_at = lo.find(SEP)
        if sep_at >= 0:
            name = lo[:sep_at]
            if hi <= name + SEP_SUCCESSOR:
                tbl = self.tables.get(name)
                return tbl.scan_nodes(lo, hi) if tbl is not None else iter(())
        relevant = self._relevant_tables(lo, hi)
        if len(relevant) == 1:
            return relevant[0].scan_nodes(lo, hi)
        if relevant:
            streams = [tbl.scan_nodes(lo, hi) for tbl in relevant]
            return heapq.merge(*streams, key=lambda n: n.key)
        return iter(())

    def iter_nodes(self, lo: str, hi: str) -> Iterator[Node]:
        """As :meth:`scan_nodes` without charging work counters — the
        internal path for counting, recounts, and eviction scoring."""
        if not lo < hi:
            return iter(())
        relevant = self._relevant_tables(lo, hi)
        if len(relevant) == 1:
            return relevant[0].iter_nodes(lo, hi)
        if relevant:
            streams = [tbl.iter_nodes(lo, hi) for tbl in relevant]
            return heapq.merge(*streams, key=lambda n: n.key)
        return iter(())

    def scan(self, lo: str, hi: str) -> List[Tuple[str, str]]:
        """Client-visible ordered list of pairs with ``lo <= key < hi``."""
        if self.legacy_read_path:
            return self._scan_legacy(lo, hi)
        nodes = self.scan_nodes(lo, hi)
        if type(nodes) is not list:  # the sorted array returns snapshots
            nodes = list(nodes)
        if nodes:
            self.stats.counters["scanned_items"] += len(nodes)
        # Inline the common plain-string case; materialize() handles
        # shared values and aggregate accumulators.
        return [
            (node.key, value)
            if type(value := node.value) is str
            else (node.key, materialize(value))
            for node in nodes
        ]

    def _scan_legacy(self, lo: str, hi: str) -> List[Tuple[str, str]]:
        """The pre-overhaul per-item read loop, preserved so ``repro
        bench read_path`` measures against a faithful baseline.  Charges
        the same counter totals as :meth:`scan`."""
        out = []
        for node in self.scan_nodes(lo, hi):
            self.stats.add("scanned_items")
            out.append((node.key, materialize(node.value)))
        return out

    def scan_iter(self, lo: str, hi: str) -> Iterator[Tuple[str, str]]:
        for node in self.scan_nodes(lo, hi):
            self.stats.add("scanned_items")
            yield node.key, materialize(node.value)

    def count(self, lo: str, hi: str) -> int:
        """Size of ``[lo, hi)`` without the cost of scanning it.

        Counting charges no scan counters (the pre-overhaul version
        re-walked ``scan_nodes``, billing a second scan per ``count``)
        and uses positional arithmetic where the map supports it.
        """
        if not lo < hi:
            return 0
        return sum(
            tbl.count_range(lo, hi) for tbl in self._relevant_tables(lo, hi)
        )

    # ------------------------------------------------------------------
    # Value spill (disk-backed maps only)
    # ------------------------------------------------------------------
    def supports_spill(self) -> bool:
        """Can this store move values to disk?  True when the map
        factory carries a shared spill tier (the ``"disk"`` impl)."""
        return getattr(self._map_factory, "spill_store", None) is not None

    def spill_range(self, lo: str, hi: str) -> int:
        """Spill cold values in ``[lo, hi)`` to disk; returns resident
        bytes freed (0 when the store is not disk-backed)."""
        if not lo < hi:
            return 0
        freed = 0
        for tbl in self._relevant_tables(lo, hi):
            freed += tbl.spill_range(lo, hi)
        if freed:
            self.stats.add("spill_freed_bytes", freed)
        return freed

    def spill_all(self) -> int:
        """Spill every table's cold values; returns bytes freed."""
        freed = 0
        for name in sorted(self.tables):
            tbl = self.tables[name]
            freed += tbl.spill_range(name + SEP, name + SEP_SUCCESSOR)
        if freed:
            self.stats.add("spill_freed_bytes", freed)
        return freed

    def remove_range(self, lo: str, hi: str) -> int:
        """Remove every key in ``[lo, hi)``; returns how many were removed.

        Used by eviction (§2.5) when a computed or cached range is
        dropped wholesale.
        """
        doomed = [node.key for node in self.iter_nodes(lo, hi)]
        for key in doomed:
            tbl = self.existing_table_for_key(key)
            if tbl is not None:
                tbl.remove(key)
        return len(doomed)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(tbl) for tbl in self.tables.values())

    def memory_bytes(self) -> int:
        return sum(tbl.memory_bytes for tbl in self.tables.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OrderedStore tables={len(self.tables)} keys={len(self)}>"
