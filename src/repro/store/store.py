"""The ordered key-value store: Pequod's client-visible data plane.

``OrderedStore`` presents one lexicographically ordered key space with
``get`` / ``put`` / ``remove`` / ``scan`` (paper §2) while internally
routing keys to per-table trees and subtables (§4.1).  The join engine
in ``repro.core`` layers cache-join execution and incremental
maintenance on top of this store; baselines and the backing database
reuse it as well.

Values handed to clients are always plain strings; internally the store
may hold :class:`~repro.store.values.SharedValue` buffers installed by
the value-sharing optimization (§4.3).
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Tuple

from .keys import prefix_upper_bound, table_of
from .rbtree import Node
from .stats import StoreStats
from .table import PutHandle, Table
from .values import Value, materialize


class OrderedStore:
    """A single ordered string key space backed by tables and subtables.

    ``subtable_config`` maps table names to subtable depths; it may also
    be amended later with :meth:`configure_subtables` (before the table
    first receives data).  All tables share one :class:`StoreStats`.
    """

    __slots__ = ("stats", "tables", "_subtable_config")

    def __init__(
        self,
        subtable_config: Optional[Dict[str, int]] = None,
        stats: Optional[StoreStats] = None,
    ) -> None:
        self.stats = stats if stats is not None else StoreStats()
        self.tables: Dict[str, Table] = {}
        self._subtable_config: Dict[str, int] = dict(subtable_config or {})

    # ------------------------------------------------------------------
    # Table management
    # ------------------------------------------------------------------
    def configure_subtables(self, table_name: str, depth: int) -> None:
        """Mark a subtable boundary ``depth`` segments into ``table_name``.

        This is the developer marking natural key boundaries (§4.1).
        Must be configured before the table holds data.
        """
        existing = self.tables.get(table_name)
        if existing is not None:
            if len(existing) > 0 and existing.subtable_depth != depth:
                raise ValueError(
                    f"table {table_name!r} already holds data; cannot change "
                    "its subtable boundary"
                )
            if existing.subtable_depth != depth:
                del self.tables[table_name]
        self._subtable_config[table_name] = depth

    def table(self, name: str) -> Table:
        """The table called ``name``, created on first use."""
        tbl = self.tables.get(name)
        if tbl is None:
            depth = self._subtable_config.get(name, 0)
            tbl = Table(name, subtable_depth=depth, stats=self.stats)
            self.tables[name] = tbl
        return tbl

    def table_for_key(self, key: str) -> Table:
        return self.table(table_of(key))

    def existing_table_for_key(self, key: str) -> Optional[Table]:
        return self.tables.get(table_of(key))

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def put(
        self, key: str, value: Value, hint: Optional[PutHandle] = None
    ) -> Tuple[PutHandle, Optional[Value]]:
        """Insert or overwrite; returns ``(handle, old_value_or_None)``."""
        if not key:
            raise ValueError("keys must be non-empty")
        return self.table_for_key(key).put(key, value, hint=hint)

    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        """The client-visible value for ``key`` (a string), or ``default``."""
        tbl = self.existing_table_for_key(key)
        if tbl is None:
            return default
        node = tbl.get_node(key)
        if node is None:
            return default
        return materialize(node.value)

    def get_raw(self, key: str) -> Optional[Value]:
        """The stored value object (possibly shared), or None."""
        tbl = self.existing_table_for_key(key)
        if tbl is None:
            return None
        node = tbl.get_node(key)
        return node.value if node is not None else None

    def remove(self, key: str) -> bool:
        tbl = self.existing_table_for_key(key)
        if tbl is None:
            return False
        return tbl.remove(key) is not None

    def scan_nodes(self, lo: str, hi: str) -> Iterator[Node]:
        """Stored nodes with ``lo <= key < hi``, across table boundaries."""
        if not lo < hi:
            return
        relevant: List[Table] = []
        for name in sorted(self.tables):
            if name < hi and prefix_upper_bound(name) > lo:
                relevant.append(self.tables[name])
        if len(relevant) == 1:
            yield from relevant[0].scan_nodes(lo, hi)
        elif relevant:
            streams = [tbl.scan_nodes(lo, hi) for tbl in relevant]
            yield from heapq.merge(*streams, key=lambda n: n.key)

    def scan(self, lo: str, hi: str) -> List[Tuple[str, str]]:
        """Client-visible ordered list of pairs with ``lo <= key < hi``."""
        out = []
        for node in self.scan_nodes(lo, hi):
            self.stats.add("scanned_items")
            out.append((node.key, materialize(node.value)))
        return out

    def scan_iter(self, lo: str, hi: str) -> Iterator[Tuple[str, str]]:
        for node in self.scan_nodes(lo, hi):
            self.stats.add("scanned_items")
            yield node.key, materialize(node.value)

    def count(self, lo: str, hi: str) -> int:
        return sum(1 for _ in self.scan_nodes(lo, hi))

    def remove_range(self, lo: str, hi: str) -> int:
        """Remove every key in ``[lo, hi)``; returns how many were removed.

        Used by eviction (§2.5) when a computed or cached range is
        dropped wholesale.
        """
        doomed = [node.key for node in self.scan_nodes(lo, hi)]
        for key in doomed:
            tbl = self.existing_table_for_key(key)
            if tbl is not None:
                tbl.remove(key)
        return len(doomed)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(tbl) for tbl in self.tables.values())

    def memory_bytes(self) -> int:
        return sum(tbl.memory_bytes for tbl in self.tables.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OrderedStore tables={len(self.tables)} keys={len(self)}>"
