"""Operation counters shared by the store and the join engine.

The paper's evaluation is driven by how much *work* each design does:
tree descents (O(log n)) versus hash jumps (O(1)), RPC counts, bytes
copied, updaters run.  ``StoreStats`` collects those raw counts; the
benchmark cost model (``repro.bench.costmodel``) turns them into modeled
runtimes.  Keeping the counters here, next to the data structures that
increment them, keeps the accounting honest — each counter is bumped at
the exact point the work happens.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterator, Tuple


class StoreStats:
    """A bag of named counters with a few convenience accessors."""

    __slots__ = ("counters",)

    def __init__(self) -> None:
        self.counters: Dict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] += amount

    def tree_descent(self, size: int) -> None:
        """Charge one root-to-leaf walk of a tree holding ``size`` keys."""
        self.counters["tree_descents"] += 1
        self.counters["tree_descent_cost"] += math.log2(size + 2)

    def hash_jump(self) -> None:
        """Charge one O(1) hash-index lookup (subtable jump, §4.1)."""
        self.counters["hash_jumps"] += 1

    def get(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def __getitem__(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def items(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self.counters.items()))

    def snapshot(self) -> Dict[str, float]:
        return dict(self.counters)

    def reset(self) -> None:
        self.counters.clear()

    def merged_with(self, other: "StoreStats") -> "StoreStats":
        out = StoreStats()
        for name, val in self.counters.items():
            out.counters[name] += val
        for name, val in other.counters.items():
            out.counters[name] += val
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self.counters.items()))
        return f"<StoreStats {inner}>"
