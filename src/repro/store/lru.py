"""Least-recently-used tracking for evictable ranges.

Paper §2.5: "an overloaded Pequod server simply evicts the least
recently used data ranges."  The units of eviction are whole ranges —
computed join outputs, remote subscribed copies, and cached base data —
not individual keys.  ``LRUList`` is an intrusive doubly-linked list:
O(1) touch, O(1) pop of the coldest entry.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional


class LRUEntry:
    """One evictable unit.  ``payload`` identifies what to evict."""

    __slots__ = ("payload", "prev", "next", "pinned", "_list")

    def __init__(self, payload: Any) -> None:
        self.payload = payload
        self.prev: Optional["LRUEntry"] = None
        self.next: Optional["LRUEntry"] = None
        self.pinned = False
        self._list: Optional["LRUList"] = None

    def linked(self) -> bool:
        return self._list is not None


class LRUList:
    """Doubly-linked LRU list; head is coldest, tail is hottest."""

    __slots__ = ("_head", "_tail", "_size")

    def __init__(self) -> None:
        self._head: Optional[LRUEntry] = None
        self._tail: Optional[LRUEntry] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def add(self, payload: Any) -> LRUEntry:
        """Insert a new hottest entry."""
        entry = LRUEntry(payload)
        self._link_tail(entry)
        return entry

    def touch(self, entry: LRUEntry) -> None:
        """Mark ``entry`` most recently used."""
        if entry._list is not self:
            raise ValueError("entry does not belong to this list")
        if entry is self._tail:
            return
        self._unlink(entry)
        self._link_tail(entry)

    def remove(self, entry: LRUEntry) -> None:
        if entry._list is self:
            self._unlink(entry)

    def coldest(self) -> Optional[LRUEntry]:
        """The least recently used unpinned entry (without removing it)."""
        entry = self._head
        while entry is not None and entry.pinned:
            entry = entry.next
        return entry

    def pop_coldest(self) -> Optional[LRUEntry]:
        entry = self.coldest()
        if entry is not None:
            self._unlink(entry)
        return entry

    def __iter__(self) -> Iterator[LRUEntry]:
        """Entries from coldest to hottest."""
        entry = self._head
        while entry is not None:
            nxt = entry.next  # allow removal during iteration
            yield entry
            entry = nxt

    # ------------------------------------------------------------------
    def _link_tail(self, entry: LRUEntry) -> None:
        entry._list = self
        entry.prev = self._tail
        entry.next = None
        if self._tail is not None:
            self._tail.next = entry
        self._tail = entry
        if self._head is None:
            self._head = entry
        self._size += 1

    def _unlink(self, entry: LRUEntry) -> None:
        if entry.prev is not None:
            entry.prev.next = entry.next
        else:
            self._head = entry.next
        if entry.next is not None:
            entry.next.prev = entry.prev
        else:
            self._tail = entry.prev
        entry.prev = entry.next = None
        entry._list = None
        self._size -= 1
