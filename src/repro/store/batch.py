"""Write batches: grouped, coalesced store modifications.

High write rates are where incremental maintenance earns its keep, and
the per-write overheads — one interval-tree stab, one status lookup per
updater, one eviction check — are exactly what a heavy write path must
amortize.  :class:`WriteBatch` buffers a group of puts and removes,
coalescing writes to the same key down to their net effect (last write
wins), so that application of the batch touches each key once and the
maintenance layer above (``repro.core.executor``) can resolve each
affected updater range once per batch instead of once per write.

Coalescing is safe because the engine's maintenance is driven by the
net ``(old_value, new_value)`` transition of each key, not by the
intermediate states: a put overwritten by a later put in the same batch
produces one notification carrying the pre-batch old value and the
final new value, which drives copy outputs, aggregates (via
``replace``), and invalidations to the same end state the write
sequence would have (see the batching notes in ``executor.py``).

A batch is just a buffer; it applies through whatever *sink* it is
bound to — a :class:`~repro.store.store.OrderedStore` (raw storage, no
maintenance), a :class:`~repro.core.server.PequodServer` (full
maintenance), a distributed node, or an RPC client.  Sinks expose
``apply_batch``; ``WriteBatch`` works as a context manager that applies
itself on clean exit::

    with server.write_batch() as batch:
        batch.put("p|bob|0100", "hello")
        batch.put("p|bob|0101", "again")
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

PUT = "put"
REMOVE = "remove"


class BatchOp:
    """One coalesced operation: a put (``value`` set) or a remove."""

    __slots__ = ("kind", "key", "value")

    def __init__(self, kind: str, key: str, value: Optional[str]) -> None:
        self.kind = kind
        self.key = key
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == PUT:
            return f"<put {self.key!r}={self.value!r}>"
        return f"<remove {self.key!r}>"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BatchOp)
            and self.kind == other.kind
            and self.key == other.key
            and self.value == other.value
        )


class WriteBatch:
    """A buffered group of writes with per-key coalescing.

    ``put``/``remove`` record the *net* operation per key: a later
    write to the same key replaces the earlier one in place, and
    ``coalesced_ops`` counts how many buffered writes were absorbed
    this way.  ``ops()`` returns the surviving operations in key order
    (sorted application lets tables chain insertion hints and lets the
    wire encoding share key prefixes).
    """

    __slots__ = ("_ops", "_sink", "coalesced_ops")

    def __init__(self, sink: Optional[Any] = None) -> None:
        self._ops: Dict[str, BatchOp] = {}
        self._sink = sink
        self.coalesced_ops = 0

    # ------------------------------------------------------------------
    # Buffering
    # ------------------------------------------------------------------
    def put(self, key: str, value: str) -> "WriteBatch":
        if not key:
            raise ValueError("keys must be non-empty")
        if not isinstance(value, str):
            raise TypeError("Pequod values are strings")
        if key in self._ops:
            self.coalesced_ops += 1
        self._ops[key] = BatchOp(PUT, key, value)
        return self

    def remove(self, key: str) -> "WriteBatch":
        if not key:
            raise ValueError("keys must be non-empty")
        if key in self._ops:
            self.coalesced_ops += 1
        self._ops[key] = BatchOp(REMOVE, key, None)
        return self

    def update(self, pairs: Iterable[Tuple[str, str]]) -> "WriteBatch":
        for key, value in pairs:
            self.put(key, value)
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ops)

    def __bool__(self) -> bool:
        return bool(self._ops)

    def ops(self) -> List[BatchOp]:
        """The coalesced operations in key order."""
        return [self._ops[key] for key in sorted(self._ops)]

    def clear(self) -> None:
        self._ops.clear()
        self.coalesced_ops = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WriteBatch ops={len(self._ops)} coalesced={self.coalesced_ops}>"

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply(self) -> int:
        """Apply through the bound sink; returns applied change count."""
        if self._sink is None:
            raise RuntimeError("WriteBatch has no sink; use sink.apply_batch()")
        return self._sink.apply_batch(self)

    def __enter__(self) -> "WriteBatch":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and self._ops:
            self.apply()


def as_ops(batch: Any) -> List[BatchOp]:
    """Normalize a WriteBatch or an iterable of operations to BatchOps.

    Accepts a :class:`WriteBatch`, an iterable of :class:`BatchOp`, or
    an iterable of ``(key, value_or_None)`` pairs (None meaning
    remove).  Iterables are coalesced through a fresh batch so every
    application path shares one semantics.
    """
    if isinstance(batch, WriteBatch):
        return batch.ops()
    staged = WriteBatch()
    for item in batch:
        if isinstance(item, BatchOp):
            if item.kind == PUT:
                staged.put(item.key, item.value or "")
            else:
                staged.remove(item.key)
        else:
            key, value = item
            if value is None:
                staged.remove(key)
            else:
                staged.put(key, value)
    return staged.ops()
