"""The disk-backed ordered map: value spill over segment files.

``DiskMap`` keeps the Pequod store's *structure* — keys, node handles,
subtable trees, status ranges — fully resident, and moves cold *values*
to immutable sorted segment files (:mod:`repro.persist.segment`).  This
is the anti-caching split: the navigational state the join engine needs
on every operation stays in RAM, while the payload bytes, which dominate
memory on timeline workloads, can live on disk until someone reads them.

The mechanism rides the existing value protocol
(:mod:`repro.store.values`): a spilled node's value becomes a
:class:`SpilledValue`, an object whose ``payload`` property faults the
bytes back in from the segment stack and whose ``memory_size()`` is the
stub's resident cost.  ``materialize`` and the accounting helpers already
handle payload-bearing objects, so scans, gets, and overwrites need no
changes — a spilled value is just a value that is slow the first time.

All maps created by one :class:`DiskMapFactory` share a single
:class:`SpillStore` (one segment stack, one bloom-filtered read path),
so spilling a computed range writes one segment no matter how many
subtable trees it straddles.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import weakref
from typing import List, Optional, Tuple

from .sortedarray import SortedArrayMap

#: Resident bytes charged for a spilled value stub (object header plus
#: the store/key references).  Only values longer than this are worth
#: spilling.
SPILLED_VALUE_SIZE = 32


class SpilledValue:
    """A value whose payload lives in the spill segment stack.

    Reading ``payload`` faults the bytes in from disk (bloom-guarded,
    newest segment first).  The stub compares equal to whatever its
    payload compares equal to, so join maintenance that diffs old
    against new values keeps working on spilled ranges.
    """

    __slots__ = ("store", "key")

    def __init__(self, store: "SpillStore", key: str) -> None:
        self.store = store
        self.key = key

    @property
    def payload(self) -> str:
        return self.store.read_value(self.key)

    def memory_size(self) -> int:
        return SPILLED_VALUE_SIZE

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SpilledValue):
            return self.payload == other.payload
        if isinstance(other, str):
            return self.payload == other
        payload = getattr(other, "payload", None)
        if payload is not None:
            return self.payload == payload
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SpilledValue {self.key!r}>"


class SpillStore:
    """The shared on-disk value tier behind every map of one factory."""

    def __init__(self, directory: str, stats=None, compact_threshold: int = 8):
        from ..persist.manager import SegmentStack

        self.stats = stats
        self.stack = SegmentStack(
            directory,
            stats=stats,
            compact_threshold=compact_threshold,
            label="spill",
        )

    def spill(self, pairs: List[Tuple[str, str]]) -> None:
        """Write ``pairs`` (key-sorted) as the newest spill segment."""
        self.stack.push(pairs)
        self.stack.maybe_compact()
        if self.stats is not None:
            self.stats.add("persist_spilled_values", len(pairs))

    def read_value(self, key: str) -> str:
        if self.stats is not None:
            self.stats.add("persist_spill_reads")
        present, value = self.stack.read(key)
        if not present or value is None:
            raise KeyError(f"spilled value for {key!r} not found on disk")
        return value

    def segment_count(self) -> int:
        return len(self.stack)

    def file_bytes(self) -> int:
        return self.stack.file_bytes()

    def close(self) -> None:
        self.stack.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SpillStore segments={len(self.stack)}>"


class DiskMap(SortedArrayMap):
    """A :class:`SortedArrayMap` whose values may spill to segments.

    Structurally identical to its parent — the difference is the
    ``spill`` handle, which :meth:`repro.store.table.Table.spill_range`
    discovers on the tree to move cold values out of RAM.
    """

    __slots__ = ("spill",)

    def __init__(self, spill: Optional[SpillStore] = None) -> None:
        super().__init__()
        self.spill = spill

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DiskMap keys={len(self)} blocks={len(self._maxes)}>"


class DiskMapFactory:
    """Factory registered as the ``"disk"`` ordered-map implementation.

    Every map it creates shares one :class:`SpillStore`.  With no
    ``directory`` the spill tier lives in a private temp dir, removed
    when the factory is garbage collected — durability for spilled
    values is the WAL/checkpoint tier's job, not the spill tier's
    (spilled bytes are re-derivable from the durable client writes).
    """

    def __init__(self, directory: Optional[str] = None, stats=None) -> None:
        if directory is None:
            directory = tempfile.mkdtemp(prefix="pequod-spill-")
            self._cleanup = weakref.finalize(
                self, shutil.rmtree, directory, ignore_errors=True
            )
        else:
            os.makedirs(directory, exist_ok=True)
            self._cleanup = None
        self.directory = directory
        self.spill_store = SpillStore(directory, stats=stats)

    def __call__(self) -> DiskMap:
        return DiskMap(self.spill_store)

    def close(self) -> None:
        self.spill_store.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DiskMapFactory {self.directory!r}>"
