"""Tables and subtables: the layered ordered store of paper §4.1.

Pequod's logical store is a single ordered key space, but internally it
is split by first key segment into *tables* (``p|``, ``s|``, ``t|``)
and, when the developer marks a boundary, further into *subtables*
(e.g. one per timeline).  A hash index over subtable prefixes lets
operations that fall entirely inside one subtable jump to it in O(1)
rather than descending a single giant tree — the paper measured 1.55x
faster Twip at a 1.17x memory cost for the extra bookkeeping.

Subtables are identified by the first ``depth`` key segments plus the
trailing separator (``t|ann|``), which makes each subtable's key span a
contiguous interval.  Keys with exactly ``depth`` segments (no trailing
separator — rare in practice) live in a *residual* tree; ordered scans
merge the residual stream with the subtable streams so the table still
behaves as one ordered map even across boundaries.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .interval_tree import IntervalTree
from .keys import SEP, prefix_upper_bound, subtable_prefix
from .rbtree import Node, RBTree
from .stats import StoreStats
from .values import NODE_OVERHEAD, Value, acquire_value, release_value

#: Bytes charged for each subtable's bookkeeping (tree object, hash
#: entry, order-tree node).  This is what buys the O(1) jumps.
SUBTABLE_OVERHEAD = 200


class PutHandle:
    """Handle returned by :meth:`Table.put`, usable as an insertion hint.

    Pequod's output hints (§4.2) remember where a join last wrote so the
    next write can skip the tree descent.  A handle is only valid for
    the tree it came from; staleness is detected structurally (removed
    nodes are self-parented) so no reference counting is needed.
    """

    __slots__ = ("tree", "node")

    def __init__(self, tree: RBTree, node: Node) -> None:
        self.tree = tree
        self.node = node

    def is_valid(self) -> bool:
        node = self.node
        return node.parent is not node and node.left is not node

    def key(self) -> Any:
        return self.node.key


class Table:
    """One logical table: a name, its pairs, and its bookkeeping.

    ``subtable_depth`` of 0 stores everything in one tree; a positive
    depth splits keys by their first ``depth`` segments.  The table also
    hosts the updater interval tree used by incremental maintenance —
    the paper attaches bookkeeping to tables so unrelated ranges don't
    slow each other down.
    """

    __slots__ = (
        "name",
        "subtable_depth",
        "stats",
        "_tree",
        "_subtables",
        "_suborder",
        "_residual",
        "updaters",
        "key_count",
        "memory_bytes",
    )

    def __init__(
        self,
        name: str,
        subtable_depth: int = 0,
        stats: Optional[StoreStats] = None,
    ) -> None:
        self.name = name
        self.subtable_depth = subtable_depth
        self.stats = stats if stats is not None else StoreStats()
        self._tree: Optional[RBTree] = RBTree() if subtable_depth == 0 else None
        self._subtables: Dict[str, RBTree] = {}
        self._suborder: RBTree = RBTree()  # subtable id -> RBTree
        self._residual: Optional[RBTree] = None
        self.updaters = IntervalTree()
        self.key_count = 0
        self.memory_bytes = 0

    # ------------------------------------------------------------------
    # Tree selection
    # ------------------------------------------------------------------
    def _subtable_id(self, key: str) -> Optional[str]:
        """The subtable id for ``key``, or None for residual keys."""
        prefix = subtable_prefix(key, self.subtable_depth)
        if len(prefix) == len(key):
            return None  # key has exactly `depth` segments
        return prefix + SEP

    def _locate_tree(self, key: str, create: bool) -> Optional[RBTree]:
        """The tree ``key`` belongs to, without charging stats."""
        if self._tree is not None:
            return self._tree
        sub_id = self._subtable_id(key)
        if sub_id is None:
            if self._residual is None and create:
                self._residual = RBTree()
                self.memory_bytes += SUBTABLE_OVERHEAD
            return self._residual
        tree = self._subtables.get(sub_id)
        if tree is None and create:
            tree = RBTree()
            self._subtables[sub_id] = tree
            self._suborder.insert(sub_id, tree)
            self.memory_bytes += SUBTABLE_OVERHEAD
        return tree

    def _tree_for(self, key: str, create: bool) -> Optional[RBTree]:
        """As :meth:`_locate_tree`, charging hash-jump and descent costs."""
        tree = self._locate_tree(key, create)
        if self._tree is None:
            self.stats.hash_jump()
        if tree is not None:
            self.stats.tree_descent(len(tree))
        return tree

    def _drop_if_empty(self, tree: RBTree, key: str) -> None:
        if self._tree is not None or len(tree) > 0:
            return
        if tree is self._residual:
            self._residual = None
            self.memory_bytes -= SUBTABLE_OVERHEAD
            return
        sub_id = self._subtable_id(key)
        if sub_id is not None and self._subtables.get(sub_id) is tree:
            del self._subtables[sub_id]
            self._suborder.remove(sub_id)
            self.memory_bytes -= SUBTABLE_OVERHEAD

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def put(
        self,
        key: str,
        value: Value,
        hint: Optional[PutHandle] = None,
    ) -> Tuple[PutHandle, Optional[Value]]:
        """Insert or overwrite ``key``.

        Returns ``(handle, old_value)`` where ``old_value`` is None for
        fresh inserts.  ``hint`` (from a previous put into this table)
        lets overwrites of the hinted key and appends immediately after
        it run without a tree descent (§4.2).
        """
        self.stats.add("puts")
        if hint is not None and hint.is_valid():
            result = self._put_with_hint(key, value, hint)
            if result is not None:
                return result
        tree = self._tree_for(key, create=True)
        assert tree is not None
        existing = tree.find_node(key)
        if existing is not None:
            old = existing.value
            existing.value = value
            return self._account_overwrite(tree, existing, old, value)
        node = tree.insert(key, value)
        return self._account_insert(tree, node, key, value)

    def _put_with_hint(
        self, key: str, value: Value, hint: PutHandle
    ) -> Optional[Tuple[PutHandle, Optional[Value]]]:
        """Attempt the O(1) hinted put; None means fall back to full put."""
        tree = hint.tree
        if tree is not self._locate_tree(key, create=False):
            return None
        hinted = hint.node
        if not (hinted.key < key) and not (key < hinted.key):
            # Overwrite of the hinted key itself (common for aggregates).
            self.stats.add("hint_hits")
            old = hinted.value
            hinted.value = value
            return self._account_overwrite(tree, hinted, old, value)
        if not (hinted.key < key):
            return None
        succ = tree.next_node(hinted)
        if succ is None or key < succ.key:
            # Fresh key immediately after the hint (timeline append).
            self.stats.add("hint_hits")
            node = tree.insert_node_after(hinted, key, value)
            return self._account_insert(tree, node, key, value)
        if not (succ.key < key):
            # succ.key == key: overwrite the successor in place.
            self.stats.add("hint_hits")
            old = succ.value
            succ.value = value
            return self._account_overwrite(tree, succ, old, value)
        return None

    def _account_insert(
        self, tree: RBTree, node: Node, key: str, value: Value
    ) -> Tuple[PutHandle, Optional[Value]]:
        self.key_count += 1
        self.memory_bytes += len(key) + NODE_OVERHEAD + acquire_value(value)
        return PutHandle(tree, node), None

    def _account_overwrite(
        self, tree: RBTree, node: Node, old: Value, value: Value
    ) -> Tuple[PutHandle, Optional[Value]]:
        self.memory_bytes -= release_value(old)
        self.memory_bytes += acquire_value(value)
        return PutHandle(tree, node), old

    def replace_node_value(self, node: Node, value: Value) -> Value:
        """Swap a stored node's value in place, keeping accounting exact.

        Used by the value-sharing optimization (§4.3) to promote a
        plain string into a :class:`SharedValue` without a tree
        descent.  Returns the previous value.
        """
        old = node.value
        self.memory_bytes -= release_value(old)
        self.memory_bytes += acquire_value(value)
        node.value = value
        return old

    def remove(self, key: str) -> Optional[Value]:
        """Remove ``key``; returns the removed value or None."""
        self.stats.add("removes")
        tree = self._tree_for(key, create=False)
        if tree is None:
            return None
        node = tree.find_node(key)
        if node is None:
            return None
        value = node.value
        tree.remove_node(node)
        self.key_count -= 1
        self.memory_bytes -= len(key) + NODE_OVERHEAD + release_value(value)
        self._drop_if_empty(tree, key)
        return value

    def clear(self) -> None:
        self._tree = RBTree() if self.subtable_depth == 0 else None
        self._subtables.clear()
        self._suborder.clear()
        self._residual = None
        self.updaters.clear()
        self.key_count = 0
        self.memory_bytes = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get_node(self, key: str) -> Optional[Node]:
        self.stats.add("gets")
        tree = self._tree_for(key, create=False)
        if tree is None:
            return None
        return tree.find_node(key)

    def get(self, key: str, default: Any = None) -> Any:
        node = self.get_node(key)
        return node.value if node is not None else default

    def scan_nodes(self, lo: str, hi: str) -> Iterator[Node]:
        """Yield stored nodes with ``lo <= key < hi`` in key order."""
        if not lo < hi:
            return
        self.stats.add("scans")
        if self._tree is not None:
            self.stats.tree_descent(len(self._tree))
            yield from self._tree.nodes(lo, hi)
            return
        streams: List[Iterator[Node]] = []
        if self._residual is not None:
            streams.append(self._residual.nodes(lo, hi))
        sub_id = self._subtable_id(lo) if lo else None
        if sub_id is not None and hi <= prefix_upper_bound(sub_id):
            # Fast path: the whole scan lies inside one subtable (§4.1).
            tree = self._subtables.get(sub_id)
            self.stats.hash_jump()
            if tree is not None:
                self.stats.tree_descent(len(tree))
                streams.append(tree.nodes(lo, hi))
        else:
            # Cross-boundary scan: walk subtable ids overlapping [lo, hi).
            start = self._suborder.floor_node(lo)
            node = start if start is not None else self._suborder.min_node()
            while node is not None and node.key < hi:
                if prefix_upper_bound(node.key) > lo:
                    tree = node.value
                    self.stats.tree_descent(len(tree))
                    streams.append(tree.nodes(lo, hi))
                node = self._suborder.next_node(node)
        if len(streams) == 1:
            yield from streams[0]
        elif streams:
            yield from heapq.merge(*streams, key=lambda n: n.key)

    def scan(self, lo: str, hi: str) -> Iterator[Tuple[str, Value]]:
        for node in self.scan_nodes(lo, hi):
            self.stats.add("scanned_items")
            yield node.key, node.value

    def count_range(self, lo: str, hi: str) -> int:
        return sum(1 for _ in self.scan_nodes(lo, hi))

    def first_node(self, lo: str, hi: str) -> Optional[Node]:
        for node in self.scan_nodes(lo, hi):
            return node
        return None

    def __len__(self) -> int:
        return self.key_count

    def subtable_count(self) -> int:
        return len(self._subtables) + (1 if self._residual is not None else 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Table {self.name!r} keys={self.key_count} "
            f"subtables={self.subtable_count()} mem={self.memory_bytes}>"
        )
