"""Tables and subtables: the layered ordered store of paper §4.1.

Pequod's logical store is a single ordered key space, but internally it
is split by first key segment into *tables* (``p|``, ``s|``, ``t|``)
and, when the developer marks a boundary, further into *subtables*
(e.g. one per timeline).  A hash index over subtable prefixes lets
operations that fall entirely inside one subtable jump to it in O(1)
rather than descending a single giant tree — the paper measured 1.55x
faster Twip at a 1.17x memory cost for the extra bookkeeping.

Subtables are identified by the first ``depth`` key segments plus the
trailing separator (``t|ann|``), which makes each subtable's key span a
contiguous interval.  Keys with exactly ``depth`` segments (no trailing
separator — rare in practice) live in a *residual* tree; ordered scans
merge the residual stream with the subtable streams so the table still
behaves as one ordered map even across boundaries.
"""

from __future__ import annotations

import heapq
from math import log2
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .interval_tree import IntervalTree
from .keys import SEP, prefix_upper_bound, subtable_prefix
from .omap import resolve_map_impl
from .rbtree import Node
from .stats import StoreStats
from .values import NODE_OVERHEAD, Value, acquire_value, release_value

#: Bytes charged for each subtable's bookkeeping (tree object, hash
#: entry, order-tree node).  This is what buys the O(1) jumps.
SUBTABLE_OVERHEAD = 200


class PutHandle:
    """Handle returned by :meth:`Table.put`, usable as an insertion hint.

    Pequod's output hints (§4.2) remember where a join last wrote so the
    next write can skip the tree descent.  A handle is only valid for
    the ordered map it came from; staleness detection is delegated to
    the map (``node_valid``) so any :mod:`~repro.store.omap`
    implementation can back a table.
    """

    __slots__ = ("tree", "node")

    def __init__(self, tree, node) -> None:
        self.tree = tree
        self.node = node

    def is_valid(self) -> bool:
        return self.tree.node_valid(self.node)

    def key(self) -> Any:
        return self.node.key


class Table:
    """One logical table: a name, its pairs, and its bookkeeping.

    ``subtable_depth`` of 0 stores everything in one tree; a positive
    depth splits keys by their first ``depth`` segments.  The table also
    hosts the updater interval tree used by incremental maintenance —
    the paper attaches bookkeeping to tables so unrelated ranges don't
    slow each other down.
    """

    __slots__ = (
        "name",
        "subtable_depth",
        "stats",
        "_map_factory",
        "_tree",
        "_subtables",
        "_suborder",
        "_residual",
        "updaters",
        "key_count",
        "memory_bytes",
    )

    def __init__(
        self,
        name: str,
        subtable_depth: int = 0,
        stats: Optional[StoreStats] = None,
        map_factory=None,
    ) -> None:
        self.name = name
        self.subtable_depth = subtable_depth
        self.stats = stats if stats is not None else StoreStats()
        #: Factory for the data-plane ordered maps (``omap`` protocol).
        #: The updater interval tree stays a red-black tree regardless:
        #: it needs the augmentation hook.
        self._map_factory = resolve_map_impl(map_factory)
        self._tree = self._map_factory() if subtable_depth == 0 else None
        self._subtables: Dict[str, Any] = {}
        self._suborder = self._map_factory()  # subtable id -> ordered map
        self._residual = None
        self.updaters = IntervalTree()
        self.key_count = 0
        self.memory_bytes = 0

    # ------------------------------------------------------------------
    # Tree selection
    # ------------------------------------------------------------------
    def _subtable_id(self, key: str) -> Optional[str]:
        """The subtable id for ``key``, or None for residual keys."""
        prefix = subtable_prefix(key, self.subtable_depth)
        if len(prefix) == len(key):
            return None  # key has exactly `depth` segments
        return prefix + SEP

    def _locate_tree(self, key: str, create: bool):
        """The tree ``key`` belongs to, without charging stats."""
        if self._tree is not None:
            return self._tree
        sub_id = self._subtable_id(key)
        if sub_id is None:
            if self._residual is None and create:
                self._residual = self._map_factory()
                self.memory_bytes += SUBTABLE_OVERHEAD
            return self._residual
        tree = self._subtables.get(sub_id)
        if tree is None and create:
            tree = self._map_factory()
            self._subtables[sub_id] = tree
            self._suborder.insert(sub_id, tree)
            self.memory_bytes += SUBTABLE_OVERHEAD
        return tree

    def _tree_for(self, key: str, create: bool):
        """As :meth:`_locate_tree`, charging hash-jump and descent costs."""
        tree = self._locate_tree(key, create)
        if self._tree is None:
            self.stats.hash_jump()
        if tree is not None:
            self.stats.tree_descent(len(tree))
        return tree

    def _drop_if_empty(self, tree, key: str) -> None:
        if self._tree is not None or len(tree) > 0:
            return
        if tree is self._residual:
            self._residual = None
            self.memory_bytes -= SUBTABLE_OVERHEAD
            return
        sub_id = self._subtable_id(key)
        if sub_id is not None and self._subtables.get(sub_id) is tree:
            del self._subtables[sub_id]
            self._suborder.remove(sub_id)
            self.memory_bytes -= SUBTABLE_OVERHEAD

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def put(
        self,
        key: str,
        value: Value,
        hint: Optional[PutHandle] = None,
    ) -> Tuple[PutHandle, Optional[Value]]:
        """Insert or overwrite ``key``.

        Returns ``(handle, old_value)`` where ``old_value`` is None for
        fresh inserts.  ``hint`` (from a previous put into this table)
        lets overwrites of the hinted key and appends immediately after
        it run without a tree descent (§4.2).
        """
        self.stats.add("puts")
        if hint is not None and hint.is_valid():
            result = self._put_with_hint(key, value, hint)
            if result is not None:
                return result
        tree = self._tree_for(key, create=True)
        assert tree is not None
        existing = tree.find_node(key)
        if existing is not None:
            old = existing.value
            existing.value = value
            return self._account_overwrite(tree, existing, old, value)
        node = tree.insert(key, value)
        return self._account_insert(tree, node, key, value)

    def _put_with_hint(
        self, key: str, value: Value, hint: PutHandle
    ) -> Optional[Tuple[PutHandle, Optional[Value]]]:
        """Attempt the O(1) hinted put; None means fall back to full put."""
        tree = hint.tree
        if tree is not self._locate_tree(key, create=False):
            return None
        hinted = hint.node
        if not (hinted.key < key) and not (key < hinted.key):
            # Overwrite of the hinted key itself (common for aggregates).
            self.stats.add("hint_hits")
            old = hinted.value
            hinted.value = value
            return self._account_overwrite(tree, hinted, old, value)
        if not (hinted.key < key):
            return None
        succ = tree.next_node(hinted)
        if succ is None or key < succ.key:
            # Fresh key immediately after the hint (timeline append).
            self.stats.add("hint_hits")
            node = tree.insert_node_after(hinted, key, value)
            return self._account_insert(tree, node, key, value)
        if not (succ.key < key):
            # succ.key == key: overwrite the successor in place.
            self.stats.add("hint_hits")
            old = succ.value
            succ.value = value
            return self._account_overwrite(tree, succ, old, value)
        return None

    def _account_insert(
        self, tree, node, key: str, value: Value
    ) -> Tuple[PutHandle, Optional[Value]]:
        self.key_count += 1
        self.memory_bytes += len(key) + NODE_OVERHEAD + acquire_value(value)
        return PutHandle(tree, node), None

    def _account_overwrite(
        self, tree, node, old: Value, value: Value
    ) -> Tuple[PutHandle, Optional[Value]]:
        self.memory_bytes -= release_value(old)
        self.memory_bytes += acquire_value(value)
        return PutHandle(tree, node), old

    def install_many(
        self,
        pairs: List[Tuple[str, Value]],
        hint: Optional[PutHandle] = None,
    ) -> Tuple[List[Tuple[str, Optional[Value]]], Optional[PutHandle]]:
        """Install a run of pairs, chaining each put's handle as the
        next put's hint.

        For a sorted contiguous run — the batched fan-out install
        pattern, where one updater emits many output keys in key order
        into one subtable — every put after the first lands on the
        hinted append/overwrite fast paths, so the whole run costs one
        tree descent plus O(1) per key (§4.2's output hint, amortized
        across the run instead of remembered between fires).

        Returns the per-key ``(key, old_value)`` results in input
        order, plus the final handle for the caller to carry forward
        as its next output hint.
        """
        self.stats.add("batched_installs")
        results: List[Tuple[str, Optional[Value]]] = []
        handle = hint
        for key, value in pairs:
            handle, old = self.put(key, value, hint=handle)
            results.append((key, old))
        return results, handle

    def replace_node_value(self, node, value: Value) -> Value:
        """Swap a stored node's value in place, keeping accounting exact.

        Used by the value-sharing optimization (§4.3) to promote a
        plain string into a :class:`SharedValue` without a tree
        descent.  Returns the previous value.
        """
        old = node.value
        self.memory_bytes -= release_value(old)
        self.memory_bytes += acquire_value(value)
        node.value = value
        return old

    def spill_range(self, lo: str, hi: str) -> int:
        """Move cold string payloads in ``[lo, hi)`` to the disk spill
        tier; returns resident bytes freed.

        Only works when the table's trees are disk-backed (they expose
        a ``spill`` store); otherwise this is a no-op returning 0.  Keys
        and node handles stay resident — eviction of *structure* remains
        :meth:`remove`/range eviction — and only payloads longer than
        the stub cost move: plain strings, and shared values whose last
        holder this node is (``refs == 1`` — once dependents are gone
        the SharedValue wrapper is just a private string with a
        refcount).  Multi-holder shared values and aggregate
        accumulators are pointer-shaped already, and tiny values would
        cost more as stubs than they free.
        """
        from .diskmap import SPILLED_VALUE_SIZE, SpilledValue
        from .values import SharedValue

        def spillable(value) -> Optional[str]:
            if type(value) is str:
                payload = value
            elif isinstance(value, SharedValue) and value.refs == 1:
                payload = value.payload
            else:
                return None
            return payload if len(payload) > SPILLED_VALUE_SIZE else None

        if not lo < hi:
            return 0
        freed = 0
        for tree in self._overlapping_trees(lo, hi):
            spill = getattr(tree, "spill", None)
            if spill is None:
                continue
            victims = [
                (node, payload)
                for node in tree.nodes(lo, hi)
                if (payload := spillable(node.value)) is not None
            ]
            if not victims:
                continue
            spill.spill([(node.key, payload) for node, payload in victims])
            for node, _ in victims:
                before = self.memory_bytes
                self.replace_node_value(node, SpilledValue(spill, node.key))
                freed += before - self.memory_bytes
        return freed

    def remove(self, key: str) -> Optional[Value]:
        """Remove ``key``; returns the removed value or None."""
        self.stats.add("removes")
        tree = self._tree_for(key, create=False)
        if tree is None:
            return None
        node = tree.find_node(key)
        if node is None:
            return None
        value = node.value
        tree.remove_node(node)
        self.key_count -= 1
        self.memory_bytes -= len(key) + NODE_OVERHEAD + release_value(value)
        self._drop_if_empty(tree, key)
        return value

    def clear(self) -> None:
        self._tree = self._map_factory() if self.subtable_depth == 0 else None
        self._subtables.clear()
        self._suborder.clear()
        self._residual = None
        self.updaters.clear()
        self.key_count = 0
        self.memory_bytes = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get_node(self, key: str) -> Optional[Node]:
        self.stats.add("gets")
        tree = self._tree_for(key, create=False)
        if tree is None:
            return None
        return tree.find_node(key)

    def get(self, key: str, default: Any = None) -> Any:
        node = self.get_node(key)
        return node.value if node is not None else default

    def _overlapping_trees(self, lo: str, hi: str, stats=None) -> List:
        """The data trees whose spans intersect ``[lo, hi)``, in key
        order (residual first).  ``stats`` charges the hash-jump and
        descent costs when the walk is client-visible work."""
        if self._tree is not None:
            if stats is not None:
                stats.tree_descent(len(self._tree))
            return [self._tree]
        trees: List = []
        if self._residual is not None:
            trees.append(self._residual)
        sub_id = self._subtable_id(lo) if lo else None
        if sub_id is not None and hi <= prefix_upper_bound(sub_id):
            # Fast path: the whole scan lies inside one subtable (§4.1).
            if stats is not None:
                stats.hash_jump()
            tree = self._subtables.get(sub_id)
            if tree is not None:
                if stats is not None:
                    stats.tree_descent(len(tree))
                trees.append(tree)
        else:
            # Cross-boundary scan: walk subtable ids overlapping [lo, hi).
            start = self._suborder.floor_node(lo)
            node = start if start is not None else self._suborder.min_node()
            while node is not None and node.key < hi:
                if prefix_upper_bound(node.key) > lo:
                    if stats is not None:
                        stats.tree_descent(len(node.value))
                    trees.append(node.value)
                node = self._suborder.next_node(node)
        return trees

    def _merged_nodes(self, lo: str, hi: str, stats=None) -> Iterator[Node]:
        trees = self._overlapping_trees(lo, hi, stats)
        if len(trees) == 1:
            return trees[0].nodes(lo, hi)
        if trees:
            return heapq.merge(
                *(t.nodes(lo, hi) for t in trees), key=lambda n: n.key
            )
        return iter(())

    def scan_nodes(self, lo: str, hi: str) -> Iterator[Node]:
        """Yield stored nodes with ``lo <= key < hi`` in key order,
        charging scan work counters.

        The two single-tree cases — no subtables, or a scan entirely
        inside one subtable (§4.1's hash jump) — are inlined with
        direct counter arithmetic: this is the per-operation spine of
        every warm read, and the method-call/generator tower it
        replaced was measurable on the read-heavy Twip profile.
        """
        if not lo < hi:
            return iter(())
        counters = self.stats.counters
        counters["scans"] += 1
        tree = self._tree
        if tree is not None:
            counters["tree_descents"] += 1
            counters["tree_descent_cost"] += log2(len(tree) + 2)
            return tree.nodes(lo, hi)
        if self._residual is None and lo:
            sub_id = self._subtable_id(lo)
            if sub_id is not None and hi <= prefix_upper_bound(sub_id):
                counters["hash_jumps"] += 1
                tree = self._subtables.get(sub_id)
                if tree is None:
                    return iter(())
                counters["tree_descents"] += 1
                counters["tree_descent_cost"] += log2(len(tree) + 2)
                return tree.nodes(lo, hi)
        return self._merged_nodes(lo, hi, self.stats)

    def iter_nodes(self, lo: str, hi: str) -> Iterator[Node]:
        """As :meth:`scan_nodes`, but charging nothing — the internal
        path for counting, memory recounts, and eviction scoring, which
        must not inflate the scan counters the cost model bills."""
        if not lo < hi:
            return iter(())
        return self._merged_nodes(lo, hi)

    def scan(self, lo: str, hi: str) -> Iterator[Tuple[str, Value]]:
        for node in self.scan_nodes(lo, hi):
            self.stats.add("scanned_items")
            yield node.key, node.value

    def count_range(self, lo: str, hi: str) -> int:
        """Number of keys in ``[lo, hi)``.  Counting is not scanning:
        no scan counters are charged, and maps that support positional
        counting (the sorted array) answer without touching nodes."""
        if not lo < hi:
            return 0
        return sum(
            tree.count_range(lo, hi)
            for tree in self._overlapping_trees(lo, hi)
        )

    def first_node(self, lo: str, hi: str) -> Optional[Node]:
        for node in self.scan_nodes(lo, hi):
            return node
        return None

    def __len__(self) -> int:
        return self.key_count

    def subtable_count(self) -> int:
        return len(self._subtables) + (1 if self._residual is not None else 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Table {self.name!r} keys={self.key_count} "
            f"subtables={self.subtable_count()} mem={self.memory_bytes}>"
        )
