"""The ``OrderedMap`` protocol: what a Pequod data tree must provide.

Paper §4 describes the store as "a collection of binary trees", but
nothing above the table layer depends on *tree-ness* — only on an
ordered map of string keys to values with stable node handles.  This
module names that contract so the red-black tree (``rbtree.py``) and
the blocked sorted array (``sortedarray.py``) are interchangeable, and
``OrderedStore(map_impl=...)`` / ``PequodServer(store_impl=...)`` can
pick per deployment.

The contract, in terms of *nodes* (opaque handles exposing ``key`` and
``value``; ``value`` is assignable in place):

* ``insert(key, value) -> node`` — insert or overwrite;
* ``insert_node_after(node, key, value) -> node`` — hinted insert
  (§4.2 output hints); implementations may fall back to ``insert``;
* ``find_node(key)`` / ``get(key, default)`` / ``remove(key)`` /
  ``remove_node(node)`` / ``clear()``;
* ``min_node`` / ``max_node`` / ``ceiling_node`` / ``floor_node`` /
  ``higher_node`` / ``lower_node`` / ``next_node`` / ``prev_node``;
* ``nodes(lo, hi)`` / ``items`` / ``keys`` — ordered ``[lo, hi)``
  iteration (``None`` bounds are open);
* ``count_range(lo, hi)`` — size of ``[lo, hi)`` without yielding;
* ``node_valid(node)`` — is this handle still attached?  Backs
  :meth:`~repro.store.table.PutHandle.is_valid` without assuming a
  particular removal representation;
* ``len()`` / ``bool()`` / ``in`` / iteration over keys;
* ``check_invariants()`` — test hook.

The interval tree stays on :class:`~repro.store.rbtree.RBTree`
directly: it needs the augmentation hook, which is tree-specific and
deliberately outside this protocol.
"""

from __future__ import annotations

from typing import Callable

#: Names accepted by ``OrderedStore(map_impl=...)`` and the CLI's
#: ``--store-impl`` flag.
MAP_IMPLS = ("rbtree", "sortedarray", "disk")

#: The default data-plane map.  The blocked sorted array wins on the
#: read-heavy Twip workload (see ``repro bench read_path`` and
#: ``BENCH_read_path.json``): scans iterate a contiguous array instead
#: of chasing parent pointers, and bisect runs in C.  The red-black
#: tree remains selectable for write-skewed tables.
DEFAULT_MAP_IMPL = "sortedarray"


def resolve_map_impl(impl) -> Callable[[], object]:
    """Turn an impl name (or factory, or None) into a map factory.

    ``None`` selects :data:`DEFAULT_MAP_IMPL`.  A callable is returned
    unchanged, so tests can inject custom implementations.
    """
    if impl is None:
        impl = DEFAULT_MAP_IMPL
    if callable(impl):
        return impl
    if impl == "rbtree":
        from .rbtree import RBTree

        return RBTree
    if impl == "sortedarray":
        from .sortedarray import SortedArrayMap

        return SortedArrayMap
    if impl == "disk":
        # A fresh factory per resolution: all maps of one store share
        # one spill tier (in a private temp dir here — callers wanting
        # a specific directory or stats construct DiskMapFactory
        # themselves and pass it as the impl).
        from .diskmap import DiskMapFactory

        return DiskMapFactory()
    raise ValueError(
        f"unknown ordered-map implementation {impl!r}; "
        f"expected one of {MAP_IMPLS} or a factory callable"
    )
