"""A blocked sorted array: the scan-optimized ``OrderedMap``.

Pequod's hot read path is the warm timeline check — an ordered scan of
a mostly-static subtable (paper §4.1/§5.1).  A red-black tree serves
those scans by chasing parent pointers node-to-node; in Python every
hop is several attribute lookups.  This implementation stores keys in
sorted array *blocks* instead: lookups binary-search a block index then
a block (both via the C-implemented ``bisect``), and scans walk
contiguous lists.  Mutations pay an O(block) memmove, which CPython
lists make cheap, and blocks split at a fixed load so no single insert
is worse than O(block + blocks).

The structure mirrors the classic blocked sorted list (cf. the
``sortedcontainers`` design): three parallel arrays —

* ``_maxes[b]``  — the largest key in block ``b`` (the block index);
* ``_key_blocks[b]`` — the block's sorted keys;
* ``_node_blocks[b]`` — the block's :class:`SANode` handles, aligned
  with the keys.

Keys and nodes are kept in separate parallel lists so bisect compares
raw keys (no key= callable per probe).  Node handles stay stable across
block splits — only list membership moves — so ``PutHandle`` hints and
value-sharing (`§4.2/§4.3`) work unchanged.

Unlike :class:`~repro.store.rbtree.RBTree`, ``nodes()`` returns a
snapshot list (concatenated block slices), so iteration tolerates
concurrent structural mutation.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterator, List, Optional

#: Blocks split when they exceed twice this many keys, so steady-state
#: blocks hold LOAD..2*LOAD entries.
LOAD = 256


class SANode:
    """A stored pair.  Application code treats nodes as opaque handles
    except for reading ``key`` and reading/assigning ``value``."""

    __slots__ = ("key", "value", "alive")

    def __init__(self, key: Any, value: Any) -> None:
        self.key = key
        self.value = value
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "" if self.alive else " dead"
        return f"<SANode {self.key!r}={self.value!r}{tag}>"


class SortedArrayMap:
    """An ordered map over array blocks; see the module docstring."""

    __slots__ = ("_maxes", "_key_blocks", "_node_blocks", "_size")

    def __init__(self) -> None:
        self._maxes: List[Any] = []
        self._key_blocks: List[List[Any]] = []
        self._node_blocks: List[List[SANode]] = []
        self._size = 0

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, key: Any) -> bool:
        return self.find_node(key) is not None

    def find_node(self, key: Any) -> Optional[SANode]:
        """Return the node with exactly ``key``, or None."""
        maxes = self._maxes
        b = bisect_left(maxes, key)
        if b == len(maxes):
            return None
        keys = self._key_blocks[b]
        i = bisect_left(keys, key)
        if i < len(keys) and keys[i] == key:
            return self._node_blocks[b][i]
        return None

    def get(self, key: Any, default: Any = None) -> Any:
        node = self.find_node(key)
        return node.value if node is not None else default

    def node_valid(self, node: SANode) -> bool:
        """Is this handle still attached to the map?"""
        return node.alive

    def min_node(self) -> Optional[SANode]:
        if not self._size:
            return None
        return self._node_blocks[0][0]

    def max_node(self) -> Optional[SANode]:
        if not self._size:
            return None
        return self._node_blocks[-1][-1]

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    def ceiling_node(self, key: Any) -> Optional[SANode]:
        """Smallest node with ``node.key >= key``."""
        maxes = self._maxes
        b = bisect_left(maxes, key)
        if b == len(maxes):
            return None
        i = bisect_left(self._key_blocks[b], key)
        return self._node_blocks[b][i]

    def higher_node(self, key: Any) -> Optional[SANode]:
        """Smallest node with ``node.key > key``."""
        maxes = self._maxes
        b = bisect_right(maxes, key)
        if b == len(maxes):
            return None
        i = bisect_right(self._key_blocks[b], key)
        return self._node_blocks[b][i]

    def floor_node(self, key: Any) -> Optional[SANode]:
        """Largest node with ``node.key <= key``."""
        return self._below(bisect_right, key)

    def lower_node(self, key: Any) -> Optional[SANode]:
        """Largest node with ``node.key < key``."""
        return self._below(bisect_left, key)

    def _below(self, probe, key: Any) -> Optional[SANode]:
        maxes = self._maxes
        if not maxes:
            return None
        b = min(bisect_left(maxes, key), len(maxes) - 1)
        i = probe(self._key_blocks[b], key) - 1
        if i >= 0:
            return self._node_blocks[b][i]
        if b == 0:
            return None
        return self._node_blocks[b - 1][-1]

    def next_node(self, node: SANode) -> Optional[SANode]:
        """In-order successor of ``node``."""
        b, i = self._locate(node)
        nodes = self._node_blocks[b]
        if i + 1 < len(nodes):
            return nodes[i + 1]
        if b + 1 < len(self._node_blocks):
            return self._node_blocks[b + 1][0]
        return None

    def prev_node(self, node: SANode) -> Optional[SANode]:
        """In-order predecessor of ``node``."""
        b, i = self._locate(node)
        if i > 0:
            return self._node_blocks[b][i - 1]
        if b > 0:
            return self._node_blocks[b - 1][-1]
        return None

    def _locate(self, node: SANode) -> tuple:
        """The (block, index) of a live node, by key."""
        key = node.key
        b = bisect_left(self._maxes, key)
        keys = self._key_blocks[b]
        i = bisect_left(keys, key)
        assert self._node_blocks[b][i] is node, "node not in this map"
        return b, i

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def nodes(self, lo: Any = None, hi: Any = None) -> List[SANode]:
        """Nodes with ``lo <= key < hi`` in key order, as a list.

        ``lo`` of None means the minimum; ``hi`` of None means
        unbounded.  Returning concatenated block slices instead of a
        generator is deliberate: the common scan touches one block and
        costs two bisects plus a single C-level slice, with no per-item
        generator resumption — and iteration over the result tolerates
        concurrent mutation for free (it is a snapshot).
        """
        maxes = self._maxes
        if not maxes:
            return []
        if lo is None:
            b = i = 0
        else:
            b = bisect_left(maxes, lo)
            if b == len(maxes):
                return []
            i = bisect_left(self._key_blocks[b], lo)
        keys = self._key_blocks[b]
        if hi is not None and not keys[-1] < hi:
            return self._node_blocks[b][i:bisect_left(keys, hi)]
        out = self._node_blocks[b][i:]
        b += 1
        while b < len(maxes):
            keys = self._key_blocks[b]
            if hi is not None and not keys[-1] < hi:
                out.extend(self._node_blocks[b][: bisect_left(keys, hi)])
                return out
            out.extend(self._node_blocks[b])
            b += 1
        return out

    def items(self, lo: Any = None, hi: Any = None) -> Iterator[tuple]:
        for node in self.nodes(lo, hi):
            yield node.key, node.value

    def keys(self, lo: Any = None, hi: Any = None) -> Iterator[Any]:
        for node in self.nodes(lo, hi):
            yield node.key

    def __iter__(self) -> Iterator[Any]:
        return self.keys()

    def count_range(self, lo: Any, hi: Any) -> int:
        """Number of keys in ``[lo, hi)``, positionally (no node walk)."""
        return max(0, self._rank(hi) - self._rank(lo))

    def _rank(self, key: Any) -> int:
        """How many stored keys sort strictly below ``key``."""
        maxes = self._maxes
        b = bisect_left(maxes, key)
        if b == len(maxes):
            return self._size
        rank = sum(len(block) for block in self._key_blocks[:b])
        return rank + bisect_left(self._key_blocks[b], key)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> SANode:
        """Insert ``key`` -> ``value``; overwrite the value if present.

        Returns the node holding the pair.
        """
        maxes = self._maxes
        if not maxes:
            node = SANode(key, value)
            self._maxes = [key]
            self._key_blocks = [[key]]
            self._node_blocks = [[node]]
            self._size = 1
            return node
        b = bisect_left(maxes, key)
        if b == len(maxes):
            b -= 1  # key beyond every block: append to the last one
        keys = self._key_blocks[b]
        i = bisect_left(keys, key)
        if i < len(keys) and keys[i] == key:
            node = self._node_blocks[b][i]
            node.value = value
            return node
        node = SANode(key, value)
        keys.insert(i, key)
        self._node_blocks[b].insert(i, node)
        if i == len(keys) - 1:
            maxes[b] = key
        self._size += 1
        if len(keys) > 2 * LOAD:
            self._split(b)
        return node

    def insert_node_after(self, node: SANode, key: Any, value: Any) -> SANode:
        """Insert ``key`` hinted to land immediately after ``node``.

        Arrays locate positions by C-level bisect, so the hint buys
        nothing here; this delegates to :meth:`insert`, which handles
        stale hints and successor overwrites with identical semantics
        to the red-black tree's hinted path.
        """
        return self.insert(key, value)

    def remove(self, key: Any) -> bool:
        """Remove ``key``.  Returns True if it was present."""
        node = self.find_node(key)
        if node is None:
            return False
        self.remove_node(node)
        return True

    def remove_node(self, node: SANode) -> None:
        """Remove a node previously obtained from this map."""
        b, i = self._locate(node)
        keys = self._key_blocks[b]
        del keys[i]
        del self._node_blocks[b][i]
        node.alive = False
        self._size -= 1
        if not keys:
            del self._maxes[b]
            del self._key_blocks[b]
            del self._node_blocks[b]
        elif i == len(keys):
            self._maxes[b] = keys[-1]

    def clear(self) -> None:
        self._maxes = []
        self._key_blocks = []
        self._node_blocks = []
        self._size = 0

    def _split(self, b: int) -> None:
        """Split block ``b`` in half, keeping the block index sorted."""
        keys = self._key_blocks[b]
        nodes = self._node_blocks[b]
        half = len(keys) // 2
        self._key_blocks.insert(b + 1, keys[half:])
        self._node_blocks.insert(b + 1, nodes[half:])
        del keys[half:]
        del nodes[half:]
        self._maxes.insert(b, keys[-1])  # block b's new max; b+1 keeps the old

    # ------------------------------------------------------------------
    # Validation (tests only)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError if structural invariants are violated."""
        assert len(self._maxes) == len(self._key_blocks) == len(self._node_blocks)
        total = 0
        prev = None
        for b, keys in enumerate(self._key_blocks):
            nodes = self._node_blocks[b]
            assert keys, "empty block"
            assert len(keys) == len(nodes), "key/node block misaligned"
            assert self._maxes[b] == keys[-1], "stale block max"
            for i, key in enumerate(keys):
                assert prev is None or prev < key, "keys out of order"
                prev = key
                node = nodes[i]
                assert node.key == key, "node key out of sync"
                assert node.alive, "dead node still stored"
            total += len(keys)
        assert total == self._size, "size mismatch"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SortedArrayMap keys={self._size} blocks={len(self._maxes)}>"
