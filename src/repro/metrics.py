"""Lightweight metrics: counters, gauges, histograms, Prometheus text.

The repro's accounting has always been honest (``StoreStats`` counters
are bumped exactly where the work happens) but invisible: ``stats()``
returned a grab-bag and nothing was exported.  This module adds the
export layer without taxing the hot paths:

* Raw ``StoreStats`` counters pass through untouched — instrumented
  code keeps bumping a ``defaultdict`` and pays nothing new.
* Derived series (per-join hit/validation rates, pending-log and
  watch-backlog depth, per-table memory, overload state) are computed
  **at scrape time** by :class:`ServerMetrics`, by walking structures
  the server already maintains.  An unscraped server never computes
  them.
* The only always-on additions are a handful of fixed-bucket
  :class:`Histogram` observations on the RPC path (frame latency,
  window occupancy) — two integer adds per observation.

Snapshots are *flat* ``{key: number}`` dicts.  A key is either a bare
counter name (``op_get``) or a Prometheus-style series key
(``join_memo_hits_total{table="t"}``), so one dict round-trips through
the wire codec, merges across cluster nodes, and renders to Prometheus
exposition text (:func:`render_prometheus`) without a schema.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

Samples = Iterable[Tuple[str, float]]

#: Default buckets for RPC frame service time, in seconds.
LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: Default buckets for pipelined-window occupancy (requests per read).
WINDOW_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class Histogram:
    """A fixed-bucket histogram: two integer adds per observation.

    ``bounds`` are inclusive upper bounds per bucket; values above the
    last bound land in the implicit overflow bucket, matching
    Prometheus's ``+Inf``.
    """

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = tuple(sorted(bounds))  # bisect needs ascending order
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def percentile(self, p: float) -> float:
        """Approximate p-th percentile (0..100): the upper bound of the
        bucket containing that rank (the last finite bound for the
        overflow bucket)."""
        if self.count == 0:
            return 0.0
        rank = max(1, int(self.count * p / 100.0 + 0.5))
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank:
                return float(self.bounds[min(i, len(self.bounds) - 1)])
        return float(self.bounds[-1])  # pragma: no cover - unreachable

    def samples(self, name: str, **labels: str) -> Iterator[Tuple[str, float]]:
        """Flat Prometheus-histogram series: cumulative ``_bucket``
        counts per ``le``, plus ``_sum`` and ``_count``."""
        cumulative = 0
        for bound, n in zip(self.bounds, self.counts):
            cumulative += n
            yield sample_key(f"{name}_bucket", le=format_number(bound), **labels), float(cumulative)
        yield sample_key(f"{name}_bucket", le="+Inf", **labels), float(self.count)
        yield sample_key(f"{name}_sum", **labels), self.total
        yield sample_key(f"{name}_count", **labels), float(self.count)


def format_number(value: float) -> str:
    """Render a bucket bound / sample value without float noise."""
    if value == int(value):
        return str(int(value))
    return repr(value)


def sample_key(metric: str, /, **labels: str) -> str:
    """The flat key for one series: ``metric{label="value",...}``."""
    if not labels:
        return metric
    inner = ",".join(
        f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())
    )
    return f"{metric}{{{inner}}}"


def _escape_label(value: str) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


_KEY_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?$")
_NAME_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")


def split_key(key: str) -> Tuple[str, str]:
    """Split a flat key into (metric name, label block or '')."""
    m = _KEY_RE.match(key)
    if m is None:
        safe = _NAME_SANITIZE_RE.sub("_", key)
        if not safe or not (safe[0].isalpha() or safe[0] in "_:"):
            safe = "_" + safe
        return safe, ""
    return m.group(1), m.group(2) or ""


def merge_snapshots(snapshots: Iterable[Dict[str, float]]) -> Dict[str, float]:
    """Combine per-node flat snapshots into one cluster view.

    Counters and depths sum; ``*_max`` series (staleness high-water
    marks) take the maximum, which is the only sound cluster-wide
    reading of a bound.
    """
    out: Dict[str, float] = {}
    for snap in snapshots:
        for key, value in snap.items():
            name, _ = split_key(key)
            if name.endswith("_max") or name.endswith("_max_seconds"):
                prev = out.get(key)
                out[key] = value if prev is None else max(prev, value)
            else:
                out[key] = out.get(key, 0.0) + value
    return out


def label_by_node(per_node: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    """Tag every series in per-node snapshots with a ``node`` label.

    The per-node complement to :func:`merge_snapshots`: instead of
    collapsing the cluster into one aggregate, each node's series stay
    distinct — ``stat{node="node0",...}`` — so a scrape of a
    multi-process cluster can attribute load and staleness per node.
    """
    out: Dict[str, float] = {}
    for node, snap in sorted(per_node.items()):
        tag = f'node="{_escape_label(node)}"'
        for key, value in snap.items():
            name, labels = split_key(key)
            if labels:
                out[f"{name}{{{tag},{labels[1:-1]}}}"] = value
            else:
                out[f"{name}{{{tag}}}"] = value
    return out


#: Unlabeled, unsuffixed derived gauges that must render as their own
#: families (not fold into the generic ``stat`` family): the load and
#: watch state the README's catalog documents by name, plus the
#: persistence tier's gauges and probe counters.
_STANDALONE_GAUGES = frozenset(
    {
        "overloaded",
        "overload_queue_depth",
        "watch_watchers",
        "write_fanout_max",
        "persist_segments",
        "persist_recovery_ms",
        "persist_segment_probes",
        "persist_bloom_negatives",
        "persist_bloom_false_positives",
        "persist_spilled_values",
        "persist_spill_segments",
        "cdc_feed_depth",
        "cdc_feed_high_water",
        "cdc_consumer_lag_records",
        "cdc_backfill_active",
    }
)


def _histogram_order(sample: Tuple[str, float]) -> Tuple:
    """Exposition order within one histogram family: for each label
    set, buckets ascending by numeric ``le`` (``+Inf`` last), then
    ``_sum``, then ``_count`` — the order Prometheus parsers expect
    (lexical sorting would put ``+Inf`` first)."""
    name, labels = split_key(sample[0])
    le_match = re.search(r'(?<![a-zA-Z0-9_])le="([^"]*)"', labels)
    if name.endswith("_bucket") and le_match:
        le = le_match.group(1)
        group = (labels[: le_match.start()] + labels[le_match.end():])
        bound = float("inf") if le == "+Inf" else float(le)
        return (group.strip("{},"), 0, bound)
    rank = 1 if name.endswith("_sum") else 2
    return (labels.strip("{},"), rank, 0.0)


def render_prometheus(snapshot: Dict[str, float], prefix: str = "repro_") -> str:
    """Render a flat snapshot as Prometheus exposition text.

    Derived series keep their own metric names (prefixed); bare
    ``StoreStats`` counter names collapse into one
    ``<prefix>stat{name="..."}`` family so arbitrary counter names
    never produce invalid metric names.
    """
    families: Dict[str, List[Tuple[str, float]]] = {}
    for key in sorted(snapshot):
        value = snapshot[key]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        name, labels = split_key(key)
        if (
            not labels
            and name not in _STANDALONE_GAUGES
            and not name.endswith(
                ("_total", "_bytes", "_seconds", "_sum", "_count")
            )
        ):
            # Bare counter-bag entry: fold into the generic family.
            families.setdefault(f"{prefix}stat", []).append(
                (sample_key(f"{prefix}stat", name=name), float(value))
            )
            continue
        base = name
        kind = "gauge"
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                base, kind = name[: -len(suffix)], "histogram"
                break
        if kind != "histogram" and name.endswith("_total"):
            kind = "counter"
        fam = f"{prefix}{base}|{kind}"
        families.setdefault(fam, []).append((prefix + key, float(value)))
    lines: List[str] = []
    for fam in sorted(families):
        if "|" in fam:
            fam_name, kind = fam.rsplit("|", 1)
        else:
            fam_name, kind = fam, "counter"
        lines.append(f"# HELP {fam_name} repro series {fam_name}")
        lines.append(f"# TYPE {fam_name} {kind}")
        samples = families[fam]
        if kind == "histogram":
            samples = sorted(samples, key=_histogram_order)
        for key, value in samples:
            lines.append(f"{key} {format_number(value)}")
    return "\n".join(lines) + "\n"


class ServerMetrics:
    """Scrape-time metric derivation for one ``PequodServer``.

    Holds no per-operation state of its own: :meth:`samples` walks the
    engine's status tables, the store's tables, the change hub, and the
    admission controller — structures the server maintains anyway — so
    the instrumented paths pay nothing until someone actually scrapes.
    Extra sources (the RPC layer's histograms, say) register through
    :meth:`add_source`.
    """

    def __init__(self, server) -> None:
        self.server = server
        self._sources: List[Callable[[], Samples]] = []

    def add_source(self, source: Callable[[], Samples]) -> None:
        self._sources.append(source)

    # ------------------------------------------------------------------
    def samples(self) -> Iterator[Tuple[str, float]]:
        """All derived series, as (flat key, value) pairs."""
        server = self.server
        engine = server.engine
        for table, tm in sorted(engine.table_metrics.items()):
            yield sample_key("join_validations_total", table=table), float(tm.validations)
            yield sample_key("join_memo_hits_total", table=table), float(tm.memo_hits)
            yield sample_key("join_fresh_hits_total", table=table), float(tm.fresh_hits)
            yield sample_key("join_computes_total", table=table), float(tm.computes)
            yield sample_key("join_recomputes_total", table=table), float(tm.recomputes)
            yield sample_key("join_pending_applies_total", table=table), float(tm.pending_applies)
            yield sample_key("join_stale_served_total", table=table), float(tm.stale_served)
            yield sample_key("join_stale_age_max_seconds", table=table), float(tm.stale_age_max)
        for table, stable in sorted(engine.status.items()):
            depth = 0
            count = 0
            for sr in stable.ranges():
                count += 1
                depth += len(sr.pending)
            yield sample_key("status_ranges", table=table), float(count)
            yield sample_key("pending_log_depth", table=table), float(depth)
        for name, tbl in sorted(server.store.tables.items()):
            yield sample_key("table_keys", table=name), float(tbl.key_count)
            yield sample_key("table_memory_bytes", table=name), float(tbl.memory_bytes)
        yield "memory_bytes", float(engine.memory_bytes())
        yield "updater_memory_bytes", float(engine.updater_bytes)
        # The compiled write path (per-join execution plans, batched
        # fan-out installs, whole-table validity): how often plans
        # compile and fire, how installs batch, and the worst fan-out
        # one write has faced.
        stats = engine.stats
        yield "write_plan_compiles_total", stats.get("write_plan_compiles")
        yield "write_plan_fires_total", stats.get("write_plan_fires")
        yield "write_batched_installs_total", stats.get(
            "write_batched_installs"
        )
        yield "write_whole_table_fastpath_hits_total", stats.get(
            "write_whole_table_fastpath_hits"
        )
        yield "write_fanout_max", stats.get("write_fanout_max")
        yield "eviction_memory_limit_bytes", float(server.eviction.limit_bytes or 0)
        hub = server._hub
        if hub is not None:
            yield "watch_watchers", float(hub.watcher_count())
            yield "watch_published_total", float(hub.published)
            yield "watch_delivered_total", float(hub.delivered)
        load = getattr(server, "load", None)
        if load is not None:
            yield "overloaded", 1.0 if load.overloaded else 0.0
            yield "overload_queue_depth", float(load.queue_depth)
        # Persistence: always-present families (zeros before first use)
        # whenever the server has a durable or spill tier, so dashboards
        # need no existence checks.
        persist = getattr(server, "persist", None)
        spill = getattr(server.store._map_factory, "spill_store", None)
        if persist is not None:
            yield "persist_wal_bytes", float(persist.wal.size)
            yield "persist_wal_synced_bytes", float(persist.wal.synced_size)
            yield "persist_segments", float(len(persist.segments))
            yield "persist_segment_file_bytes", float(persist.segments.file_bytes())
            yield "persist_checkpoints_total", float(persist.checkpoints)
            yield "persist_recovered_ops_total", float(persist.recovered_ops)
            yield "persist_recovery_ms", float(persist.recovery_ms)
            yield from persist.flush_seconds.samples("persist_flush_seconds")
            yield from persist.segments.compaction_seconds.samples(
                "persist_compaction_seconds", tier="checkpoint"
            )
        if persist is not None or spill is not None:
            stats = server.stats
            yield "persist_segment_probes", stats.get("persist_segment_probes")
            yield "persist_bloom_negatives", stats.get("persist_bloom_negatives")
            yield "persist_bloom_false_positives", stats.get(
                "persist_bloom_false_positives"
            )
            yield "persist_spilled_values", stats.get("persist_spilled_values")
        if spill is not None:
            yield "persist_spill_segments", float(spill.segment_count())
            yield "persist_spill_file_bytes", float(spill.file_bytes())
            yield from spill.stack.compaction_seconds.samples(
                "persist_compaction_seconds", tier="spill"
            )
        # CDC (write-around deployments): feed depth, consumer lag, and
        # the propagation-lag distribution — the freshness story of the
        # asynchronous write path, measured instead of assumed.
        cdc = getattr(server, "cdc", None)
        if cdc is not None:
            feed = cdc.feed
            yield "cdc_feed_high_water", float(feed.high_water)
            yield "cdc_feed_depth", float(feed.pending_records())
            yield "cdc_journal_bytes", float(feed.journal_bytes)
            yield "cdc_consumer_lag_records", float(cdc.lag_records)
            yield "cdc_consumer_lag_seconds", float(cdc.lag_seconds())
            yield "cdc_backfill_active", 1.0 if cdc.backfilling else 0.0
            yield "cdc_records_applied_total", float(cdc.records_applied)
            yield "cdc_records_skipped_total", float(cdc.records_skipped)
            yield "cdc_batches_applied_total", float(cdc.batches_applied)
            yield "cdc_backfill_rows_total", float(cdc.backfill_rows)
            yield "cdc_backfill_chunks_total", float(cdc.backfill_chunks)
            yield from cdc.lag.samples("cdc_propagation_lag_seconds")
        for source in self._sources:
            yield from source()

    def snapshot(self) -> Dict[str, float]:
        """Raw ``StoreStats`` counters plus every derived series —
        the ``stats()`` superset every backend returns."""
        out: Dict[str, float] = self.server.stats.snapshot()
        for key, value in self.samples():
            out[key] = value
        return out

    def prometheus(self) -> str:
        return render_prometheus(self.snapshot())


class MetricsHttpServer:
    """A minimal asyncio HTTP endpoint serving ``GET /metrics``.

    Deliberately tiny — one route, HTTP/1.0 close-after-response — so
    ``repro serve --metrics-port`` needs no web framework.  ``render``
    is any zero-argument callable returning exposition text.
    """

    def __init__(self, render: Callable[[], str], host: str = "127.0.0.1", port: int = 0):
        self.render = render
        self.host = host
        self.port = port
        self._server = None

    async def start(self) -> "MetricsHttpServer":
        import asyncio

        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def _handle(self, reader, writer) -> None:
        try:
            request = await reader.readline()
            parts = request.decode("latin-1", "replace").split()
            # Drain headers so well-behaved clients see a clean close.
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            if len(parts) >= 2 and parts[0] == "GET" and parts[1].split("?")[0] == "/metrics":
                body = self.render().encode()
                head = (
                    "HTTP/1.0 200 OK\r\n"
                    "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                )
            else:
                body = b"not found\n"
                head = (
                    "HTTP/1.0 404 Not Found\r\n"
                    "Content-Type: text/plain\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                )
            writer.write(head.encode() + body)
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - client went away
            pass
        finally:
            writer.close()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
