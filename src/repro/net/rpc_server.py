"""Asyncio RPC server exposing a PequodServer over TCP.

Pequod is "a single-threaded, event-driven C++ program" (§4); this is
the Python analogue: one event loop, per-connection frame reassembly,
and request dispatch into the (non-async) cache engine.  Clients
pipeline requests; responses go back in completion order carrying the
request id.

Beyond request/response, connections carry *watch subscriptions*
(§2.4's push model): ``subscribe lo hi`` registers a range on the
server's :class:`~repro.core.hub.ChangeHub` and answers a
per-connection subscription id; every committed change in the range is
then written to the connection as a push frame with a reserved
negative id, interleaving freely with pipelined responses.  All of a
connection's subscriptions — and any partially reassembled frames —
are dropped when the connection ends, however it ends.
"""

from __future__ import annotations

import asyncio
import logging
import threading
import time
import traceback
from typing import Any, Dict, List, Optional

from ..core.hub import WatchHandle
from ..core.joins import JoinError
from ..core.load import OverloadError
from ..core.pattern import PatternError
from ..core.server import PequodServer
from ..distrib.partition_map import WrongOwnerError
from ..metrics import LATENCY_BUCKETS, WINDOW_BUCKETS, Histogram, sample_key
from . import protocol
from .codec import CodecError

log = logging.getLogger(__name__)


def classify_error(exc: BaseException) -> str:
    """The protocol error code for one server-side exception.

    ``OverloadError`` classifies first — it subclasses RuntimeError but
    carries load-control semantics every backend must surface as the
    typed client error, not a generic server fault.  ``KeyError``
    classifies before the generic bad-request bucket: the engine (and
    the subscription table) raise it for *missing things*, which a
    client must be able to distinguish from a malformed request — see
    ``repro.client.errors.NotFoundError``.
    """
    if isinstance(exc, OverloadError):
        return protocol.ERR_CODE_OVERLOAD
    if isinstance(exc, WrongOwnerError):
        return protocol.ERR_CODE_WRONG_OWNER
    if isinstance(exc, (JoinError, PatternError)):
        return protocol.ERR_CODE_JOIN
    if isinstance(exc, KeyError):
        return protocol.ERR_CODE_NOT_FOUND
    if isinstance(exc, (ValueError, TypeError, CodecError)):
        return protocol.ERR_CODE_BAD_REQUEST
    return protocol.ERR_CODE_SERVER


class _Connection:
    """Per-connection state: the writer, frame reassembly, and watches."""

    __slots__ = ("writer", "buffer", "subscriptions", "next_sub_id")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.buffer = protocol.FrameBuffer()
        self.subscriptions: Dict[int, WatchHandle] = {}
        self.next_sub_id = 0

    def teardown(self) -> None:
        """Drop everything this connection holds on the server:
        active watch subscriptions and any partial frame bytes.

        A handle whose ``close()`` faults must not abort the loop —
        the remaining subscriptions still have to be dropped — but the
        fault is *logged*, never swallowed: silent teardown failures
        leave ghost watchers pushing into dead writers.
        """
        for sub_id, handle in self.subscriptions.items():
            try:
                handle.close()
            except Exception:  # noqa: BLE001 - teardown must not abort
                log.exception(
                    "error closing subscription %s during disconnect teardown",
                    sub_id,
                )
        self.subscriptions.clear()
        self.buffer = protocol.FrameBuffer()


class RpcServer:
    """Serve a :class:`PequodServer` on a TCP host/port."""

    def __init__(
        self,
        server: PequodServer,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        metrics_source: bool = True,
    ):
        self.server = server
        self.host = host
        self.port = port
        self._asyncio_server: Optional[asyncio.AbstractServer] = None
        self._connection_tasks: set = set()
        self._live_connections: set = set()
        self.requests_served = 0
        self.connections = 0
        self.pushes_sent = 0
        self.slow_watchers_dropped = 0
        #: RPC-path observability: service time per frame and how many
        #: requests each pipelined read chunk carried.
        self.frame_latency = Histogram(LATENCY_BUCKETS)
        self.window_occupancy = Histogram(WINDOW_BUCKETS)
        #: Optional fault injector (``repro.chaos.RpcChaos``): applied
        #: to each chunk's encoded responses before they are written.
        self.chaos = None
        # A cluster node runs TWO RpcServers over one PequodServer
        # (client + peer endpoints); only one registers the rpc_*
        # series, the other passes metrics_source=False.
        if metrics_source:
            server.metrics.add_source(self._metric_samples)

    def _metric_samples(self):
        """RPC-layer series merged into the server's snapshot."""
        yield "rpc_requests_total", float(self.requests_served)
        yield "rpc_connections_total", float(self.connections)
        yield "rpc_live_connections", float(len(self._live_connections))
        yield "rpc_pushes_total", float(self.pushes_sent)
        yield "rpc_slow_watchers_dropped_total", float(self.slow_watchers_dropped)
        backlog = 0
        for conn in self._live_connections:
            transport = conn.writer.transport
            if transport is not None and not transport.is_closing():
                backlog += transport.get_write_buffer_size()
        yield "rpc_push_backlog_bytes", float(backlog)
        yield from self.frame_latency.samples("rpc_frame_latency_seconds")
        yield from self.window_occupancy.samples("rpc_window_occupancy")
        for q in (50, 95, 99):
            yield (
                sample_key("rpc_frame_latency_quantile_seconds", q=str(q)),
                self.frame_latency.percentile(q),
            )

    async def start(self) -> None:
        self._asyncio_server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._asyncio_server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
            self._asyncio_server = None
        # Reap per-connection tasks so event-loop teardown is clean.
        for task in list(self._connection_tasks):
            task.cancel()
        if self._connection_tasks:
            await asyncio.gather(*self._connection_tasks, return_exceptions=True)
        self._connection_tasks.clear()

    async def serve_forever(self) -> None:
        if self._asyncio_server is None:
            await self.start()
        assert self._asyncio_server is not None
        async with self._asyncio_server:
            await self._asyncio_server.serve_forever()

    def watcher_count(self) -> int:
        """Active watch subscriptions across every connection."""
        return self.server.hub.watcher_count()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
        self.connections += 1
        conn = _Connection(writer)
        self._live_connections.add(conn)
        load = self.server.load
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                payloads = conn.buffer.feed(data)
                if payloads:
                    self.window_occupancy.observe(len(payloads))
                    if load is not None:
                        # The pipelined chunk depth is the admission
                        # controller's queue signal: a client windowing
                        # hundreds of requests per read is the
                        # unbounded-queueing shape overload policies
                        # exist for.
                        load.report_queue_depth(len(payloads))
                # Dispatch the whole chunk, then write every response
                # in ONE transport write: a pipelined window of N
                # requests costs one send syscall, not N.
                responses = []
                for payload in payloads:
                    response = self._dispatch(conn, payload)
                    if not isinstance(response, bytes):
                        # A subclass handler went async (cluster
                        # migration drivers); await it in request
                        # order so responses stay a flat byte list.
                        response = await response
                    responses.append(response)
                if self.chaos is not None:
                    responses = await self.chaos.apply(responses)
                if len(responses) == 1:
                    writer.write(responses[0])
                elif responses:
                    writer.write(b"".join(responses))
                await writer.drain()
        except protocol.ProtocolError:
            # Unframeable garbage: drop this connection, keep serving
            # the rest.
            pass
        except (OSError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancels connection handlers; exiting
            # normally keeps asyncio's stream callbacks quiet.
            pass
        finally:
            # Teardown must run on EVERY exit path — a fault mid-frame
            # must not leave subscriptions pushing into a dead writer
            # or partial state behind the reader task.
            conn.teardown()
            self._live_connections.discard(conn)
            if task is not None:
                self._connection_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    def _dispatch(self, conn: _Connection, payload: bytes):
        request_id = -1
        started = time.perf_counter()
        try:
            message = protocol.decode_message(payload)
            request_id, method, args = protocol.parse_request(message)
            result = self._invoke(conn, method, args)
            if asyncio.iscoroutine(result) or asyncio.isfuture(result):
                return self._finish_async(request_id, result, started)
            self.requests_served += 1
            return protocol.encode_response(request_id, protocol.OK, result)
        except Exception as exc:  # noqa: BLE001 - faults go to the client
            return self._encode_failure(request_id, exc)
        finally:
            self.frame_latency.observe(time.perf_counter() - started)

    async def _finish_async(self, request_id: int, coro, started: float) -> bytes:
        """Await a coroutine-valued handler and encode its outcome with
        the same success/failure envelope as the synchronous path."""
        try:
            result = await coro
            self.requests_served += 1
            return protocol.encode_response(request_id, protocol.OK, result)
        except Exception as exc:  # noqa: BLE001 - faults go to the client
            return self._encode_failure(request_id, exc)
        finally:
            self.frame_latency.observe(time.perf_counter() - started)

    def _encode_failure(self, request_id: int, exc: BaseException) -> bytes:
        code = classify_error(exc)
        detail = f"{type(exc).__name__}: {exc}"
        if code == protocol.ERR_CODE_SERVER:
            detail += "\n" + traceback.format_exc(limit=3)
        return protocol.encode_response(
            request_id, protocol.ERR, protocol.encode_error(code, detail)
        )

    # ------------------------------------------------------------------
    # Watch subscriptions (server push, §2.4)
    # ------------------------------------------------------------------
    #: A subscriber whose connection has this many un-flushed push
    #: bytes is not keeping up; its subscriptions are dropped rather
    #: than letting the server buffer grow without bound.
    MAX_PUSH_BACKLOG = 8 * 1024 * 1024

    def _subscribe(self, conn: _Connection, lo: Any, hi: Any) -> int:
        if not isinstance(lo, str) or not isinstance(hi, str) or not lo < hi:
            raise ValueError(f"bad watch range [{lo!r}, {hi!r})")
        sub_id = conn.next_sub_id
        conn.next_sub_id += 1
        writer = conn.writer

        def sink(event) -> None:
            # Synchronous with the commit: the frame enters the
            # writer's buffer before the originating request's
            # response, so a subscriber never sees an ack ahead of the
            # changes it implies.  StreamWriter flushes asynchronously.
            transport = writer.transport
            if (
                transport is None
                or transport.is_closing()
                or transport.get_write_buffer_size() > self.MAX_PUSH_BACKLOG
            ):
                # Slow-consumer policy: a watcher that stopped reading
                # loses its subscriptions instead of growing server
                # memory without bound.
                for handle in conn.subscriptions.values():
                    handle.close()
                conn.subscriptions.clear()
                self.slow_watchers_dropped += 1
                return
            writer.write(protocol.encode_push(sub_id, [event]))
            self.pushes_sent += 1

        conn.subscriptions[sub_id] = self.server.watch(lo, hi, sink)
        return sub_id

    def _unsubscribe(self, conn: _Connection, sub_id: Any) -> bool:
        handle = conn.subscriptions.pop(sub_id, None)
        if handle is None:
            raise KeyError(f"no subscription {sub_id!r} on this connection")
        handle.close()
        return True

    def _invoke(self, conn: _Connection, method: str, args: List[Any]) -> Any:
        srv = self.server
        if method == "get":
            (key,) = args
            return srv.get(key)
        if method == "put":
            # Writes may carry a trailing partition-map version (the
            # cluster's write fence); a plain server ignores it.
            key, value = args[:2]
            srv.put(key, value)
            return True
        if method == "remove":
            key, *_ = args
            return srv.remove(key)
        if method == "batch":
            pairs = protocol.decode_batch_args(args[:2])
            return srv.apply_batch(pairs)
        if method == "scan":
            first, last = args
            return [list(pair) for pair in srv.scan(first, last)]
        if method == "scan_prefix":
            (prefix,) = args
            return [list(pair) for pair in srv.scan_prefix(prefix)]
        if method == "count":
            first, last = args
            return srv.count(first, last)
        if method == "add_join":
            (text,) = args
            return [j.text for j in srv.add_join(text)]
        if method == "subscribe":
            lo, hi = args
            return self._subscribe(conn, lo, hi)
        if method == "unsubscribe":
            (sub_id,) = args
            return self._unsubscribe(conn, sub_id)
        if method == "stats":
            return srv.metrics_snapshot()
        if method == "metrics":
            return srv.metrics_text()
        if method == "settle_cdc":
            return srv.settle_cdc()
        if method == "ping":
            return "pong"
        raise ValueError(f"unknown method {method!r}")


class ThreadedRpcService:
    """A Pequod RPC server on a private event-loop thread.

    The loopback deployment used by benchmarks and tests that need the
    server genuinely concurrent with a client (separate thread, real
    TCP) rather than sharing the caller's loop.
    """

    def __init__(self, server: PequodServer, host: str = "127.0.0.1") -> None:
        self.rpc = RpcServer(server, host, 0)
        self._loop = asyncio.new_event_loop()
        started = threading.Event()
        failure: list = []

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self.rpc.start())
            except Exception as exc:  # noqa: BLE001 - surfaced to caller
                failure.append(exc)
                self._loop.close()
                started.set()
                return
            started.set()
            self._loop.run_forever()
            self._loop.run_until_complete(self.rpc.stop())
            # One more tick so closed transports detach their sockets
            # before the loop goes away (avoids ResourceWarnings).
            self._loop.run_until_complete(asyncio.sleep(0.02))
            self._loop.close()

        self._thread = threading.Thread(
            target=run, name="pequod-rpc", daemon=True
        )
        self._thread.start()
        started.wait()
        if failure:
            raise RuntimeError(f"cannot start RPC server: {failure[0]}")

    @property
    def port(self) -> int:
        return self.rpc.port

    def stop(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5)
