"""Asyncio RPC server exposing a PequodServer over TCP.

Pequod is "a single-threaded, event-driven C++ program" (§4); this is
the Python analogue: one event loop, per-connection frame reassembly,
and request dispatch into the (non-async) cache engine.  Clients
pipeline requests; responses go back in completion order carrying the
request id.
"""

from __future__ import annotations

import asyncio
import traceback
from typing import Any, List, Optional

from ..core.joins import JoinError
from ..core.pattern import PatternError
from ..core.server import PequodServer
from . import protocol
from .codec import CodecError


def classify_error(exc: BaseException) -> str:
    """The protocol error code for one server-side exception."""
    if isinstance(exc, (JoinError, PatternError)):
        return protocol.ERR_CODE_JOIN
    if isinstance(exc, (ValueError, KeyError, TypeError, CodecError)):
        return protocol.ERR_CODE_BAD_REQUEST
    return protocol.ERR_CODE_SERVER


class RpcServer:
    """Serve a :class:`PequodServer` on a TCP host/port."""

    def __init__(self, server: PequodServer, host: str = "127.0.0.1", port: int = 0):
        self.server = server
        self.host = host
        self.port = port
        self._asyncio_server: Optional[asyncio.AbstractServer] = None
        self._connection_tasks: set = set()
        self.requests_served = 0
        self.connections = 0

    async def start(self) -> None:
        self._asyncio_server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._asyncio_server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
            self._asyncio_server = None
        # Reap per-connection tasks so event-loop teardown is clean.
        for task in list(self._connection_tasks):
            task.cancel()
        if self._connection_tasks:
            await asyncio.gather(*self._connection_tasks, return_exceptions=True)
        self._connection_tasks.clear()

    async def serve_forever(self) -> None:
        if self._asyncio_server is None:
            await self.start()
        assert self._asyncio_server is not None
        async with self._asyncio_server:
            await self._asyncio_server.serve_forever()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
            task.add_done_callback(self._connection_tasks.discard)
        self.connections += 1
        buffer = protocol.FrameBuffer()
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                for payload in buffer.feed(data):
                    response = self._dispatch(payload)
                    writer.write(response)
                await writer.drain()
        except protocol.ProtocolError:
            # Unframeable garbage: drop this connection, keep serving
            # the rest.
            pass
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancels connection handlers; exiting
            # normally keeps asyncio's stream callbacks quiet.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    def _dispatch(self, payload: bytes) -> bytes:
        request_id = -1
        try:
            message = protocol.decode_message(payload)
            request_id, method, args = protocol.parse_request(message)
            result = self._invoke(method, args)
            self.requests_served += 1
            return protocol.encode_response(request_id, protocol.OK, result)
        except Exception as exc:  # noqa: BLE001 - faults go to the client
            code = classify_error(exc)
            detail = f"{type(exc).__name__}: {exc}"
            if code == protocol.ERR_CODE_SERVER:
                detail += "\n" + traceback.format_exc(limit=3)
            return protocol.encode_response(
                request_id, protocol.ERR, protocol.encode_error(code, detail)
            )

    def _invoke(self, method: str, args: List[Any]) -> Any:
        srv = self.server
        if method == "get":
            (key,) = args
            return srv.get(key)
        if method == "put":
            key, value = args
            srv.put(key, value)
            return True
        if method == "remove":
            (key,) = args
            return srv.remove(key)
        if method == "batch":
            pairs = protocol.decode_batch_args(args)
            return srv.apply_batch(pairs)
        if method == "scan":
            first, last = args
            return [list(pair) for pair in srv.scan(first, last)]
        if method == "scan_prefix":
            (prefix,) = args
            return [list(pair) for pair in srv.scan_prefix(prefix)]
        if method == "count":
            first, last = args
            return srv.count(first, last)
        if method == "add_join":
            (text,) = args
            return [j.text for j in srv.add_join(text)]
        if method == "stats":
            return srv.stats.snapshot()
        if method == "ping":
            return "pong"
        raise ValueError(f"unknown method {method!r}")
