"""Deterministic discrete-event network simulation.

The paper's distributed evaluation ran on an EC2 cluster with a 10 Gbps
network (§5.1); this module is the substitute substrate: a discrete-
event simulator with per-link latency and per-byte cost, deterministic
given a seed, so the distributed benchmarks are exactly reproducible.

``SimNetwork`` owns a simulated clock and an event queue.  ``SimHost``s
register message handlers; ``send`` schedules delivery after
``latency + size / bandwidth``.  Messages between hosts are counted and
sized (via the wire codec) so benchmarks can report network overheads
like the paper's subscription-traffic percentages (§5.5).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.clock import SimClock
from .codec import encode


class SimError(RuntimeError):
    pass


class SimNetwork:
    """Event queue + simulated clock + host registry."""

    def __init__(
        self,
        latency: float = 0.0001,
        bandwidth_bytes_per_sec: float = 1.25e9,  # 10 Gbps
    ) -> None:
        self.clock = SimClock()
        self.latency = latency
        self.bandwidth = bandwidth_bytes_per_sec
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self.hosts: Dict[str, "SimHost"] = {}
        #: Hosts taken down by fault injection; messages to (or already
        #: in flight toward) a down host are dropped, not delivered.
        self.down: set = set()
        #: Extra per-message delay injected by fault injection, on top
        #: of the configured link latency.
        self.extra_latency = 0.0
        #: Optional fault injector: called as (src, dst, kind, body);
        #: returning True drops the message (counted, never delivered).
        self.loss_filter: Optional[Callable[[str, str, str, Any], bool]] = None
        self.messages_dropped = 0
        self.messages_sent = 0
        self.bytes_sent = 0
        #: per (src, dst) message/byte counters for traffic breakdowns
        self.link_bytes: Dict[Tuple[str, str], int] = {}
        self.link_messages: Dict[Tuple[str, str], int] = {}
        #: per message-kind byte counters (client vs subscription traffic,
        #: the §5.5 breakdown)
        self.kind_bytes: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def add_host(self, host: "SimHost") -> None:
        if host.name in self.hosts:
            raise SimError(f"duplicate host {host.name!r}")
        self.hosts[host.name] = host

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimError("cannot schedule into the past")
        heapq.heappush(
            self._queue, (self.clock.now() + delay, next(self._seq), fn)
        )

    def send(
        self,
        src: str,
        dst: str,
        kind: str,
        body: Any,
        size_bytes: Optional[int] = None,
    ) -> None:
        """Deliver ``body`` to ``dst``'s handler after link delay."""
        if dst not in self.hosts:
            raise SimError(f"unknown host {dst!r}")
        size = size_bytes if size_bytes is not None else len(encode([kind, body]))
        self.account(src, dst, kind, size)
        if dst in self.down or src in self.down:
            self.messages_dropped += 1
            return
        if self.loss_filter is not None and self.loss_filter(src, dst, kind, body):
            self.messages_dropped += 1
            return
        delay = self.latency + self.extra_latency + size / self.bandwidth
        host = self.hosts[dst]
        self.schedule(delay, lambda: self._deliver(host, src, kind, body))

    def _deliver(self, host: "SimHost", src: str, kind: str, body: Any) -> None:
        # Down-ness is re-checked at delivery time so messages already
        # in flight when a host is killed vanish with it.
        if host.name in self.down:
            self.messages_dropped += 1
            return
        host.deliver(src, kind, body)

    # ------------------------------------------------------------------
    # Fault injection (repro.chaos)
    # ------------------------------------------------------------------
    def kill_host(self, name: str) -> None:
        """Partition ``name`` off: everything to or from it — including
        messages already in flight — is dropped until revived."""
        if name not in self.hosts:
            raise SimError(f"unknown host {name!r}")
        self.down.add(name)

    def revive_host(self, name: str) -> None:
        self.down.discard(name)

    def account(self, src: str, dst: str, kind: str, size: int) -> None:
        """Charge traffic without scheduling a delivery.

        Used for exchanges whose effect is applied synchronously (bulk
        range fetches, §3.3) but whose network cost must still be
        measured.
        """
        self.messages_sent += 1
        self.bytes_sent += size
        link = (src, dst)
        self.link_bytes[link] = self.link_bytes.get(link, 0) + size
        self.link_messages[link] = self.link_messages.get(link, 0) + 1
        self.kind_bytes[kind] = self.kind_bytes.get(kind, 0) + size

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the earliest pending event; returns False when idle."""
        if not self._queue:
            return False
        when, _, fn = heapq.heappop(self._queue)
        if when > self.clock.now():
            self.clock.set(when)
        fn()
        return True

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Drain the event queue; returns number of events processed."""
        processed = 0
        while self.step():
            processed += 1
            if processed >= max_events:
                raise SimError("simulation did not quiesce")
        return processed

    def run_for(self, seconds: float) -> int:
        """Process events up to ``now + seconds``; advances the clock."""
        deadline = self.clock.now() + seconds
        processed = 0
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
            processed += 1
        self.clock.set(max(self.clock.now(), deadline))
        return processed

    def pending(self) -> int:
        return len(self._queue)

    def now(self) -> float:
        return self.clock.now()


class SimHost:
    """A named endpoint on the simulated network.

    Subclasses or owners register handlers per message kind with
    :meth:`on`; unhandled kinds raise, keeping protocol drift loud.
    """

    def __init__(self, net: SimNetwork, name: str) -> None:
        self.net = net
        self.name = name
        self._handlers: Dict[str, Callable[[str, Any], None]] = {}
        self.received = 0
        net.add_host(self)

    def on(self, kind: str, handler: Callable[[str, Any], None]) -> None:
        self._handlers[kind] = handler

    def send(self, dst: str, kind: str, body: Any, size_bytes: Optional[int] = None) -> None:
        self.net.send(self.name, dst, kind, body, size_bytes)

    def deliver(self, src: str, kind: str, body: Any) -> None:
        self.received += 1
        handler = self._handlers.get(kind)
        if handler is None:
            raise SimError(f"host {self.name!r} has no handler for {kind!r}")
        handler(src, body)
