"""Framed request/response protocol for Pequod RPC (paper §5.1).

"Application clients communicate with Pequod servers using RPC" —
requests and responses are codec-encoded values inside 4-byte
big-endian length frames.  Clients are event-driven and keep many RPCs
outstanding (§5.1), so every request carries an id and responses may
arrive in any order.

Request  : ``[id, method, args...]``
Response : ``[id, status, payload]`` with status "ok" or "err".  An
"err" payload is ``[code, message]`` where ``code`` is one of
:data:`ERR_CODES`, letting clients surface server-side faults as the
unified exception types of ``repro.client.errors``.
Push     : ``[push_id, "push", events]`` — a server-initiated frame
carrying committed changes for one subscription (§2.4's push model).
Push ids are *reserved negative ids*: clients allocate request ids
from 0 upward, the server derives ``push_id = -sub_id - 1``, so pushed
frames interleave freely with pipelined responses on one connection
and a client can route every inbound frame by the sign of its id.

Methods mirror the server API: ``get``, ``put``, ``remove``, ``scan``,
``add_join``, ``count``, ``stats``, ``ping``, plus ``batch`` — a group
of coalesced writes shipped as one request (sorted keys travel
prefix-compressed; a None value marks a remove), applied server-side as
one maintenance pass — and the watch-stream pair ``subscribe`` /
``unsubscribe`` (``subscribe lo hi`` answers a per-connection
subscription id whose changes then arrive as push frames).
"""

from __future__ import annotations

import struct
from typing import Any, List, Optional, Tuple

from ..core.hub import ChangeEvent
from ..core.operators import ChangeKind
from .codec import CodecError, KeyList, decode, encode

MAX_FRAME = 64 * 1024 * 1024  # sanity cap

OK = "ok"
ERR = "err"
PUSH = "push"

#: Error codes attached to failure responses so every client backend
#: can raise the same unified exception type (repro.client.errors).
#: An error payload is ``[code, message]``; bare-string payloads from
#: older peers are treated as ``ERR_CODE_SERVER``.
ERR_CODE_JOIN = "join"  # join failed parse or add-join validation
ERR_CODE_BAD_REQUEST = "bad_request"  # invalid arguments / unknown method
ERR_CODE_NOT_FOUND = "not_found"  # the named thing does not exist
ERR_CODE_SERVER = "server"  # server fault executing a valid request
ERR_CODE_OVERLOAD = "overload"  # admission control shed the request
ERR_CODE_WRONG_OWNER = "wrong_owner"  # key's range moved; refresh the map
ERR_CODES = (
    ERR_CODE_JOIN, ERR_CODE_BAD_REQUEST, ERR_CODE_NOT_FOUND, ERR_CODE_SERVER,
    ERR_CODE_OVERLOAD, ERR_CODE_WRONG_OWNER,
)

#: Methods a Pequod RPC server accepts, mapped to server attributes.
METHODS = (
    "get", "put", "remove", "scan", "scan_prefix", "count", "add_join",
    "stats", "metrics", "ping", "batch", "subscribe", "unsubscribe",
    "settle_cdc",
)

#: Additional methods a *cluster node's* public endpoint accepts.
#: ``put``/``remove``/``batch`` grow an optional trailing map-version
#: argument on cluster nodes (the write fence — a node whose map says
#: it no longer owns the key answers ERR_CODE_WRONG_OWNER); plain
#: servers ignore the extra argument.
CLUSTER_METHODS = (
    "partition_map",  # -> PartitionMap wire form (or None)
    "install_map",  # [wire, dead_node?] adopt a newer map
    "replica_batch",  # [keys, values] replica apply, ownership-exempt
    "migrate_range",  # [lo, hi, target, new_map_wire] source-side driver
    "cluster_settle",  # -> per-peer sent/applied counters
    "cluster_info",  # -> {name, map_version, ...}
)

#: Methods a cluster node's *peer* endpoint accepts (node-to-node
#: only; these handlers never block on another node, which is what
#: makes the two-port design deadlock-free).
PEER_METHODS = (
    "fetch_range",  # [subscriber, table, lo, hi] snapshot + subscribe
    "peer_unsubscribe",  # [subscriber, lo, hi]
    "mirror_updates",  # [src, updates] subscription pushes
    "migrate_install",  # [lo, hi, keys, values] snapshot chunk
    "migrate_tail",  # [lo, hi, updates] WAL-tail catch-up
    "adopt_subscriptions",  # [[subscriber, lo, hi], ...] handoff
    "install_map",  # [wire] activation during migration
    "ping",
)


class ProtocolError(ValueError):
    """Raised on malformed frames or messages."""


def frame(payload: bytes) -> bytes:
    """Wrap an encoded message in a length prefix."""
    if len(payload) > MAX_FRAME:
        raise ProtocolError(f"frame too large: {len(payload)}")
    return struct.pack(">I", len(payload)) + payload


def encode_request(request_id: int, method: str, args: List[Any]) -> bytes:
    return frame(encode([request_id, method, *args]))


def encode_response(request_id: int, status: str, payload: Any) -> bytes:
    return frame(encode([request_id, status, payload]))


def decode_message(payload: bytes) -> List[Any]:
    try:
        message = decode(payload)
    except CodecError as exc:
        raise ProtocolError(f"bad message: {exc}") from exc
    if not isinstance(message, list) or len(message) < 2:
        raise ProtocolError(f"malformed message: {message!r}")
    return message


def parse_request(message: List[Any]) -> Tuple[int, str, List[Any]]:
    request_id, method, *args = message
    if not isinstance(request_id, int) or not isinstance(method, str):
        raise ProtocolError(f"malformed request: {message!r}")
    return request_id, method, args


def parse_response(message: List[Any]) -> Tuple[int, str, Any]:
    if len(message) != 3:
        raise ProtocolError(f"malformed response: {message!r}")
    request_id, status, payload = message
    if not isinstance(request_id, int) or status not in (OK, ERR, PUSH):
        raise ProtocolError(f"malformed response: {message!r}")
    return request_id, status, payload


# ----------------------------------------------------------------------
# Server-push frames (watch subscriptions, §2.4)
# ----------------------------------------------------------------------
def push_id_for(sub_id: int) -> int:
    """The reserved negative frame id for subscription ``sub_id``."""
    if sub_id < 0:
        raise ProtocolError(f"subscription ids are non-negative: {sub_id}")
    return -sub_id - 1


def sub_id_of(push_id: int) -> int:
    """Invert :func:`push_id_for`."""
    if push_id >= 0:
        raise ProtocolError(f"push ids are negative: {push_id}")
    return -push_id - 1


def encode_event(event: ChangeEvent) -> List[Any]:
    return [event.seq, event.key, event.old, event.new, event.kind.value]


def decode_event(body: Any) -> ChangeEvent:
    if not isinstance(body, list) or len(body) != 5:
        raise ProtocolError(f"malformed change event: {body!r}")
    seq, key, old, new, kind = body
    if not isinstance(seq, int) or not isinstance(key, str):
        raise ProtocolError(f"malformed change event: {body!r}")
    try:
        return ChangeEvent(seq, key, old, new, ChangeKind(kind))
    except ValueError as exc:
        raise ProtocolError(f"malformed change event: {body!r}") from exc


def encode_push(sub_id: int, events: List[ChangeEvent]) -> bytes:
    """One server-push frame carrying ``events`` for ``sub_id``."""
    return frame(
        encode([push_id_for(sub_id), PUSH, [encode_event(e) for e in events]])
    )


def parse_push(message: List[Any]) -> Tuple[int, List[ChangeEvent]]:
    """``(sub_id, events)`` from a parsed push message."""
    push_id, status, payload = parse_response(message)
    if status != PUSH or push_id >= 0 or not isinstance(payload, list):
        raise ProtocolError(f"malformed push frame: {message!r}")
    return sub_id_of(push_id), [decode_event(item) for item in payload]


def encode_error(code: str, message: str) -> List[Any]:
    """The payload of one failure response."""
    if code not in ERR_CODES:
        raise ProtocolError(f"unknown error code {code!r}")
    return [code, message]


def parse_error(payload: Any) -> Tuple[str, str]:
    """``(code, message)`` from a failure-response payload.

    Accepts the structured ``[code, message]`` form and, for
    compatibility with bare-string error payloads, classifies unknown
    shapes as server faults.
    """
    if (
        isinstance(payload, list)
        and len(payload) == 2
        and payload[0] in ERR_CODES
        and isinstance(payload[1], str)
    ):
        return payload[0], payload[1]
    return ERR_CODE_SERVER, str(payload)


def encode_batch_args(pairs: List[Tuple[str, Optional[str]]]) -> List[Any]:
    """Request args for one ``batch`` RPC.

    ``pairs`` is the coalesced operation list in key order; a None
    value means remove.  Keys ship as a prefix-compressed
    :class:`KeyList` — sorted batch keys share long prefixes, so the
    coalesced message costs far less than per-key requests.
    """
    return [KeyList(key for key, _ in pairs), [value for _, value in pairs]]


def decode_batch_args(args: List[Any]) -> List[Tuple[str, Optional[str]]]:
    """Validate and unpack one ``batch`` request's args."""
    if len(args) != 2:
        raise ProtocolError(f"batch expects [keys, values], got {len(args)} args")
    keys, values = args
    if not isinstance(keys, list) or not isinstance(values, list):
        raise ProtocolError("batch keys and values must be lists")
    if len(keys) != len(values):
        raise ProtocolError(
            f"batch length mismatch: {len(keys)} keys, {len(values)} values"
        )
    for key, value in zip(keys, values):
        if not isinstance(key, str) or not key:
            raise ProtocolError(f"bad batch key: {key!r}")
        if value is not None and not isinstance(value, str):
            raise ProtocolError(f"bad batch value for {key!r}: {value!r}")
    return list(zip(keys, values))


class FrameBuffer:
    """Incremental frame reassembly for a byte stream."""

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> List[bytes]:
        """Append stream bytes; return any complete frame payloads."""
        self._buf.extend(data)
        frames: List[bytes] = []
        while True:
            payload = self._next_frame()
            if payload is None:
                return frames
            frames.append(payload)

    def _next_frame(self) -> Optional[bytes]:
        if len(self._buf) < 4:
            return None
        (length,) = struct.unpack(">I", self._buf[:4])
        if length > MAX_FRAME:
            raise ProtocolError(f"frame too large: {length}")
        if len(self._buf) < 4 + length:
            return None
        payload = bytes(self._buf[4 : 4 + length])
        del self._buf[: 4 + length]
        return payload

    def pending_bytes(self) -> int:
        return len(self._buf)
