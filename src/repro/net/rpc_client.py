"""Asyncio RPC client with pipelining and server-push routing.

The paper's clients "are event-driven processes that keep many RPCs
outstanding" (§5.1).  :class:`RpcClient` assigns each request an id,
writes frames without waiting, and resolves per-request futures as
responses arrive — so a single connection can have hundreds of
operations in flight.  Requests use ids >= 0; frames with *negative*
ids are server pushes carrying watch-subscription changes (§2.4) and
are routed to per-subscription sinks, so one connection interleaves
pipelined responses and pushed updates.  :class:`SyncRpcClient` wraps
it all in a private event loop for synchronous callers (examples,
tests).
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

from ..core.hub import ChangeEvent
from ..store.batch import PUT, WriteBatch, as_ops
from . import protocol

#: A subscription's delivery callback: a list of pushed events, or
#: None when the connection is lost and the stream can never resume.
PushSink = Callable[[Optional[List[ChangeEvent]]], None]

#: Anything acceptable as a batch: a WriteBatch or (key, value) pairs
#: with None values meaning removes.
BatchLike = Union[WriteBatch, Iterable[Tuple[str, Optional[str]]]]


def _batch_pairs(batch: BatchLike) -> List[Tuple[str, Optional[str]]]:
    return [
        (op.key, op.value if op.kind == PUT else None) for op in as_ops(batch)
    ]


class RpcError(RuntimeError):
    """An error reported by the server for one request.

    ``code`` is the protocol error code (:data:`repro.net.protocol.ERR_CODES`)
    the server attached, letting callers — in particular the unified
    client layer — distinguish bad requests and join-validation failures
    from genuine server faults.
    """

    def __init__(self, message: str, code: str = protocol.ERR_CODE_SERVER):
        super().__init__(message)
        self.code = code


class RpcClient:
    """Pipelined asyncio client for a Pequod RPC server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._buffer = protocol.FrameBuffer()
        self._pending: Dict[int, asyncio.Future] = {}
        self._push_sinks: Dict[int, PushSink] = {}
        self._next_id = 0
        self._reader_task: Optional[asyncio.Task] = None
        #: Encoded frames awaiting one coalesced transport write.
        #: Started calls buffer here and a flush runs at the end of
        #: the current loop tick, so a burst of requests (a pipeline
        #: window refilling as responses arrive) costs ONE send
        #: syscall instead of one per request.
        self._out_frames: List[bytes] = []
        self._flush_scheduled = False
        self.requests_sent = 0
        self.pushes_received = 0

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._reader_task = asyncio.create_task(self._read_loop())

    async def close(self) -> None:
        self._fail_push_sinks()
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
            self._writer = None

    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                data = await self._reader.read(65536)
                if not data:
                    # Clean EOF is still a dead connection: every
                    # outstanding request must fail, not hang, and
                    # later calls must refuse to start (the peer may
                    # have been killed — cluster clients retry through
                    # a refreshed partition map on this error).
                    self._fail_pending(
                        ConnectionResetError("connection closed by server")
                    )
                    self._fail_push_sinks()
                    break
                for payload in self._buffer.feed(data):
                    message = protocol.decode_message(payload)
                    request_id, status, body = protocol.parse_response(message)
                    if request_id < 0:
                        # Reserved negative id: a server push for one
                        # of our watch subscriptions.
                        sub_id, events = protocol.parse_push(message)
                        self.pushes_received += len(events)
                        sink = self._push_sinks.get(sub_id)
                        if sink is not None:
                            sink(events)
                        continue
                    future = self._pending.pop(request_id, None)
                    if future is None or future.done():
                        continue
                    if status == protocol.OK:
                        future.set_result(body)
                    else:
                        code, detail = protocol.parse_error(body)
                        future.set_exception(RpcError(detail, code))
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - fail all outstanding
            self._fail_pending(exc)
            self._fail_push_sinks()

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    def _fail_push_sinks(self) -> None:
        """The connection is gone: tell every watch stream it ended."""
        sinks, self._push_sinks = list(self._push_sinks.values()), {}
        for sink in sinks:
            sink(None)

    # -- watch subscriptions -----------------------------------------------------
    def set_push_sink(self, sub_id: int, sink: PushSink) -> None:
        """Route push frames for ``sub_id`` to ``sink``."""
        self._push_sinks[sub_id] = sink

    def drop_push_sink(self, sub_id: int) -> None:
        self._push_sinks.pop(sub_id, None)

    async def subscribe(self, lo: str, hi: str) -> int:
        """Install a watch subscription; returns its id.  Register a
        sink with :meth:`set_push_sink` before awaiting changes."""
        return await self.call("subscribe", lo, hi)

    async def unsubscribe(self, sub_id: int) -> bool:
        self.drop_push_sink(sub_id)
        return await self.call("unsubscribe", sub_id)

    def _start_call(self, method: str, args: List[Any]) -> asyncio.Future:
        assert self._writer is not None, "client is not connected"
        if self._reader_task is not None and self._reader_task.done():
            raise ConnectionResetError("connection lost")
        request_id = self._next_id
        self._next_id += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._out_frames.append(protocol.encode_request(request_id, method, args))
        if not self._flush_scheduled:
            self._flush_scheduled = True
            asyncio.get_running_loop().call_soon(self._flush)
        self.requests_sent += 1
        return future

    def _flush(self) -> None:
        """Hand buffered frames to the transport in one write."""
        self._flush_scheduled = False
        if self._out_frames and self._writer is not None:
            if len(self._out_frames) == 1:
                data = self._out_frames[0]
            else:
                data = b"".join(self._out_frames)
            self._out_frames.clear()
            self._writer.write(data)

    async def call(self, method: str, *args: Any) -> Any:
        """One RPC; awaits the response."""
        future = self._start_call(method, list(args))
        self._flush()  # single call: write now, skip the loop hop
        assert self._writer is not None
        await self._writer.drain()
        return await future

    async def call_many(self, calls: List[Tuple[str, List[Any]]]) -> List[Any]:
        """Pipeline a batch of RPCs; results come back in call order."""
        futures = [self._start_call(method, args) for method, args in calls]
        self._flush()
        assert self._writer is not None
        await self._writer.drain()
        return list(await asyncio.gather(*futures))

    async def call_windowed(
        self, calls: List[Tuple[str, List[Any]]], depth: int
    ) -> List[Any]:
        """Run ``calls`` keeping up to ``depth`` requests outstanding.

        The §5.1 client model as a driver: a continuous sliding
        window — each completion immediately launches the next call,
        so the connection never drains between windows — with results
        returned in call order.  Frames launched within one loop tick
        coalesce into a single transport write.
        """
        if depth < 1:
            raise ValueError(f"window depth must be >= 1, got {depth}")
        total = len(calls)
        if total == 0:
            return []
        loop = asyncio.get_running_loop()
        done: asyncio.Future = loop.create_future()
        results: List[Any] = [None] * total
        state = {"next": 0, "completed": 0}

        def launch() -> None:
            index = state["next"]
            if index >= total:
                return
            state["next"] += 1
            method, args = calls[index]
            future = self._start_call(method, list(args))
            future.add_done_callback(
                lambda fut, index=index: on_done(index, fut)
            )

        def on_done(index: int, future: asyncio.Future) -> None:
            state["completed"] += 1
            if future.cancelled():
                if not done.done():
                    done.cancel()
                return
            exc = future.exception()
            if exc is not None:
                if not done.done():
                    done.set_exception(exc)
            else:
                results[index] = future.result()
                if not done.done():
                    # A failed window stops issuing further calls: the
                    # caller has already seen the exception, so late
                    # completions must not keep feeding the server.
                    launch()
            if state["completed"] == total and not done.done():
                done.set_result(None)

        for _ in range(min(depth, total)):
            launch()
        self._flush()
        assert self._writer is not None
        await self._writer.drain()
        await done
        return results

    # -- convenience wrappers ----------------------------------------------------
    async def get(self, key: str) -> Optional[str]:
        return await self.call("get", key)

    async def put(self, key: str, value: str) -> None:
        await self.call("put", key, value)

    async def remove(self, key: str) -> bool:
        return await self.call("remove", key)

    async def scan(self, first: str, last: str) -> List[Tuple[str, str]]:
        return [tuple(pair) for pair in await self.call("scan", first, last)]

    async def scan_prefix(self, prefix: str) -> List[Tuple[str, str]]:
        return [
            tuple(pair) for pair in await self.call("scan_prefix", prefix)
        ]

    async def count(self, first: str, last: str) -> int:
        return await self.call("count", first, last)

    async def add_join(self, text: str) -> List[str]:
        return await self.call("add_join", text)

    async def stats(self) -> Dict[str, float]:
        return await self.call("stats")

    async def ping(self) -> str:
        return await self.call("ping")

    async def apply_batch(self, batch: BatchLike) -> int:
        """Ship a write batch as ONE coalesced RPC; returns changes
        applied server-side.  Compare :meth:`call_many`, which
        pipelines N requests — a batch is a single request, a single
        server dispatch, and a single maintenance pass."""
        pairs = _batch_pairs(batch)
        if not pairs:
            return 0
        return await self.call("batch", *protocol.encode_batch_args(pairs))


class SyncRpcClient:
    """Blocking facade over :class:`RpcClient` for synchronous code."""

    def __init__(self, host: str, port: int) -> None:
        self._loop = asyncio.new_event_loop()
        self._client = RpcClient(host, port)
        try:
            self._loop.run_until_complete(self._client.connect())
        except BaseException:
            self._loop.close()
            raise

    def close(self) -> None:
        self._loop.run_until_complete(self._client.close())
        self._loop.close()

    def call(self, method: str, *args: Any) -> Any:
        return self._loop.run_until_complete(self._client.call(method, *args))

    def get(self, key: str) -> Optional[str]:
        return self.call("get", key)

    def put(self, key: str, value: str) -> None:
        self.call("put", key, value)

    def remove(self, key: str) -> bool:
        return self.call("remove", key)

    def scan(self, first: str, last: str) -> List[Tuple[str, str]]:
        return [tuple(p) for p in self.call("scan", first, last)]

    def scan_prefix(self, prefix: str) -> List[Tuple[str, str]]:
        return [tuple(p) for p in self.call("scan_prefix", prefix)]

    def count(self, first: str, last: str) -> int:
        return self.call("count", first, last)

    def add_join(self, text: str) -> List[str]:
        return self.call("add_join", text)

    def stats(self) -> Dict[str, float]:
        return self.call("stats")

    def ping(self) -> str:
        return self.call("ping")

    def write_batch(self) -> WriteBatch:
        """A write batch that flushes through this client on apply."""
        return WriteBatch(sink=self)

    def apply_batch(self, batch: BatchLike) -> int:
        pairs = _batch_pairs(batch)
        if not pairs:
            return 0
        return self.call("batch", *protocol.encode_batch_args(pairs))

    def put_many(self, pairs: Iterable[Tuple[str, str]]) -> int:
        """Batch-write ``(key, value)`` pairs as one coalesced RPC."""
        return self.apply_batch(pairs)
