"""Binary wire codec for Pequod RPC.

A compact, self-describing, from-scratch serialization for the value
shapes RPC needs: ``None``, booleans, integers, floats, strings, bytes,
lists, and string-keyed dictionaries.  Integers use unsigned LEB128
varints with zigzag signing, so the small ids and lengths that dominate
cache traffic stay at one byte.

Wire grammar (one tag byte, then payload)::

    N                       -> None
    T / F                   -> True / False
    i <zigzag varint>       -> int
    d <8-byte IEEE754 BE>   -> float
    s <varint len> <utf8>   -> str
    b <varint len> <raw>    -> bytes
    l <varint count> items  -> list
    m <varint count> pairs  -> dict (string keys)
    P <varint count> keys   -> prefix-compressed string list

The ``P`` form carries each string as ``<varint shared> <varint len>
<utf8 suffix>`` where ``shared`` bytes are reused from the previous
string.  Batched writes ship sorted key runs (``p|bob|0001``,
``p|bob|0002``, …) whose long common prefixes make this the dominant
wire saving for write-heavy traffic; encoders opt in by wrapping a
string list in :class:`KeyList`, decoders return a plain list.

The codec is strict: unknown tags, trailing bytes, and truncated input
raise :class:`CodecError` rather than guessing.
"""

from __future__ import annotations

import struct
from typing import Any, Tuple


class CodecError(ValueError):
    """Raised on malformed wire data or unencodable values."""


class KeyList(list):
    """A list of strings encoded with shared-prefix compression.

    Behaves exactly like a list; the type only tells :func:`encode` to
    use the ``P`` wire form.  Decoding yields a plain list (the
    compression is a transport detail, not a value shape).
    """


# ----------------------------------------------------------------------
# Varints
# ----------------------------------------------------------------------
def encode_varint(value: int) -> bytes:
    """Unsigned LEB128."""
    if value < 0:
        raise CodecError("varints are unsigned")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int) -> Tuple[int, int]:
    """Returns ``(value, next_offset)``."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise CodecError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 1024:  # Python ints are unbounded; cap for sanity
            raise CodecError("varint too long")


def zigzag(value: int) -> int:
    """Map signed to unsigned: 0,-1,1,-2 -> 0,1,2,3 (unbounded ints)."""
    return value << 1 if value >= 0 else ((-value) << 1) - 1


def unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


# ----------------------------------------------------------------------
# Values
# ----------------------------------------------------------------------
def encode(value: Any) -> bytes:
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def _encode_into(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(ord("N"))
    elif value is True:
        out.append(ord("T"))
    elif value is False:
        out.append(ord("F"))
    elif isinstance(value, int):
        out.append(ord("i"))
        out.extend(encode_varint(zigzag(value)))
    elif isinstance(value, float):
        out.append(ord("d"))
        out.extend(struct.pack(">d", value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(ord("s"))
        out.extend(encode_varint(len(raw)))
        out.extend(raw)
    elif isinstance(value, (bytes, bytearray)):
        out.append(ord("b"))
        out.extend(encode_varint(len(value)))
        out.extend(value)
    elif isinstance(value, KeyList):
        out.append(ord("P"))
        out.extend(encode_varint(len(value)))
        prev = b""
        for item in value:
            if not isinstance(item, str):
                raise CodecError("KeyList items must be strings")
            raw = item.encode("utf-8")
            shared = 0
            limit = min(len(prev), len(raw))
            while shared < limit and prev[shared] == raw[shared]:
                shared += 1
            suffix = raw[shared:]
            out.extend(encode_varint(shared))
            out.extend(encode_varint(len(suffix)))
            out.extend(suffix)
            prev = raw
    elif isinstance(value, (list, tuple)):
        out.append(ord("l"))
        out.extend(encode_varint(len(value)))
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, dict):
        out.append(ord("m"))
        out.extend(encode_varint(len(value)))
        for key, item in value.items():
            if not isinstance(key, str):
                raise CodecError(f"dict keys must be strings, got {key!r}")
            _encode_into(key, out)
            _encode_into(item, out)
    else:
        raise CodecError(f"cannot encode {type(value).__name__}")


def decode(data: bytes) -> Any:
    """Decode exactly one value; trailing bytes are an error."""
    value, offset = decode_prefix(data, 0)
    if offset != len(data):
        raise CodecError(f"{len(data) - offset} trailing bytes")
    return value


def decode_prefix(data: bytes, offset: int) -> Tuple[Any, int]:
    if offset >= len(data):
        raise CodecError("truncated value")
    tag = data[offset]
    offset += 1
    if tag == ord("N"):
        return None, offset
    if tag == ord("T"):
        return True, offset
    if tag == ord("F"):
        return False, offset
    if tag == ord("i"):
        raw, offset = decode_varint(data, offset)
        return unzigzag(raw), offset
    if tag == ord("d"):
        if offset + 8 > len(data):
            raise CodecError("truncated float")
        return struct.unpack(">d", data[offset : offset + 8])[0], offset + 8
    if tag == ord("s"):
        length, offset = decode_varint(data, offset)
        if offset + length > len(data):
            raise CodecError("truncated string")
        return data[offset : offset + length].decode("utf-8"), offset + length
    if tag == ord("b"):
        length, offset = decode_varint(data, offset)
        if offset + length > len(data):
            raise CodecError("truncated bytes")
        return bytes(data[offset : offset + length]), offset + length
    if tag == ord("l"):
        count, offset = decode_varint(data, offset)
        items = []
        for _ in range(count):
            item, offset = decode_prefix(data, offset)
            items.append(item)
        return items, offset
    if tag == ord("P"):
        count, offset = decode_varint(data, offset)
        strings = []
        prev = b""
        for _ in range(count):
            shared, offset = decode_varint(data, offset)
            if shared > len(prev):
                raise CodecError(f"bad shared prefix {shared} > {len(prev)}")
            length, offset = decode_varint(data, offset)
            if offset + length > len(data):
                raise CodecError("truncated key suffix")
            raw = prev[:shared] + data[offset : offset + length]
            offset += length
            strings.append(raw.decode("utf-8"))
            prev = raw
        return strings, offset
    if tag == ord("m"):
        count, offset = decode_varint(data, offset)
        out = {}
        for _ in range(count):
            key, offset = decode_prefix(data, offset)
            if not isinstance(key, str):
                raise CodecError("dict keys must be strings")
            value, offset = decode_prefix(data, offset)
            out[key] = value
        return out, offset
    raise CodecError(f"unknown tag {tag:#x}")
