"""Networking substrate: wire codec, framed RPC over asyncio TCP, and a
deterministic discrete-event network simulator."""

from .codec import CodecError, KeyList, decode, decode_prefix, encode
from .protocol import (
    ERR,
    METHODS,
    OK,
    FrameBuffer,
    ProtocolError,
    decode_batch_args,
    decode_message,
    encode_batch_args,
    encode_request,
    encode_response,
    frame,
    parse_request,
    parse_response,
)
from .protocol import PUSH, encode_push, parse_push
from .rpc_client import RpcClient, RpcError, SyncRpcClient
from .rpc_server import RpcServer, ThreadedRpcService
from .simnet import SimError, SimHost, SimNetwork

__all__ = [
    "CodecError",
    "ERR",
    "FrameBuffer",
    "KeyList",
    "METHODS",
    "OK",
    "PUSH",
    "ProtocolError",
    "RpcClient",
    "RpcError",
    "RpcServer",
    "ThreadedRpcService",
    "SimError",
    "SimHost",
    "SimNetwork",
    "SyncRpcClient",
    "decode",
    "decode_batch_args",
    "decode_message",
    "decode_prefix",
    "encode",
    "encode_batch_args",
    "encode_push",
    "encode_request",
    "encode_response",
    "frame",
    "parse_push",
    "parse_request",
    "parse_response",
]
