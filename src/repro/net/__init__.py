"""Networking substrate: wire codec, framed RPC over asyncio TCP, and a
deterministic discrete-event network simulator."""

from .codec import CodecError, KeyList, decode, decode_prefix, encode
from .protocol import (
    ERR,
    METHODS,
    OK,
    FrameBuffer,
    ProtocolError,
    decode_batch_args,
    decode_message,
    encode_batch_args,
    encode_request,
    encode_response,
    frame,
    parse_request,
    parse_response,
)
from .rpc_client import RpcClient, RpcError, SyncRpcClient
from .rpc_server import RpcServer
from .simnet import SimError, SimHost, SimNetwork

__all__ = [
    "CodecError",
    "ERR",
    "FrameBuffer",
    "KeyList",
    "METHODS",
    "OK",
    "ProtocolError",
    "RpcClient",
    "RpcError",
    "RpcServer",
    "SimError",
    "SimHost",
    "SimNetwork",
    "SyncRpcClient",
    "decode",
    "decode_batch_args",
    "decode_message",
    "decode_prefix",
    "encode",
    "encode_batch_args",
    "encode_request",
    "encode_response",
    "frame",
    "parse_request",
    "parse_response",
]
