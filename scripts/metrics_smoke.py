#!/usr/bin/env python3
"""End-to-end smoke of the observability surface, for the CI chaos lane.

Boots a real ``ThreadedRpcService`` (its own thread, genuine TCP),
drives traffic through ``SyncRpcClient``, hosts the Prometheus endpoint
on the service's loop, then scrapes ``GET /metrics`` over HTTP like a
Prometheus server would and asserts the exposition text is well-formed
and carries the series the README documents.  Exits non-zero with a
diagnostic on any failure.

Run from the repo root: ``PYTHONPATH=src python scripts/metrics_smoke.py``.
"""

from __future__ import annotations

import asyncio
import re
import shutil
import sys
import tempfile
import urllib.error
import urllib.request

from repro.apps.twip import TIMELINE_JOIN
from repro.core.load import OverloadPolicy
from repro.core.server import PequodServer
from repro.metrics import MetricsHttpServer
from repro.net.rpc_client import SyncRpcClient
from repro.net.rpc_server import ThreadedRpcService
from repro.store.keys import prefix_upper_bound

SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? '
    r"[-+]?([0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|Inf|NaN)$"
)

#: Series the README's metric catalog promises; the scrape must carry
#: at least one sample of each family.
REQUIRED_FAMILIES = (
    "repro_join_validations_total",
    "repro_join_memo_hits_total",
    "repro_pending_log_depth",
    "repro_status_ranges",
    "repro_table_memory_bytes",
    "repro_memory_bytes",
    "repro_rpc_frame_latency_seconds_bucket",
    "repro_rpc_window_occupancy_bucket",
    "repro_overloaded",
    "repro_stat",
    # The compiled write path (the server drives a materialize-then-post
    # sequence, so the plan counters must be live, not just present).
    "repro_write_plan_compiles_total",
    "repro_write_plan_fires_total",
    "repro_write_batched_installs_total",
    "repro_write_whole_table_fastpath_hits_total",
    "repro_write_fanout_max",
    # The persistence tier (the server below runs with a data dir and
    # the disk-backed store, so every family must be present).
    "repro_persist_wal_bytes",
    "repro_persist_segments",
    "repro_persist_checkpoints_total",
    "repro_persist_recovery_ms",
    "repro_persist_segment_probes",
    "repro_persist_bloom_negatives",
    "repro_persist_spilled_values",
    "repro_persist_spill_segments",
    "repro_persist_flush_seconds_bucket",
    "repro_persist_compaction_seconds_bucket",
)

#: Series a *write-around* deployment must additionally expose (the
#: scrape below runs against a second, mode="write-around" server).
CDC_FAMILIES = (
    "repro_cdc_feed_depth",
    "repro_cdc_feed_high_water",
    "repro_cdc_journal_bytes",
    "repro_cdc_consumer_lag_records",
    "repro_cdc_consumer_lag_seconds",
    "repro_cdc_backfill_active",
    "repro_cdc_records_applied_total",
    "repro_cdc_records_skipped_total",
    "repro_cdc_batches_applied_total",
    "repro_cdc_backfill_rows_total",
    "repro_cdc_backfill_chunks_total",
    "repro_cdc_propagation_lag_seconds_bucket",
)


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.12 has NoReturn
    print(f"metrics smoke FAILED: {message}", file=sys.stderr)
    raise SystemExit(1)


def drive_traffic(port: int) -> None:
    client = SyncRpcClient("127.0.0.1", port)
    try:
        client.put("s|ann|bob", "1")
        client.put("p|bob|0001", "hello")
        client.scan("t|ann|", prefix_upper_bound("t|ann|"))
        client.put("p|bob|0002", "again")
        client.scan("t|ann|", prefix_upper_bound("t|ann|"))
        for i in range(20):
            client.put(f"p|liz|{i:04d}", "x" * 100)  # spill fodder
        stats = client.stats()
        if "op_get" not in stats and "op_scan" not in stats:
            fail(f"stats() over RPC lacks op counters: {sorted(stats)[:8]}")
    finally:
        client.close()


def drive_persistence(server: PequodServer) -> None:
    """Exercise the durability tier so its families carry real values:
    a checkpoint (WAL -> segment), a value spill, and a bloom-answered
    negative probe."""
    server.checkpoint()
    if server.store.spill_all() <= 0:
        fail("spill_all moved no bytes on the disk-backed store")
    server.persist.segments.read("absent|key")


def check_exposition(text: str, families=REQUIRED_FAMILIES) -> int:
    """Validate Prometheus text format; return the number of samples."""
    helped, typed = set(), set()
    samples = 0
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if parts[3] not in ("counter", "gauge", "histogram"):
                fail(f"line {lineno}: bad TYPE {line!r}")
            typed.add(parts[2])
            continue
        if line.startswith("#"):
            fail(f"line {lineno}: unknown comment {line!r}")
        if not SAMPLE_RE.match(line):
            fail(f"line {lineno}: malformed sample {line!r}")
        samples += 1
        name = line.split("{")[0].split(" ")[0]
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in typed and family not in typed:
            fail(f"line {lineno}: sample {name} precedes its # TYPE")
    if helped != typed:
        fail(f"HELP/TYPE mismatch: {sorted(helped ^ typed)}")
    for family in families:
        if not re.search(rf"^{re.escape(family)}(\{{| )", text, re.M):
            fail(f"required series {family} absent from scrape")
    return samples


def scrape_cdc(loop) -> int:
    """Boot a write-around server, drive it, and scrape its CDC family
    over HTTP; the records-applied counter must be live (> 0)."""
    server = PequodServer(mode="write-around")
    metrics = MetricsHttpServer(server.metrics_text)
    try:
        server.add_join(TIMELINE_JOIN)
        server.put("s|ann|bob", "1")
        server.put("p|bob|0001", "hello")
        server.put("p|bob|0002", "again")
        server.settle_cdc()
        server.scan("t|ann|", prefix_upper_bound("t|ann|"))
        asyncio.run_coroutine_threadsafe(metrics.start(), loop).result(
            timeout=5
        )
        url = f"http://127.0.0.1:{metrics.port}/metrics"
        with urllib.request.urlopen(url, timeout=5) as resp:
            text = resp.read().decode()
        samples = check_exposition(text, families=CDC_FAMILIES)
        applied = re.search(
            r"^repro_cdc_records_applied_total (\S+)$", text, re.M
        )
        if applied is None or float(applied.group(1)) <= 0:
            fail("write-around pump applied no records during the drive")
        return samples
    finally:
        asyncio.run_coroutine_threadsafe(metrics.close(), loop).result(
            timeout=5
        )
        server.close()


def main() -> int:
    policy = OverloadPolicy(mode="degrade", max_staleness=5.0)
    data_dir = tempfile.mkdtemp(prefix="pequod-metrics-smoke-")
    server = PequodServer(
        overload_policy=policy,
        store_impl="disk",
        data_dir=data_dir,
        wal_fsync="batch",
    )
    server.add_join(TIMELINE_JOIN)
    service = ThreadedRpcService(server)
    metrics = MetricsHttpServer(server.metrics_text)
    try:
        drive_traffic(service.port)
        drive_persistence(server)
        asyncio.run_coroutine_threadsafe(
            metrics.start(), service._loop  # noqa: SLF001 - loopback smoke
        ).result(timeout=5)
        url = f"http://127.0.0.1:{metrics.port}/metrics"
        with urllib.request.urlopen(url, timeout=5) as resp:
            if resp.status != 200:
                fail(f"GET /metrics -> {resp.status}")
            ctype = resp.headers.get("Content-Type", "")
            if not ctype.startswith("text/plain"):
                fail(f"unexpected content type {ctype!r}")
            text = resp.read().decode()
        samples = check_exposition(text)
        fires = re.search(
            r"^repro_write_plan_fires_total (\S+)$", text, re.M
        )
        if fires is None or float(fires.group(1)) <= 0:
            fail("compiled write path never fired during the drive")
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{metrics.port}/other", timeout=5
            ) as resp:
                fail(f"GET /other -> {resp.status}, expected 404")
        except urllib.error.HTTPError as exc:
            if exc.code != 404:
                fail(f"GET /other -> {exc.code}, expected 404")
        cdc_samples = scrape_cdc(service._loop)  # noqa: SLF001
        print(f"metrics smoke OK: {samples} samples at {url}, "
              f"{cdc_samples} write-around samples")
        return 0
    finally:
        asyncio.run_coroutine_threadsafe(
            metrics.close(), service._loop
        ).result(timeout=5)
        service.stop()
        server.close()
        shutil.rmtree(data_dir, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
