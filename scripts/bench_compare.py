#!/usr/bin/env python3
"""Compare a bench-smoke JSON result against a committed baseline.

CI runs the bench smoke at a reduced scale and writes ``SMOKE_*.json``;
this script diffs each smoke result against the corresponding committed
``BENCH_*.json`` and fails the job when a configuration's *speedup*
regressed past the threshold.  Speedup (each experiment's ratio over
its own in-run baseline) is the only series that transfers across
machines and scales — absolute ops/s on a shared CI runner is noise.

Exit status: 0 clean, 1 regression past ``--fail``, 2 usage/shape error.
Stdlib only; no repo imports, so it runs before the package installs.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

#: How a point identifies itself, per experiment family.  The first key
#: present in a point is its identity.
IDENTITY_KEYS = ("config", "depth", "mode", "batch_size", "backend")

#: The series compared.  Ratio-over-own-baseline; machine-independent.
METRIC = "speedup"


def point_identity(point: Dict[str, object]) -> Optional[str]:
    for key in IDENTITY_KEYS:
        if key in point:
            return f"{key}={point[key]}"
    return None


def load_points(path: str) -> Dict[str, float]:
    """Map point identity -> speedup for one bench JSON file."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"cannot read {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)
    points = data.get("points")
    if not isinstance(points, list) or not points:
        print(f"{path}: no 'points' list", file=sys.stderr)
        raise SystemExit(2)
    out: Dict[str, float] = {}
    for point in points:
        ident = point_identity(point)
        if ident is None or METRIC not in point:
            continue
        out[ident] = float(point[METRIC])
    if not out:
        print(f"{path}: no points carry '{METRIC}'", file=sys.stderr)
        raise SystemExit(2)
    return out


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    warn_at: float,
    fail_at: float,
) -> Tuple[List[str], bool]:
    lines: List[str] = []
    failed = False
    width = max(len(k) for k in baseline)
    for ident in sorted(baseline):
        base = baseline[ident]
        cur = current.get(ident)
        if cur is None:
            lines.append(f"FAIL {ident:<{width}}  missing from current run")
            failed = True
            continue
        # Regression fraction: how much of the baseline speedup we lost.
        # Improvements are negative and never flagged.
        loss = (base - cur) / base if base > 0 else 0.0
        verdict = "ok  "
        if loss > fail_at:
            verdict, failed = "FAIL", True
        elif loss > warn_at:
            verdict = "WARN"
        lines.append(
            f"{verdict} {ident:<{width}}  baseline {base:6.2f}x  "
            f"current {cur:6.2f}x  ({-loss * 100:+.1f}%)"
        )
    for ident in sorted(set(current) - set(baseline)):
        lines.append(f"note {ident:<{width}}  new point (no baseline)")
    return lines, failed


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("current", help="freshly produced smoke JSON")
    parser.add_argument(
        "--warn", type=float, default=0.10, metavar="FRAC",
        help="warn when speedup drops by more than this fraction",
    )
    parser.add_argument(
        "--fail", type=float, default=0.25, metavar="FRAC",
        help="fail when speedup drops by more than this fraction",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.warn <= args.fail:
        print("need 0 <= --warn <= --fail", file=sys.stderr)
        return 2
    base = load_points(args.baseline)
    cur = load_points(args.current)
    print(f"bench regression gate: {args.current} vs {args.baseline}")
    lines, failed = compare(base, cur, args.warn, args.fail)
    for line in lines:
        print(f"  {line}")
    if failed:
        print(
            f"REGRESSION: speedup dropped more than {args.fail * 100:.0f}% "
            "(or a baseline point vanished)"
        )
        return 1
    print("bench gate clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
