"""Durability tier: recovery replay, spilled reads, bloom skip rate.

Not a paper figure — Pequod's prototype was RAM-only; this measures
the persistence subsystem the reproduction adds on top (WAL +
checkpoint segments + value spill).  The claims locked in here:

* a recovered server is byte-identical to the one that shut down
  (the sha256 state digest over the full keyspace matches);
* recovery replay is not slower than live ingest was — replay skips
  join maintenance and journaling, so its throughput floor is the
  ingest rate (with slack for shared smoke runners);
* bloom filters answer >= 90% of negative segment probes from memory
  when every spill wave's key range overlaps every probe — the
  worst case for range-based pruning, the design case for blooms.
"""

from __future__ import annotations

import os

import pytest

from conftest import print_block
from repro.bench.harness import run_persistence
from repro.bench.report import format_table

#: REPRO_BENCH_PERSIST_KEYS shrinks the keyspace for smoke runs (CI).
_SMOKE = "REPRO_BENCH_PERSIST_KEYS" in os.environ


@pytest.fixture(scope="module")
def persistence_result():
    n_keys = int(os.environ.get("REPRO_BENCH_PERSIST_KEYS", "100000"))
    return run_persistence(n_keys=n_keys, read_ops=max(500, n_keys // 25))


def test_recovery_is_bounded_and_exact(benchmark, persistence_result):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    points = persistence_result["points"]
    print_block(format_table(
        ["configuration", "wall s", "ops/s", "ratio"],
        [(p["config"], f"{p.get('wall_s', 0):.3f}",
          f"{p.get('ops_per_sec', 0):.0f}", f"{p['speedup']:.2f}x")
         for p in points],
        title="persistence: recovery, spilled reads, bloom skip",
    ))
    assert persistence_result["state_identical"], (
        "recovered state diverged from the pre-shutdown digest"
    )
    recovery = next(p for p in points if p["config"] == "recovery")
    # Replay does strictly less work than ingest; on a quiet machine it
    # comes out ahead.  Smoke runs on shared runners get a tolerance.
    floor = 0.5 if _SMOKE else 0.8
    assert recovery["speedup"] >= floor, (
        f"recovery replayed at {recovery['speedup']:.2f}x the ingest "
        f"rate, under the {floor}x floor"
    )
    benchmark.extra_info["recovery_ratio"] = round(recovery["speedup"], 3)


def test_bloom_skips_negative_probes(benchmark, persistence_result):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    bloom = persistence_result["bloom"]
    skip = bloom["skip_ratio"]
    print_block(
        f"bloom: {bloom['probes']:.0f} probes, "
        f"{bloom['negatives']:.0f} skipped, "
        f"{bloom['false_positives']:.0f} false positives "
        f"(skip ratio {skip:.3f})"
    )
    # The acceptance bar: blooms answer >= 90% of negative segment
    # probes without touching the file.  Hashing is deterministic, so
    # this holds at smoke scale too.
    assert skip >= 0.9, f"bloom skip ratio {skip:.3f} under 0.9"
    benchmark.extra_info["bloom_skip"] = round(skip, 4)


def test_spill_moves_bytes_and_reads_survive(benchmark, persistence_result):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert persistence_result["spill"]["freed_bytes"] > 0, (
        "spill_all freed nothing on the disk-backed store"
    )
    disk = next(
        p for p in persistence_result["points"] if p["config"] == "disk_reads"
    )
    # Spilled random gets run slower than resident ones, but not
    # catastrophically: the bloom-guarded single-segment read path
    # keeps the penalty bounded.
    assert disk["speedup"] > 0.005, (
        f"spilled reads at {disk['speedup']:.4f}x of resident rate"
    )
    benchmark.extra_info["disk_read_ratio"] = round(disk["speedup"], 4)
