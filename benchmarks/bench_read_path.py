"""Read path: the §4 lookup-path overhaul, layer by layer.

Not a paper figure — this measures the profile-guided read-path
overhaul (compiled key patterns, the validation memo, the batched scan
loop, and the blocked sorted-array store) on the read-heavy Twip scan
workload.  The claims locked in here:

* the fully-optimized read path beats the faithful pre-overhaul
  baseline by >= 1.5x on ops/sec at full scale (the acceptance bar;
  smoke runs on shared machines get a tolerance);
* output state is byte-identical across every configuration — the
  benchmark doubles as an equivalence check for the compiled pattern
  paths and both ``OrderedMap`` implementations;
* compiled pattern matching beats the reference matcher in isolation
  (the macro workload buries it under scan work).
"""

from __future__ import annotations

import os

import pytest

from conftest import print_block
from repro.bench.harness import run_pattern_micro, run_read_path
from repro.bench.report import format_table

#: REPRO_BENCH_READ_OPS shrinks the stream for smoke runs (CI).
_SMOKE = "REPRO_BENCH_READ_OPS" in os.environ


@pytest.fixture(scope="module")
def read_path_result():
    total_ops = int(os.environ.get("REPRO_BENCH_READ_OPS", "20000"))
    n_users = max(50, min(400, total_ops // 50))
    return run_read_path(n_users=n_users, total_ops=total_ops)


def test_read_path_layers(benchmark, read_path_result):
    """The layer sweep: cumulative speedups and the correctness guard."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    points = read_path_result["points"]
    print_block(format_table(
        ["configuration", "cpu s", "ops/s", "speedup"],
        [(p["config"], f"{p['cpu_s']:.3f}", f"{p['ops_per_sec']:.0f}",
          f"{p['speedup']:.2f}x") for p in points],
        title="read-path overhaul, read-heavy Twip scan workload",
    ))
    assert read_path_result["state_identical"], (
        "optimized read path changed observable output state"
    )
    # The acceptance bar: >= 1.5x end to end at full scale.  Smoke runs
    # (REPRO_BENCH_READ_OPS set, e.g. CI on a shared runner) shrink the
    # stream, which thins the margin; they assert a looser tripwire.
    floor = 1.15 if _SMOKE else 1.5
    assert read_path_result["speedup_full"] >= floor, (
        f"read path speedup {read_path_result['speedup_full']:.2f}x "
        f"under the {floor}x floor"
    )
    benchmark.extra_info["speedup_full"] = round(
        read_path_result["speedup_full"], 3
    )


def test_pattern_compilation_micro(benchmark):
    """Compiled matching must beat the reference matcher in isolation."""
    rounds = 20 if _SMOKE else 200
    micro = benchmark.pedantic(
        lambda: run_pattern_micro(rounds=rounds), rounds=1, iterations=1
    )
    print_block("\n".join(
        f"pattern match [{name}]: compiled {m['compiled_per_sec'] / 1e6:.2f}M/s, "
        f"reference {m['reference_per_sec'] / 1e6:.2f}M/s ({m['speedup']:.2f}x)"
        for name, m in micro.items()
    ))
    for name, m in micro.items():
        assert m["speedup"] > 1.1, (name, m["speedup"])
        benchmark.extra_info[f"{name}_speedup"] = round(m["speedup"], 3)
