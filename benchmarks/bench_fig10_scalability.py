"""Figure 10: distributed Pequod throughput versus compute servers.

Paper result (§5.5): growing the compute tier from 12 to 48 servers on
a fixed Twip workload raised throughput 3x (1.42M -> 4.27M qps) — not
4x, because base-data duplication and subscription maintenance grow
with the fleet.  Base-server memory grew 290 -> 297 GB, compute memory
1.2 -> 1.5 TB, and subscription maintenance rose from ~10% to ~16% of
network bytes.

The reproduction runs the same roles (base tier absorbing writes,
compute tier executing the timeline join, per-user read affinity) on
the deterministic simulated network and reports the same four series.
"""

from __future__ import annotations

import pytest

from conftest import print_block
from repro.bench.harness import run_figure10_point
from repro.bench.report import format_table


@pytest.mark.parametrize("servers", (3, 12))
def test_fig10_point(benchmark, servers):
    point = benchmark.pedantic(
        lambda: run_figure10_point(servers, n_users=200, mean_follows=8,
                                   total_ops=3000),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["throughput_qps"] = round(point.throughput_qps)
    benchmark.extra_info["subscription_fraction"] = round(
        point.subscription_fraction, 3
    )


def test_fig10_series(benchmark, fig10_points):
    """Regenerate the Figure 10 table."""
    points = fig10_points
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        (
            p.compute_servers,
            f"{p.throughput_qps / 1e6:.2f}M",
            f"{p.base_memory / 1024:.0f}K",
            f"{p.compute_memory / 1024:.0f}K",
            f"{p.subscription_fraction * 100:.1f}%",
        )
        for p in points
    ]
    print_block(
        format_table(
            ["servers", "modeled qps", "base mem", "compute mem", "sub traffic"],
            rows,
            title=(
                "Figure 10 — scalability "
                "(paper: 1.42M->4.27M qps for 12->48 servers; sub traffic 10%->16%)"
            ),
        )
    )
    qps = [p.throughput_qps for p in points]
    assert all(b > a for a, b in zip(qps, qps[1:])), "throughput must rise"
    speedup = qps[-1] / qps[0]
    servers = points[-1].compute_servers / points[0].compute_servers
    assert speedup <= servers, "scaling must not exceed linear"
    assert points[-1].subscription_fraction > points[0].subscription_fraction
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["server_ratio"] = servers
