"""Figure 10: distributed Pequod throughput versus compute servers.

Paper result (§5.5): growing the compute tier from 12 to 48 servers on
a fixed Twip workload raised throughput 3x (1.42M -> 4.27M qps) — not
4x, because base-data duplication and subscription maintenance grow
with the fleet.  Base-server memory grew 290 -> 297 GB, compute memory
1.2 -> 1.5 TB, and subscription maintenance rose from ~10% to ~16% of
network bytes.

The reproduction has two modes:

* **default** — the real multi-process cluster: N node processes over
  TCP, separate load-driver processes, measured wall-clock throughput.
  Scaling past the machine's core count is not expected (and on a
  1-core box every extra process is pure coordination overhead); the
  assertions are conditioned on ``os.cpu_count()`` accordingly.
* ``--sim`` — the original deterministic simulated network with the
  §5.5 cost model, which reproduces the paper's *shape* (sublinear
  scaling, rising subscription traffic) independent of host hardware.
"""

from __future__ import annotations

import pytest

from conftest import print_block
from repro.bench.report import format_table


# ----------------------------------------------------------------------
# Default mode: real processes, real TCP, measured throughput.
# ----------------------------------------------------------------------
def test_fig10_process_cluster(benchmark, real_cluster_mode):
    import os

    from repro.bench.harness import run_cluster_scaleout

    counts = (1, 2) if (os.cpu_count() or 1) < 4 else (1, 2, 4)
    result = benchmark.pedantic(
        lambda: run_cluster_scaleout(
            proc_counts=counts, total_ops=1600, depth=16, drivers=2,
            n_keys=128,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            p["processes"],
            f"{p['ops_per_sec']:.0f}",
            f"{p['speedup']:.2f}x",
            f"{p['p50_us'] / 1000:.2f}ms",
            f"{p['p99_us'] / 1000:.2f}ms",
        )
        for p in result["points"]
    ]
    print_block(
        format_table(
            ["procs", "ops/s", "vs 1 proc", "p50", "p99"],
            rows,
            title=(
                "Figure 10 — real process cluster "
                f"(machine cores: {result['cpu_cores']})"
            ),
        )
    )
    for p in result["points"]:
        assert p["ops"] > 0 and p["ops_per_sec"] > 0
    # Only claim scaling the hardware can physically deliver.
    if result["cpu_cores"] and result["cpu_cores"] >= max(counts) + 2:
        assert result["max_speedup"] > 1.0, (
            "adding processes on a multi-core host must help"
        )
    benchmark.extra_info["cpu_cores"] = result["cpu_cores"]
    benchmark.extra_info["max_speedup"] = result["max_speedup"]
    benchmark.extra_info["ops_per_sec"] = [
        p["ops_per_sec"] for p in result["points"]
    ]


# ----------------------------------------------------------------------
# --sim mode: the original modeled-cost simulation (paper's shape).
# ----------------------------------------------------------------------
@pytest.mark.parametrize("servers", (3, 12))
def test_fig10_point(benchmark, sim_mode, servers):
    from repro.bench.harness import run_figure10_point

    point = benchmark.pedantic(
        lambda: run_figure10_point(servers, n_users=200, mean_follows=8,
                                   total_ops=3000),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["throughput_qps"] = round(point.throughput_qps)
    benchmark.extra_info["subscription_fraction"] = round(
        point.subscription_fraction, 3
    )


def test_fig10_series(benchmark, sim_mode, fig10_points):
    """Regenerate the Figure 10 table."""
    points = fig10_points
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        (
            p.compute_servers,
            f"{p.throughput_qps / 1e6:.2f}M",
            f"{p.base_memory / 1024:.0f}K",
            f"{p.compute_memory / 1024:.0f}K",
            f"{p.subscription_fraction * 100:.1f}%",
        )
        for p in points
    ]
    print_block(
        format_table(
            ["servers", "modeled qps", "base mem", "compute mem", "sub traffic"],
            rows,
            title=(
                "Figure 10 — scalability "
                "(paper: 1.42M->4.27M qps for 12->48 servers; sub traffic 10%->16%)"
            ),
        )
    )
    qps = [p.throughput_qps for p in points]
    assert all(b > a for a, b in zip(qps, qps[1:])), "throughput must rise"
    speedup = qps[-1] / qps[0]
    servers = points[-1].compute_servers / points[0].compute_servers
    assert speedup <= servers, "scaling must not exceed linear"
    assert points[-1].subscription_fraction > points[0].subscription_fraction
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["server_ratio"] = servers
