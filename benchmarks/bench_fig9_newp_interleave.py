"""Figure 9: Newp interleaved cache joins versus separate ranges.

Paper result (§5.4): colocating article text, vote rank, comments, and
commenter karma into one ``page|`` range makes article reads a single
scan; the interleaved layout wins except when votes (writes) are very
common — the curves meet around a 90% vote rate, where interleaving's
write amplification overtakes the many-RPC read penalty it avoids.
"""

from __future__ import annotations

import pytest

from conftest import print_block
from repro.bench.harness import run_figure9_point
from repro.bench.report import crossover_point, format_series


@pytest.mark.parametrize("layout", ("interleaved", "separate"))
@pytest.mark.parametrize("vote_rate", (0.1, 0.9))
def test_fig9_point(benchmark, layout, vote_rate):
    interleaved = layout == "interleaved"
    run = benchmark.pedantic(
        lambda: run_figure9_point(interleaved, vote_rate, scale=0.4),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["modeled_us"] = round(run.modeled_us)


def test_fig9_series(benchmark, fig9_data):
    """Regenerate the Figure 9 curves (modeled milliseconds)."""
    rates, data = fig9_data
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    xs = [int(r * 100) for r in rates]
    series = {
        name: [r.modeled_us / 1e3 for r in runs] for name, runs in data.items()
    }
    print_block(
        format_series(
            "vote%",
            xs,
            series,
            title="Figure 9 — Newp runtime (modeled ms): interleaved vs separate",
        )
    )
    inter = series["interleaved"]
    sep = series["non-interleaved"]
    # Interleaving wins at low vote rates by a wide margin...
    assert inter[0] < sep[0] / 2
    # ...and the advantage shrinks substantially as writes grow: the
    # cost ratio at 100% votes must be at least 3x closer than at 0%.
    assert inter[-1] / sep[-1] > 3 * (inter[0] / sep[0])
    cross = crossover_point(xs, inter, sep)
    benchmark.extra_info["crossover_vote_pct"] = cross if cross else ">100"
    benchmark.extra_info["advantage_at_0"] = round(sep[0] / inter[0], 2)
    benchmark.extra_info["ratio_at_100"] = round(inter[-1] / sep[-1], 3)
