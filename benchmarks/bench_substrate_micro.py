"""Microbenchmarks of the substrate data structures.

Not a paper figure — these measure the building blocks (red-black
tree, interval tree, wire codec, join engine hot paths) so substrate
regressions are visible independently of the experiment harness.
"""

from __future__ import annotations

import random

from repro.core.server import PequodServer
from repro.net.codec import decode, encode
from repro.store.interval_tree import IntervalTree
from repro.store.rbtree import RBTree

KEYS = [f"p|user{i % 500:04d}|{i:06d}" for i in range(5000)]


def test_micro_rbtree_insert(benchmark):
    def build():
        tree = RBTree()
        for key in KEYS:
            tree.insert(key, "value")
        return tree

    tree = benchmark(build)
    assert len(tree) == len(KEYS)


def test_micro_rbtree_scan(benchmark):
    tree = RBTree()
    for key in KEYS:
        tree.insert(key, "value")

    def scan():
        return sum(1 for _ in tree.nodes("p|user0100|", "p|user0200|"))

    count = benchmark(scan)
    assert count > 0


def test_micro_interval_stab(benchmark):
    tree = IntervalTree()
    rng = random.Random(5)
    for i in range(2000):
        lo = f"{rng.randrange(1000):04d}"
        hi = f"{int(lo) + rng.randrange(1, 50):04d}"
        tree.add(lo, hi, i)

    def stab_all():
        return sum(len(tree.stab(f"{p:04d}")) for p in range(0, 1000, 37))

    total = benchmark(stab_all)
    assert total > 0


def test_micro_codec_roundtrip(benchmark):
    message = [7, "scan", [["t|ann|%06d|bob" % i, "tweet text %d" % i]
                           for i in range(100)]]

    def roundtrip():
        return decode(encode(message))

    out = benchmark(roundtrip)
    assert out == message


def test_micro_timeline_maintenance(benchmark):
    """The hot write path: one post fanned out to 50 materialized
    timelines through eager updaters."""
    server = PequodServer(subtable_config={"t": 2})
    server.add_join(
        "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"
    )
    users = [f"u{i:03d}" for i in range(50)]
    for u in users:
        server.put(f"s|{u}|star", "1")
        server.scan(f"t|{u}|", f"t|{u}}}")
    counter = iter(range(10_000_000))

    def one_post():
        server.put(f"p|star|{next(counter):08d}", "fanout tweet")

    benchmark(one_post)
    assert server.store.count("t|", "t}") >= 50


def test_micro_timeline_check(benchmark):
    """The hot read path: an incremental timeline check over a valid
    (already materialized) range."""
    server = PequodServer(subtable_config={"t": 2})
    server.add_join(
        "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"
    )
    server.put("s|ann|bob", "1")
    for i in range(200):
        server.put(f"p|bob|{i:08d}", f"tweet {i}")
    server.scan("t|ann|", "t|ann}")

    def check():
        return server.scan("t|ann|00000150", "t|ann}")

    rows = benchmark(check)
    assert len(rows) == 50
