"""Celebrity cache joins (§2.3).

Paper claim: "In our tests, celebrity timelines don't offer performance
advantages, but they do save memory."  Copying a celebrity's posts into
tens of millions of timelines costs memory proportional to fan-out; the
pull join serves them from the single time-ordered ``ct|`` helper range
at read time instead.

This benchmark runs the same fan-heavy workload with and without the
celebrity join set and reports the memory ratio and the (absence of a)
runtime win.
"""

from __future__ import annotations

import pytest

from conftest import print_block
from repro.apps.social_graph import generate_graph
from repro.apps.twip import TwipApp
from repro.bench.costmodel import DEFAULT_MODEL
from repro.bench.report import format_table

USERS = 150
MEAN_FOLLOWS = 12
POSTS_PER_USER = 2
CHECKS = 3


def run_config(celebrity_threshold):
    graph = generate_graph(USERS, MEAN_FOLLOWS, seed=31)
    app = TwipApp(celebrity_threshold=celebrity_threshold, graph=graph)
    app.load_graph(graph)
    time = 0
    for user in graph.users:
        for _ in range(POSTS_PER_USER):
            app.post(user, time, f"tweet {time} from {user} " + "pad " * 8)
            time += 1
    app.server.stats.reset()
    for _ in range(CHECKS):
        for user in graph.users:
            app.timeline(user)
    return (
        DEFAULT_MODEL.runtime_us(app.server.stats.snapshot()),
        app.server.memory_bytes(),
        app,
        graph,
    )


@pytest.fixture(scope="module")
def configs():
    plain = run_config(None)
    graph = plain[3]
    threshold = max(5, graph.max_follower_count() // 3)
    celeb = run_config(threshold)
    return plain, celeb, threshold


def test_celebrity_saves_memory(benchmark, configs):
    plain, celeb, threshold = configs
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _, plain_mem, plain_app, graph = plain
    _, celeb_mem, celeb_app, _ = celeb
    ratio = plain_mem / celeb_mem
    print_block(
        format_table(
            ["configuration", "memory B"],
            [("push-only timelines", plain_mem),
             (f"celebrity pull (>{threshold} followers)", celeb_mem)],
            title=f"§2.3 celebrity joins: {ratio:.2f}x less memory",
        )
    )
    assert celeb_mem < plain_mem
    benchmark.extra_info["memory_ratio"] = round(ratio, 3)


def test_celebrity_offers_no_runtime_win(benchmark, configs):
    """The paper: celebrity timelines don't offer performance
    advantages — read-time recomputation offsets the avoided copies."""
    plain, celeb, _ = configs
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    plain_time = plain[0]
    celeb_time = celeb[0]
    print_block(
        f"§2.3 celebrity joins runtime: plain {plain_time:.0f}us vs "
        f"celebrity {celeb_time:.0f}us (paper: no performance advantage)"
    )
    assert celeb_time > plain_time * 0.8  # no significant speedup
    benchmark.extra_info["celebrity_over_plain"] = round(
        celeb_time / plain_time, 3
    )


def test_celebrity_results_identical(benchmark, configs):
    plain, celeb, _ = configs
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _, _, plain_app, graph = plain
    _, _, celeb_app, _ = celeb
    for user in graph.users[::10]:
        assert plain_app.timeline(user) == celeb_app.timeline(user), user
