"""Write path: the compiled-plan overhaul on the celebrity problem.

Not a paper figure — this measures PR 8's write-side overhaul
(per-join execution plans, batched fan-out installs, whole-table
validity) on the workload the paper calls the celebrity problem: one
poster fanned out to thousands of materialized timelines.  The claims
locked in here:

* the compiled write path beats the interpreted reference by >= 1.8x
  on fan-out writes at full scale (the acceptance bar; smoke runs on
  shared machines get a tolerance);
* final store state is byte-identical across every configuration —
  the benchmark doubles as the equivalence check for the compiled
  fire path and the batched install path;
* the whole-table validity fast path actually engages on quiescent
  cross-timeline scans (hits > 0).
"""

from __future__ import annotations

import os

import pytest

from conftest import print_block
from repro.bench.harness import run_write_path
from repro.bench.report import format_table

#: REPRO_BENCH_FAN_OUT shrinks the fan-out for smoke runs (CI).
_SMOKE = "REPRO_BENCH_FAN_OUT" in os.environ


@pytest.fixture(scope="module")
def write_path_result():
    fan_out = int(os.environ.get("REPRO_BENCH_FAN_OUT", "10000"))
    repeats = 1 if _SMOKE else 2
    return run_write_path(fan_out=fan_out, repeats=repeats)


def test_write_path_layers(benchmark, write_path_result):
    """The layer sweep: cumulative speedups and the correctness guard."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    points = write_path_result["points"]
    print_block(format_table(
        ["configuration", "cpu s", "posts/s", "speedup"],
        [(p["config"], f"{p['cpu_s']:.3f}", f"{p['ops_per_sec']:.1f}",
          f"{p['speedup']:.2f}x") for p in points],
        title="write-path overhaul, celebrity fan-out workload",
    ))
    assert write_path_result["state_identical"], (
        "compiled write path changed observable output state"
    )
    # The acceptance bar: >= 1.8x end to end at fan-out 10k.  Smoke
    # runs (REPRO_BENCH_FAN_OUT set, e.g. CI on a shared runner)
    # shrink the fan-out, which thins the margin; they assert a looser
    # tripwire.
    floor = 1.2 if _SMOKE else 1.8
    assert write_path_result["speedup_full"] >= floor, (
        f"write path speedup {write_path_result['speedup_full']:.2f}x "
        f"under the {floor}x floor"
    )
    benchmark.extra_info["speedup_full"] = round(
        write_path_result["speedup_full"], 3
    )


def test_whole_table_fastpath_engages(benchmark, write_path_result):
    """Quiescent cross-timeline scans must take the summary fast path."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    hits = write_path_result["whole_table_fastpath_hits"]
    print_block(f"whole-table fast-path hits: {int(hits)}")
    assert hits > 0, "whole-table validity fast path never engaged"
    benchmark.extra_info["fastpath_hits"] = int(hits)
