"""Write batching: throughput of grouped vs per-key writes.

Not a paper figure — this measures the batched write-propagation
subsystem on the high-write Twip workload (posts plus edit bursts,
every timeline warmed so each write fans out to its followers).  The
claims locked in here:

* batched application at sizes >= 32 beats per-key application on
  ops/sec — per-write maintenance overheads amortize across the group
  and intra-batch superseded writes skip their fan-out entirely;
* output state is byte-identical across batch sizes (coalescing is
  invisible to readers).
"""

from __future__ import annotations

import os

import pytest

from conftest import print_block
from repro.bench.harness import run_write_batching
from repro.bench.report import write_batching_table


@pytest.fixture(scope="module")
def batching_result():
    # REPRO_BENCH_POSTS shrinks the stream for smoke runs (CI).
    posts = int(os.environ.get("REPRO_BENCH_POSTS", "4096"))
    return run_write_batching(posts=posts)


@pytest.mark.parametrize("batch_size", (1, 8, 32, 128))
def test_write_batching_point(benchmark, batch_size):
    result = benchmark.pedantic(
        lambda: run_write_batching(
            posts=1024, batch_sizes=(batch_size,)
        ),
        rounds=1,
        iterations=1,
    )
    point = result["points"][0]
    benchmark.extra_info["ops_per_sec"] = round(point["ops_per_sec"])
    benchmark.extra_info["coalesced_ops"] = int(point["coalesced_ops"])


def test_write_batching_series(benchmark, batching_result):
    """The batch-size sweep: speedups and the correctness guard."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    points = batching_result["points"]
    print_block(write_batching_table(points))
    assert batching_result["state_identical"]
    by_size = {int(p["batch_size"]): p for p in points}
    # The headline claim: grouped writes win from batch size 32 up.
    # Smoke runs (REPRO_BENCH_POSTS set, e.g. CI on a shared runner)
    # get a tolerance: the shrunken stream thins the ~1.3-1.5x margin
    # and the claim is asserted strictly at full scale.
    margin = 0.85 if "REPRO_BENCH_POSTS" in os.environ else 1.0
    assert by_size[32]["ops_per_sec"] > by_size[1]["ops_per_sec"] * margin
    assert by_size[128]["ops_per_sec"] > by_size[1]["ops_per_sec"] * margin
    benchmark.extra_info["speedup_at_32"] = round(by_size[32]["speedup"], 3)
    benchmark.extra_info["speedup_at_128"] = round(by_size[128]["speedup"], 3)
