"""Figure 8: materialization strategy versus fraction of active users.

Paper result (§5.3): with check:post ratios growing from 1:1 to 100:1
as the active fraction rises, *no materialization* degrades by orders
of magnitude, *dynamic materialization* (Pequod's default) wins until
roughly 90% of users are active, and *full materialization* is slightly
better (1.08x) at 100% because it never pays first-login computation.
"""

from __future__ import annotations

import pytest

from conftest import print_block
from repro.apps.social_graph import generate_graph
from repro.bench.harness import run_figure8_point
from repro.bench.report import format_series

STRATEGIES = ("none", "full", "dynamic")


@pytest.fixture(scope="module")
def graph():
    return generate_graph(150, 8, seed=7)


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("active_pct", (10, 50, 100))
def test_fig8_point(benchmark, graph, strategy, active_pct):
    run = benchmark.pedantic(
        lambda: run_figure8_point(graph, strategy, active_pct, posts=150),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["modeled_us"] = round(run.modeled_us)


def test_fig8_series(benchmark, fig8_data):
    """Regenerate the Figure 8 curves (modeled milliseconds)."""
    pcts, data = fig8_data
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    series = {
        name: [r.modeled_us / 1e3 for r in runs] for name, runs in data.items()
    }
    print_block(
        format_series(
            "%active",
            list(pcts),
            series,
            title="Figure 8 — runtime (modeled ms) by materialization strategy",
        )
    )
    none, full, dynamic = series["none"], series["full"], series["dynamic"]
    # Shape assertions: the paper's three claims.
    assert dynamic[1] < none[1] and dynamic[-1] < none[-1]
    assert dynamic[0] < full[0]
    assert full[-1] < dynamic[-1] * 1.15
    benchmark.extra_info["full_over_dynamic_at_100"] = round(
        dynamic[-1] / full[-1], 3
    )
