"""Ablations of the §4 implementation optimizations.

Paper measurements on the Twip benchmark:

* subtables (§4.1): 1.55x faster, 1.17x more memory;
* output hints (§4.2): 1.11x faster;
* value sharing (§4.3): 1.14x less memory, no time cost.

Each ablation runs the same workload with one optimization toggled and
reports the runtime and memory ratios.  A final sensitivity check
perturbs the cost model to show the Figure-7 ordering is not an
artifact of the chosen constants.
"""

from __future__ import annotations

import pytest

from conftest import print_block
from repro.apps.twip import TwipApp
from repro.bench.costmodel import CostModel, DEFAULT_MODEL
from repro.bench.report import format_table

#: Fan-out-realistic Twip: the paper's users average >100 followers and
#: checks outnumber posts ~85:1, so §4's optimizations are measured
#: where both post fan-out (hints, sharing) and timeline scans
#: (subtables) carry realistic weight.
FOLLOWERS = 120
POSTS = 60
CHECKS_PER_POST = 40
TEXT = "a thoughtful tweet that is long enough to matter " * 4


def run_variant(**app_kwargs):
    app = TwipApp(**app_kwargs)
    users = [f"u{i:03d}" for i in range(FOLLOWERS)]
    for u in users:
        app.subscribe(u, "star")
        app.subscribe("star", u)  # some reverse edges for realism
    for u in users:
        app.timeline(u)  # materialize every follower's timeline
    app.server.stats.reset()
    for t in range(POSTS):
        app.post("star", t, TEXT)
        for i in range(CHECKS_PER_POST):
            user = users[(t * CHECKS_PER_POST + i * 7) % FOLLOWERS]
            app.timeline(user, since=max(0, t - 2))
    return (
        DEFAULT_MODEL.runtime_us(app.server.stats.snapshot()),
        app.server.memory_bytes(),
    )


@pytest.fixture(scope="module")
def baseline():
    return run_variant()  # subtables + hints + sharing (the full system)


def test_ablation_subtables(benchmark, baseline):
    """§4.1: dropping the subtable hash index costs time, saves memory."""
    time_full, mem_full = baseline
    time_flat, mem_flat = benchmark.pedantic(
        lambda: run_variant(subtables=False), rounds=1, iterations=1
    )
    speedup = time_flat / time_full
    memory_ratio = mem_full / mem_flat
    print_block(
        format_table(
            ["variant", "modeled us", "memory B"],
            [("with subtables", time_full, mem_full),
             ("without subtables", time_flat, mem_flat)],
            title=f"§4.1 subtables: {speedup:.2f}x faster, {memory_ratio:.2f}x memory "
                  "(paper: 1.55x faster, 1.17x memory)",
        )
    )
    assert speedup > 1.05, "subtables must pay for themselves in time"
    assert memory_ratio > 1.0, "subtables must cost bookkeeping memory"
    benchmark.extra_info["speedup"] = round(speedup, 3)
    benchmark.extra_info["memory_ratio"] = round(memory_ratio, 3)


def test_ablation_output_hints(benchmark, baseline):
    """§4.2: output hints avoid tree descents on appends."""
    time_full, _ = baseline
    time_nohints, _ = benchmark.pedantic(
        lambda: run_variant(enable_hints=False), rounds=1, iterations=1
    )
    speedup = time_nohints / time_full
    print_block(
        format_table(
            ["variant", "modeled us"],
            [("with hints", time_full), ("without hints", time_nohints)],
            title=f"§4.2 output hints: {speedup:.3f}x faster (paper: 1.11x)",
        )
    )
    assert speedup > 1.0
    benchmark.extra_info["speedup"] = round(speedup, 3)


def test_ablation_value_sharing(benchmark, baseline):
    """§4.3: value sharing reduces memory with no time regression."""
    time_full, mem_full = baseline
    time_noshare, mem_noshare = benchmark.pedantic(
        lambda: run_variant(enable_sharing=False), rounds=1, iterations=1
    )
    memory_ratio = mem_noshare / mem_full
    print_block(
        format_table(
            ["variant", "modeled us", "memory B"],
            [("with sharing", time_full, mem_full),
             ("without sharing", time_noshare, mem_noshare)],
            title=f"§4.3 value sharing: {memory_ratio:.3f}x less memory "
                  "(paper: 1.14x)",
        )
    )
    assert memory_ratio > 1.0
    assert time_noshare > time_full * 0.9  # sharing must not cost time
    benchmark.extra_info["memory_ratio"] = round(memory_ratio, 3)


def test_cost_model_sensitivity(benchmark):
    """The Figure-7 ordering is not an artifact of the constants.

    Under ±25% perturbations of the two most influential unit costs the
    full paper ordering holds.  Under an extreme adverse compound
    perturbation (RPC cost halved *and* tree costs 1.5x — a 3x swing in
    their ratio) the pequod/redis gap narrows and may flip within ~10%,
    which matches the paper's own attribution of Pequod's advantage to
    avoided RPCs; every other relation stays put.
    """
    from repro.bench.harness import run_figure7

    def collect():
        results = {}
        for label, (scale_rpc, scale_tree) in {
            "mild-a": (0.75, 1.25),
            "mild-b": (1.25, 0.75),
            "default": (1.0, 1.0),
            "adverse": (0.5, 1.5),
        }.items():
            model = CostModel(overrides={
                "rpcs": 2.0 * scale_rpc,
                "tree_descent_cost": 0.07 * scale_tree,
            })
            runs = run_figure7(n_users=300, mean_follows=12, total_ops=6000,
                               model=model)
            results[label] = {r.name: r.modeled_us for r in runs}
        return results

    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    for label in ("mild-a", "mild-b", "default"):
        m = results[label]
        assert m["pequod"] < m["redis"] < m["client pequod"], label
        assert m["redis"] < m["memcached"], label
        assert m["postgresql"] == max(m.values()), label
    adverse = results["adverse"]
    assert 0.8 < adverse["redis"] / adverse["pequod"] < 1.6
    assert adverse["redis"] < adverse["client pequod"]
    assert adverse["postgresql"] == max(adverse.values())
    print_block(
        "cost-model sensitivity: full ordering stable under ±25% "
        "perturbations; pequod/redis gap narrows only under a compound "
        "3x adverse swing of the RPC:tree cost ratio"
    )
