"""Shared benchmark fixtures and reporting helpers.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark regenerates one table or figure from the paper's
evaluation (§5) at a laptop scale.  Wall-clock numbers are measured by
pytest-benchmark; the paper-comparable *modeled* runtimes (see
``repro.bench.costmodel``) are attached as ``extra_info`` and printed
in tables at the end of each module's run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

_BENCH_DIR = Path(__file__).parent


def pytest_addoption(parser):
    parser.addoption(
        "--sim",
        action="store_true",
        default=False,
        help=(
            "run Figure 10 on the modeled in-process simulation instead "
            "of the real multi-process cluster"
        ),
    )


@pytest.fixture
def sim_mode(request):
    """Selects the modeled-simulation variant of a benchmark."""
    if not request.config.getoption("--sim"):
        pytest.skip("simulated variant runs under --sim; default is the "
                    "real process cluster")


@pytest.fixture
def real_cluster_mode(request):
    """Selects the real-process variant of a benchmark."""
    if request.config.getoption("--sim"):
        pytest.skip("--sim selects the modeled simulation")


def pytest_collection_modifyitems(items):
    """Every test in benchmarks/ carries the registered ``bench``
    marker, so CI (and developers) can deselect them with
    ``-m "not bench"`` without unknown-marker warnings.  The path
    guard matters: in a combined ``pytest tests benchmarks`` run this
    hook sees the whole session's items, not just ours."""
    for item in items:
        if Path(item.fspath).is_relative_to(_BENCH_DIR):
            item.add_marker(pytest.mark.bench)


def print_block(text: str) -> None:
    """Emit a report block that survives pytest's capture tersely."""
    print("\n" + text + "\n")


@pytest.fixture(scope="session")
def fig7_runs():
    from repro.bench.harness import run_figure7

    return run_figure7()


@pytest.fixture(scope="session")
def fig8_data():
    from repro.bench.harness import run_figure8

    pcts = (1, 10, 30, 50, 70, 90, 100)
    return pcts, run_figure8(
        n_users=200, mean_follows=8, posts=250, active_pcts=pcts
    )


@pytest.fixture(scope="session")
def fig9_data():
    from repro.bench.harness import run_figure9

    rates = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0)
    return rates, run_figure9(vote_rates=rates, scale=1.0)


@pytest.fixture(scope="session")
def fig10_points():
    from repro.bench.harness import run_figure10

    return run_figure10(
        server_counts=(3, 6, 9, 12), n_users=300, mean_follows=10,
        total_ops=6000,
    )
