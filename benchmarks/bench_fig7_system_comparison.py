"""Figure 7: time to process a Twip experiment to completion.

Paper result (§5.2)::

    System          Runtime
    Pequod          197.06 s  (1.00x)
    Redis           262.62 s  (1.33x)
    Client Pequod   323.29 s  (1.64x)
    memcached       784.43 s  (3.98x)
    PostgreSQL     1882.78 s  (9.55x)

This benchmark runs the same §5.1 workload (scaled) on all five
reimplemented systems.  The pytest-benchmark timings measure Python
wall-clock per system; the paper-comparable numbers are the modeled
runtimes printed in the summary table and attached as extra_info.
"""

from __future__ import annotations

import pytest

from conftest import print_block
from repro.apps.social_graph import generate_graph
from repro.apps.workload import TwipWorkload
from repro.bench.harness import figure7_backends
from repro.bench.report import format_table, normalized

SCALE = dict(n_users=300, mean_follows=10, total_ops=3000, seed=42)


@pytest.fixture(scope="module")
def workload_and_ops():
    graph = generate_graph(SCALE["n_users"], SCALE["mean_follows"],
                           seed=SCALE["seed"])
    workload = TwipWorkload(graph, SCALE["total_ops"], seed=SCALE["seed"])
    return graph, workload, workload.generate()


@pytest.mark.parametrize("system", list(figure7_backends()))
def test_fig7_system(benchmark, system, workload_and_ops):
    graph, workload, ops = workload_and_ops
    factory = figure7_backends()[system]

    def run_once():
        backend = factory()
        workload.run(backend, ops=ops)
        return backend

    backend = benchmark.pedantic(run_once, rounds=1, iterations=1)
    from repro.bench.costmodel import DEFAULT_MODEL

    benchmark.extra_info["modeled_us"] = DEFAULT_MODEL.runtime_us(
        backend.meter.snapshot()
    )
    benchmark.extra_info["rpcs"] = backend.meter.get("rpcs")


def test_fig7_table(benchmark, fig7_runs):
    """Regenerate the Figure 7 table (modeled runtimes, full scale)."""
    runs = fig7_runs
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    base = next(r.modeled_us for r in runs if r.name == "pequod")
    rows = [
        (r.name, f"{r.modeled_us / 1e6:.4f} s", normalized(r.modeled_us, base))
        for r in runs
    ]
    print_block(
        format_table(
            ["System", "Modeled runtime", "Factor"],
            rows,
            title="Figure 7 — Twip system comparison (paper: 1.00/1.33/1.64/3.98/9.55)",
        )
    )
    for r in runs:
        benchmark.extra_info[r.name] = round(r.modeled_us)
    names = [r.name for r in runs]
    assert names[0] == "pequod"
    assert names[-1] == "postgresql"
