"""Concurrency: throughput vs. outstanding pipelined requests (§5.1).

Not a paper figure — this measures why the paper's clients "are
event-driven processes that keep many RPCs outstanding": a real TCP
RPC server on its own thread, driven by the strictly synchronous
one-outstanding-request baseline and by the async client's continuous
sliding windows.  The claims locked in here:

* pipelined throughput at depth 32 beats the sync baseline by >= 3x
  at full scale (the acceptance bar; smoke runs on shared machines
  get a tolerance);
* throughput grows monotonically-ish with depth — deeper windows
  amortize syscalls, thread wakeups, and framing;
* correctness rides along: the harness asserts the store holds
  exactly the workload's final state after every configuration.
"""

from __future__ import annotations

import os

import pytest

from conftest import print_block
from repro.bench.harness import run_concurrency
from repro.bench.report import format_table

#: REPRO_BENCH_CONC_OPS shrinks the stream for smoke runs (CI).
_SMOKE = "REPRO_BENCH_CONC_OPS" in os.environ


@pytest.fixture(scope="module")
def concurrency_result():
    total_ops = int(os.environ.get("REPRO_BENCH_CONC_OPS", "2000"))
    return run_concurrency(total_ops=total_ops, repeats=2 if _SMOKE else 3)


def test_pipelining_speedup(benchmark, concurrency_result):
    """The acceptance bar: depth 32 >= 3x the sync baseline."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    points = concurrency_result["points"]
    print_block(format_table(
        ["outstanding", "ops/s", "vs sync baseline"],
        [(str(p["depth"]), f"{p['ops_per_sec']:.0f}", f"{p['speedup']:.2f}x")
         for p in points],
        title="pipelined RPCs outstanding on one connection",
    ))
    by_depth = {p["depth"]: p for p in points}
    # Shared CI runners get a looser tripwire; the committed
    # BENCH_concurrency.json records the full-scale >= 3x result.
    floor = 2.0 if _SMOKE else 3.0
    assert by_depth[32]["speedup"] >= floor, (
        f"depth-32 speedup {by_depth[32]['speedup']:.2f}x under {floor}x"
    )
    benchmark.extra_info["speedup_at_32"] = round(by_depth[32]["speedup"], 2)
    benchmark.extra_info["baseline_ops_per_sec"] = round(
        concurrency_result["baseline"]["ops_per_sec"]
    )


def test_depth_helps(concurrency_result):
    """More outstanding requests never hurt much: each depth is at
    least as fast as ~80% of the previous one (noise tolerance), and
    the deepest window is the fastest overall."""
    points = concurrency_result["points"]
    rates = [p["ops_per_sec"] for p in points]
    for shallower, deeper in zip(rates, rates[1:]):
        assert deeper >= 0.8 * shallower
    assert max(rates) == rates[-1]
