"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660
editable installs fail; this shim enables ``pip install -e .
--no-use-pep517 --no-build-isolation`` (setup.py develop), which needs
no wheel building.  Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
