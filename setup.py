"""Legacy setup shim with the package metadata.

The offline environment lacks the ``wheel`` package, so PEP 660
editable installs fail; this shim enables ``pip install -e .
--no-use-pep517 --no-build-isolation`` (setup.py develop), which needs
no wheel building.  CI uses the same path via ``pip install -e
.[test]``.  Tool configuration (pytest, ruff) lives in pyproject.toml.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_INIT = Path(__file__).parent / "src" / "repro" / "__init__.py"
VERSION = re.search(r'__version__ = "([^"]+)"', _INIT.read_text()).group(1)

setup(
    name="pequod-repro",
    version=VERSION,
    description=(
        "Reproduction of Pequod (NSDI '14): an application-level "
        "key-value cache with incrementally maintained cache joins"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    extras_require={
        "test": [
            "pytest>=7",
            "pytest-asyncio>=0.23",
            "hypothesis>=6",
            "pytest-benchmark>=4",
        ],
        # Coverage is a CI-lane concern, not a local test dependency.
        "cov": [
            "pytest-cov>=4",
        ],
    },
    entry_points={
        "console_scripts": ["repro=repro.cli:main"],
    },
)
