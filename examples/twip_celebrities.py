#!/usr/bin/env python3
"""Twip with celebrity joins (§2.3): trading freshness work for memory.

Generates a heavy-tailed social graph, runs Twip twice — once with
plain push timelines, once with the celebrity pull join for the most
followed users — and compares memory, correctness, and maintenance
work.

Run:  python examples/twip_celebrities.py
"""

from repro.apps.social_graph import degree_histogram, generate_graph
from repro.apps.twip import TwipApp


def run_app(app, graph, posts_per_user=2):
    app.load_graph(graph)
    time = 0
    for user in graph.users:
        for _ in range(posts_per_user):
            app.post(user, time, f"tweet {time} from {user}")
            time += 1
    for user in graph.users:
        app.timeline(user)
    return app


def main() -> None:
    graph = generate_graph(n_users=150, mean_follows=10, seed=5)
    print(f"graph: {graph}")
    print("follower-count histogram:", degree_histogram(graph, [1, 10, 50]))
    threshold = max(10, graph.max_follower_count() // 3)
    celebs = graph.celebrities(threshold)
    print(f"celebrities (> {threshold} followers): {len(celebs)}")

    plain = run_app(TwipApp(), graph)
    celeb = run_app(
        TwipApp(celebrity_threshold=threshold, graph=graph), graph
    )

    # Both configurations must serve identical timelines.
    sample = graph.users[:10]
    for user in sample:
        assert plain.timeline(user) == celeb.timeline(user), user
    print(f"\ntimelines agree for all {len(sample)} sampled users")

    plain_mem = plain.server.memory_bytes()
    celeb_mem = celeb.server.memory_bytes()
    print(f"plain push joins:     {plain_mem:10,d} bytes")
    print(f"with celebrity pull:  {celeb_mem:10,d} bytes")
    print(f"memory saved:         {1 - celeb_mem / plain_mem:10.1%}")

    copies_plain = plain.server.store.count("t|", "t}")
    copies_celeb = celeb.server.store.count("t|", "t}")
    print(f"\nmaterialized timeline entries: {copies_plain} -> {copies_celeb}")
    print(
        "celebrity tweets are computed per-read from the ct| helper "
        "range instead of being copied to every fan (the paper: "
        "'they do save memory')."
    )


if __name__ == "__main__":
    main()
