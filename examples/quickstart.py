#!/usr/bin/env python3
"""Quickstart: the paper's §2 walkthrough through the unified client.

Installs the Twip timeline cache join with the fluent builder, writes
base data, and shows demand computation, eager incremental
maintenance, lazy subscription handling, and aggregates — the core of
what Pequod does.  Everything below runs unchanged on any backend:
swap ``"local"`` for ``"rpc"`` or ``"cluster"`` in ``make_client``.

Run:  python examples/quickstart.py
"""

from repro.client import join, make_client


def show(title, rows):
    print(f"\n== {title}")
    for key, value in rows:
        print(f"   {key}  ->  {value!r}")
    if not rows:
        print("   (empty)")


def main() -> None:
    client = make_client(
        "local", subtable_config={"t": 2}, base_tables=("p", "s", "vote")
    )

    # The paper's timeline cache join (§2.2), spelled fluently: a
    # timeline entry exists for every (subscription, post) pair that
    # shares a poster.  The grammar text
    #   "t|<user>|<time>|<poster> = check s|<user>|<poster>
    #                               copy p|<poster>|<time>"
    # would install the identical join.
    client.add_join(
        join("t|<user>|<time>|<poster>")
        .check("s|<user>|<poster>")
        .copy("p|<poster>|<time>")
    )

    # Base data: ann follows bob; bob tweets at time 0100.
    client.put("s|ann|bob", "1")
    client.put("p|bob|0100", "hello, world!")

    # The first scan computes the timeline on demand and installs
    # updaters that keep it fresh (dynamic materialization).
    show("ann checks her timeline", client.scan_prefix("t|ann|"))

    # New posts now flow in eagerly — no recomputation on read.
    client.put("p|bob|0120", "i'm hungry")
    show("after bob tweets again", client.scan_prefix("t|ann|"))

    # Subscription changes are handled lazily: the new followee's old
    # tweets appear on the next read, shifted in by partial
    # invalidation rather than eager copying (§3.2).
    client.put("p|liz|0050", "liz's old tweet")
    client.put("s|ann|liz", "1")
    show("after ann follows liz", client.scan_prefix("t|ann|"))

    # Unsubscribing retracts copied tweets (complete invalidation).
    client.remove("s|ann|liz")
    show("after ann unfollows liz", client.scan_prefix("t|ann|"))

    # Batched writes coalesce per key and maintain in one pass.
    with client.write_batch() as batch:
        batch.put("p|bob|0130", "draft...")
        batch.put("p|bob|0130", "final")  # supersedes in-batch
        batch.put("p|bob|0140", "and another")
    show("after a coalesced batch", client.scan_prefix("t|ann|"))

    # Aggregates: karma counts votes and stays fresh incrementally.
    client.add_join(join("karma|<author>").count("vote|<author>|<id>|<voter>"))
    client.put("vote|bob|001|ann", "1")
    client.put("vote|bob|001|liz", "1")
    print(f"\n== bob's karma: {client.get('karma|bob')}")
    client.put("vote|bob|002|jim", "1")
    print(f"== after another vote: {client.get('karma|bob')}")

    stats = client.stats()
    print(
        f"\nserver work: {stats.get('updaters_fired', 0):.0f} updaters fired, "
        f"{stats.get('partial_invalidations', 0):.0f} partial / "
        f"{stats.get('complete_invalidations', 0):.0f} complete invalidations, "
        f"{stats.get('recomputations', 0):.0f} recomputations"
    )


if __name__ == "__main__":
    main()
