#!/usr/bin/env python3
"""Quickstart: the paper's §2 walkthrough on a live server.

Installs the Twip timeline cache join, writes base data, and shows
demand computation, eager incremental maintenance, lazy subscription
handling, and aggregates — the core of what Pequod does.

Run:  python examples/quickstart.py
"""

from repro import PequodServer


def show(title, rows):
    print(f"\n== {title}")
    for key, value in rows:
        print(f"   {key}  ->  {value!r}")
    if not rows:
        print("   (empty)")


def main() -> None:
    srv = PequodServer(subtable_config={"t": 2})

    # The paper's timeline cache join (§2.2): a timeline entry exists
    # for every (subscription, post) pair that shares a poster.
    srv.add_join(
        "t|<user>|<time>|<poster> = "
        "check s|<user>|<poster> copy p|<poster>|<time>"
    )

    # Base data: ann follows bob; bob tweets at time 0100.
    srv.put("s|ann|bob", "1")
    srv.put("p|bob|0100", "hello, world!")

    # The first scan computes the timeline on demand and installs
    # updaters that keep it fresh (dynamic materialization).
    show("ann checks her timeline", srv.scan("t|ann|", "t|ann}"))

    # New posts now flow in eagerly — no recomputation on read.
    srv.put("p|bob|0120", "i'm hungry")
    show("after bob tweets again", srv.scan("t|ann|", "t|ann}"))

    # Subscription changes are handled lazily: the new followee's old
    # tweets appear on the next read, shifted in by partial
    # invalidation rather than eager copying (§3.2).
    srv.put("p|liz|0050", "liz's old tweet")
    srv.put("s|ann|liz", "1")
    show("after ann follows liz", srv.scan("t|ann|", "t|ann}"))

    # Unsubscribing retracts copied tweets (complete invalidation).
    srv.remove("s|ann|liz")
    show("after ann unfollows liz", srv.scan("t|ann|", "t|ann}"))

    # Aggregates: karma counts votes and stays fresh incrementally.
    srv.add_join("karma|<author> = count vote|<author>|<id>|<voter>")
    srv.put("vote|bob|001|ann", "1")
    srv.put("vote|bob|001|liz", "1")
    print(f"\n== bob's karma: {srv.get('karma|bob')}")
    srv.put("vote|bob|002|jim", "1")
    print(f"== after another vote: {srv.get('karma|bob')}")

    stats = srv.stats
    print(
        f"\nserver work: {stats.get('updaters_fired'):.0f} updaters fired, "
        f"{stats.get('partial_invalidations'):.0f} partial / "
        f"{stats.get('complete_invalidations'):.0f} complete invalidations, "
        f"{stats.get('recomputations'):.0f} recomputations"
    )


if __name__ == "__main__":
    main()
