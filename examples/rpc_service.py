#!/usr/bin/env python3
"""Pequod served over real TCP RPC (§5.1's client/server setup).

``make_client("rpc")`` starts an asyncio RPC server on a loopback
socket and connects the unified client to it, so every operation below
crosses genuine TCP frames.  The second half drives the same server
with the raw pipelined client that keeps many RPCs outstanding — the
paper's event-driven client pattern.

Run:  python examples/rpc_service.py
"""

import asyncio
import time

from repro.client import join, make_client
from repro.net.rpc_client import RpcClient


def main() -> None:
    client = make_client("rpc", subtable_config={"t": 2})
    print(f"pequod listening on {client.host}:{client.port}")
    print("client connected:", client.ping())

    # Install the timeline join over the wire, fluently.
    installed = client.add_join(
        join("t|<user>|<time>|<poster>")
        .check("s|<user>|<poster>")
        .copy("p|<poster>|<time>")
    )
    print("installed join:", installed[0])

    # Unified-API traffic: puts, a coalesced batch, scans — all RPCs.
    client.put("s|user007|star", "1")
    client.put_many([(f"p|star|{t:06d}", f"broadcast {t}") for t in range(5)])
    rows = client.scan_prefix("t|user007|")
    print(f"user007's timeline has {len(rows)} tweets; first: {rows[0]}")

    # The raw pipelined client (§5.1): many RPCs in flight on one
    # connection, against the very same server.
    async def pipelined() -> None:
        raw = RpcClient(client.host, client.port)
        await raw.connect()
        followers = [f"user{i:03d}" for i in range(50)]
        start = time.perf_counter()
        await raw.call_many([("put", [f"s|{u}|star", "1"]) for u in followers])
        await raw.call_many(
            [("put", [f"p|star|1{t:05d}", f"burst {t}"]) for t in range(20)]
        )
        elapsed = time.perf_counter() - start
        print(
            f"pipelined {len(followers) + 20} puts in {elapsed * 1e3:.1f} ms "
            f"({raw.requests_sent} requests on one connection)"
        )
        await raw.close()

    asyncio.run(pipelined())

    rows = client.scan_prefix("t|user007|")
    print(f"user007's timeline now has {len(rows)} tweets")

    stats = client.stats()
    print(f"server processed {stats.get('op_put', 0):.0f} puts, "
          f"{stats.get('updaters_fired', 0):.0f} updater firings")

    client.close()


if __name__ == "__main__":
    main()
