#!/usr/bin/env python3
"""Pequod served over real TCP RPC (§5.1's client/server setup).

Starts an asyncio RPC server on loopback, installs the timeline join
over the wire, and drives it with a pipelined client that keeps many
RPCs outstanding — the paper's event-driven client pattern.

Run:  python examples/rpc_service.py
"""

import asyncio
import time

from repro import PequodServer
from repro.apps.twip import TIMELINE_JOIN
from repro.net.rpc_client import RpcClient
from repro.net.rpc_server import RpcServer


async def main() -> None:
    server = RpcServer(PequodServer(subtable_config={"t": 2}))
    await server.start()
    print(f"pequod listening on 127.0.0.1:{server.port}")

    client = RpcClient("127.0.0.1", server.port)
    await client.connect()
    print("client connected:", await client.ping())

    installed = await client.add_join(TIMELINE_JOIN)
    print("installed join:", installed[0])

    # Pipelined writes: many RPCs in flight on one connection.
    followers = [f"user{i:03d}" for i in range(50)]
    start = time.perf_counter()
    await client.call_many(
        [("put", [f"s|{u}|star", "1"]) for u in followers]
    )
    await client.call_many(
        [("put", [f"p|star|{t:06d}", f"broadcast {t}"]) for t in range(20)]
    )
    elapsed = time.perf_counter() - start
    print(f"pipelined {len(followers) + 20} puts in {elapsed * 1e3:.1f} ms "
          f"({client.requests_sent} requests on one connection)")

    rows = await client.scan("t|user007|", "t|user007}")
    print(f"user007's timeline has {len(rows)} tweets; first: {rows[0]}")

    stats = await client.call("stats")
    print(f"server processed {stats.get('op_put', 0):.0f} puts, "
          f"{stats.get('updaters_fired', 0):.0f} updater firings")

    await client.close()
    await server.stop()


if __name__ == "__main__":
    asyncio.run(main())
