#!/usr/bin/env python3
"""Search/feed ranking on a write-around CDC deployment (§2).

A search product keeps a ranked result feed per subscribed query:
crawlers ingest scored articles in bursts, users subscribe to topics,
and each user's feed materializes as a cache join ordered by rank.

The deployment is **write-around** (``mode="write-around"``): the
ingest path writes to the backing database only — durable first, no
synchronous cache maintenance — and the database's change feed drives
join maintenance asynchronously (see ``repro.cdc``).  Reads hit the
cache; ``settle_cdc()`` is the convergence barrier a freshness-critical
read (serving a results page) runs first.

Run:  python examples/search_feed.py
"""

from repro.client import make_client

#: Ranked feed per subscriber: if <user> subscribes to <topic>, every
#: scored article under that topic lands in the user's feed, ordered by
#: the score segment (lower sorts first, so score = 9999 - relevance).
FEED_JOIN = (
    "feed|<user>|<score>|<art> = "
    "check sub|<user>|<topic> copy art|<topic>|<score>|<art>"
)


def score(relevance: int) -> str:
    """Rank key segment: higher relevance sorts earlier."""
    return f"{9999 - relevance:04d}"


def main() -> None:
    with make_client("local", mode="write-around", joins=FEED_JOIN) as client:
        # Subscriptions: ann follows the search queries she saved.
        client.put("sub|ann|rust", "1")
        client.put("sub|ann|databases", "1")
        client.put("sub|bob|databases", "1")

        # Crawler ingest burst: writes land in the backing DB only —
        # the cache hears about them through the change feed.
        articles = [
            ("rust", 97, "borrow-checker-deep-dive"),
            ("rust", 61, "async-runtimes-compared"),
            ("databases", 88, "btree-vs-lsm"),
            ("databases", 92, "write-around-caching"),
            ("golf", 70, "links-course-guide"),  # nobody subscribed
        ]
        for topic, relevance, slug in articles:
            client.put(f"art|{topic}|{score(relevance)}|{slug}", slug)

        # The async window is real: the feed may not have drained yet.
        before = client.scan_prefix("feed|ann|")
        consumed = client.settle_cdc()  # the freshness barrier
        after = client.scan_prefix("feed|ann|")
        print(f"ann's feed before the barrier: {len(before)} results")
        print(f"settle_cdc() consumed {consumed} change records")
        print("ann's feed, best match first:")
        for key, _ in after:
            _, _, rank, slug = key.split("|")
            print(f"  {9999 - int(rank):>3}  {slug}")
        assert [k.split("|")[3] for k, _ in after] == [
            "borrow-checker-deep-dive",
            "write-around-caching",
            "btree-vs-lsm",
            "async-runtimes-compared",
        ]

        # A re-crawl re-scores an article; the update flows the same way.
        client.put(f"art|databases|{score(99)}|btree-vs-lsm", "btree-vs-lsm")
        client.remove(f"art|databases|{score(88)}|btree-vs-lsm")
        client.settle_cdc()
        top_key, _ = client.scan_prefix("feed|bob|")[0]
        print(f"\nbob's top result after the re-score: {top_key.split('|')[3]}")
        assert top_key.split("|")[3] == "btree-vs-lsm"

        stats = client.stats()
        print(
            f"\ncdc: {stats.get('cdc_records_applied_total', 0):.0f} records "
            f"applied, feed high-water "
            f"{stats.get('cdc_feed_high_water', 0):.0f}"
        )


if __name__ == "__main__":
    main()
