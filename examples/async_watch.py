#!/usr/bin/env python3
"""A live Twip timeline rendered from server-push watch streams.

The paper's servers push updates to subscribers instead of being
polled (§2.4), and its clients are event-driven with many RPCs
outstanding (§5.1).  This example is both at once: an async client
over *real TCP RPC* installs the §2 timeline join, watches ann's
timeline range, and renders every pushed update as it commits —
while a concurrent writer task posts tweets.  No polling anywhere:
the server writes change frames onto the same pipelined connection
the client's requests ride.

Run:  python examples/async_watch.py
"""

import asyncio

from repro.client import make_async_client

TIMELINE = (
    "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"
)

POSTS = [
    ("bob", "0100", "first!"),
    ("liz", "0110", "hi ann"),
    ("bob", "0120", "pushed, not polled"),
    ("liz", "0130", "freshness is easy"),
]


async def post_tweets(client) -> None:
    """The write side: concurrent with the watcher below."""
    for poster, tick, text in POSTS:
        await client.put(f"p|{poster}|{tick}", text)
        await asyncio.sleep(0)  # interleave with the watcher


async def main() -> None:
    # "rpc" with no port: an ephemeral loopback server on this loop —
    # every operation and every pushed frame crosses genuine TCP.
    client = await make_async_client("rpc")
    try:
        await client.add_join(TIMELINE)
        await client.put_many([("s|ann|bob", "1"), ("s|ann|liz", "1")])
        await client.scan_prefix("t|ann|")  # materialize ann's timeline

        watch = await client.watch("t|ann|", "t|ann}")
        print("watching ann's timeline (server push over one connection)\n")

        writer = asyncio.ensure_future(post_tweets(client))
        timeline = {}
        async for event in watch:
            timeline[event.key] = event.new
            _, _, time_, poster = event.key.split("|")
            print(f"  @{time_}  {poster:>4}: {event.new}")
            if len(timeline) == len(POSTS):
                break
        await watch.close()
        await writer

        print("\nfinal timeline (read back through the same API):")
        for key, value in await client.scan_prefix("t|ann|"):
            print(f"  {key} = {value!r}")
        expected = dict(await client.scan_prefix("t|ann|"))
        assert timeline == expected, "watch stream diverged from the scan"
        print("\nwatch stream and scan agree: every update arrived, once.")
    finally:
        await client.aclose()


if __name__ == "__main__":
    asyncio.run(main())
