#!/usr/bin/env python3
"""Distributed Pequod (§2.4): partitioning, subscriptions, eventual
consistency, and read-your-own-writes sessions.

Builds a cluster of base (home) servers and compute servers on the
deterministic simulated network, and demonstrates:

* base-data fetch + subscription installation on first read;
* asynchronous update propagation (the staleness window is visible);
* per-user read affinity and replication of popular data;
* a read-your-own-writes session.

Run:  python examples/distributed_cluster.py
"""

from repro.apps.twip import TIMELINE_JOIN
from repro.distrib import Cluster


def main() -> None:
    cluster = Cluster(
        base_count=2, compute_count=3, base_tables=("p", "s"),
        joins=TIMELINE_JOIN,
    )
    print(f"nodes: {[n.name for n in cluster.nodes]}")

    # Writes go to each key's home server (lookaside, §5.1).
    cluster.put("s|ann|bob", "1")
    home = cluster.home_node("p|bob|0100")
    print(f"home server for bob's posts: {home.name}")

    # ann's reads all go to one compute server, S(ann).
    s_ann = cluster.compute_node_for("ann")
    print(f"compute server for ann: {s_ann.name}")
    print("ann's first timeline check:",
          cluster.scan("ann", "t|ann|", "t|ann}"))
    print(f"subscriptions installed at base tier: "
          f"{cluster.total_subscriptions()}")

    # A new post reaches the home server immediately; the compute
    # server's mirror is updated asynchronously.
    cluster.put("p|bob|0100", "hello from bob")
    mirrored = s_ann.server.store.get("p|bob|0100")
    print(f"\nbefore settle(): compute mirror sees {mirrored!r} (stale ok)")
    cluster.settle()  # deliver in-flight subscription updates
    print("after settle(): ", cluster.scan("ann", "t|ann|", "t|ann}"))

    # Traffic breakdown, as in §5.5.
    frac = cluster.subscription_traffic_fraction()
    print(f"\nsubscription maintenance share of network bytes: {frac:.1%}")

    # Read-your-own-writes (§2.4): one server for reads and writes.
    session = cluster.session("liz")
    session.put("s|liz|bob", "1")
    session.put("p|bob|0200", "liz sees this immediately")
    rows = session.scan("t|liz|", "t|liz}")
    print(f"\nRYOW session read-after-write: {rows}")
    cluster.settle()  # forwarded writes reach home servers
    print(f"home now has the forwarded post: "
          f"{cluster.home_node('p|bob|0200').server.store.get('p|bob|0200')!r}")


if __name__ == "__main__":
    main()
