#!/usr/bin/env python3
"""Distributed Pequod (§2.4) through the unified client: partitioning,
subscriptions, eventual consistency, and read-your-own-writes sessions.

``ClusterClient`` routes each operation the way the paper deploys
Twip: writes to the written key's home server, computed reads to the
user's affinity compute server, base reads to the data's home — while
the application just calls ``put``/``scan`` on a ``PequodClient``.

Run:  python examples/distributed_cluster.py
"""

from repro.apps.twip import TIMELINE_JOIN
from repro.client import ClusterClient, make_client


def main() -> None:
    client = make_client(
        "cluster", joins=TIMELINE_JOIN,
        base_count=2, compute_count=3, base_tables=("p", "s"),
    )
    assert isinstance(client, ClusterClient)
    cluster = client.cluster
    print(f"nodes: {[n.name for n in cluster.nodes]}")

    # Writes go to each key's home server (lookaside, §5.1).
    client.put("s|ann|bob", "1")
    home = cluster.home_node("p|bob|0100")
    print(f"home server for bob's posts: {home.name}")

    # ann's reads all go to one compute server, S(ann) — the client
    # derives the affinity from the key's user segment.
    s_ann = cluster.compute_node_for("ann")
    print(f"compute server for ann: {s_ann.name}")
    print("ann's first timeline check:", client.scan_prefix("t|ann|"))
    print(f"subscriptions installed at base tier: "
          f"{cluster.total_subscriptions()}")

    # A new post reaches the home server immediately; the compute
    # server's mirror is updated asynchronously.
    client.put("p|bob|0100", "hello from bob")
    mirrored = s_ann.server.store.get("p|bob|0100")
    print(f"\nbefore settle(): compute mirror sees {mirrored!r} (stale ok)")
    client.settle()  # deliver in-flight subscription updates
    print("after settle(): ", client.scan_prefix("t|ann|"))

    # Base data reads go to the home server — the source of truth —
    # so they are never stale.
    print(f"home read of the post: {client.get('p|bob|0100')!r}")

    # Traffic breakdown, as in §5.5.
    frac = cluster.subscription_traffic_fraction()
    print(f"\nsubscription maintenance share of network bytes: {frac:.1%}")

    # Read-your-own-writes (§2.4): one server for reads and writes.
    session = client.session("liz")
    session.put("s|liz|bob", "1")
    session.put("p|bob|0200", "liz sees this immediately")
    rows = session.scan("t|liz|", "t|liz}")
    print(f"\nRYOW session read-after-write: {rows}")
    client.settle()  # forwarded writes reach home servers
    print(f"home now has the forwarded post: "
          f"{client.get('p|bob|0200')!r}")


if __name__ == "__main__":
    main()
